//! # msatpg — Automatic Test Vector Generation for Mixed-Signal Circuits
//!
//! A Rust reproduction of *Ayari, BenHamida & Kaminska, "Automatic Test
//! Vector Generation for Mixed-Signal Circuits", DATE 1995*.
//!
//! The paper's flow tests a mixed circuit of the form **analog block → A/D
//! conversion block → digital block** as a single entity:
//!
//! 1. sensitivity / worst-case analysis selects, per analog element, the
//!    measurable parameter that detects its smallest deviation
//!    ([`analog`]);
//! 2. a backtrack-free OBDD-based stuck-at ATPG generates digital test
//!    vectors that additionally satisfy the constraint function `Fc` imposed
//!    by the conversion block ([`core::digital_atpg`], [`bdd`]);
//! 3. analog faults are activated by choosing a sine stimulus `(A, f)` that
//!    flips at least one comparator of the conversion block, and the
//!    resulting composite `D`/`D̄` value is propagated to a primary output
//!    through the digital block ([`core::activation`],
//!    [`core::propagation`]).
//!
//! This facade crate re-exports the whole workspace under one name.  See the
//! `examples/` directory for runnable end-to-end scenarios and the
//! `msatpg-bench` crate for the binaries that regenerate every table and
//! figure of the paper.
//!
//! ```
//! use msatpg::analog::filters;
//! use msatpg::analog::sensitivity::WorstCaseAnalysis;
//!
//! // Example 1 of the paper: the second-order band-pass filter.  Restrict
//! // the analysis to the two gain parameters to keep the example fast.
//! let filter = filters::second_order_band_pass();
//! let gains = &filter.parameters()[..2];
//! let report = WorstCaseAnalysis::new(filter.circuit(), gains)
//!     .with_parameter_tolerance(0.05)
//!     .with_worst_case(false)
//!     .run()
//!     .expect("analysis succeeds");
//! assert!(!report.rows().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Ordered binary decision diagrams (re-export of [`msatpg_bdd`]).
pub mod bdd {
    pub use msatpg_bdd::*;
}

/// Analog circuit simulation, sensitivity analysis and analog test selection
/// (re-export of [`msatpg_analog`]).
pub mod analog {
    pub use msatpg_analog::*;
}

/// Gate-level digital netlists, fault models and simulation (re-export of
/// [`msatpg_digital`]).
pub mod digital {
    pub use msatpg_digital::*;
}

/// A/D conversion block models (re-export of [`msatpg_conversion`]).
pub mod conversion {
    pub use msatpg_conversion::*;
}

/// The mixed-signal ATPG itself (re-export of [`msatpg_core`]).
pub mod core {
    pub use msatpg_core::*;
}

/// Worker pool and execution policies shared by every parallel loop in the
/// workspace (re-export of [`msatpg_exec`]).
pub mod exec {
    pub use msatpg_exec::*;
}

pub use msatpg_core::{MixedCircuit, MixedSignalAtpg, TestPlan};
