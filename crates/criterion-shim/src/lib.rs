//! A minimal, dependency-free stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no network access, so the
//! real criterion crate cannot be fetched.  This shim implements the small
//! API subset the workspace benches use — `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`/`criterion_main!` —
//! with a simple median-of-samples timing loop, so `cargo bench` compiles,
//! runs and prints comparable per-iteration timings.  Swap the path
//! dependency for the real crate to get statistics, plots and regression
//! detection.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark (`"name/parameter"`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything a benchmark can be registered under: `&str`, `String` or a
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that runs long
        // enough for the clock to resolve.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", nanos as f64 / 1.0e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1.0e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1.0e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    match bencher.median() {
        Some(median) => println!("{id:<56} {:>12}/iter", format_duration(median)),
        None => println!("{id:<56} (no samples)"),
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Registers and immediately runs a benchmark.
    pub fn bench_function<S: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs a benchmark inside the group.
    pub fn bench_function<S: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into_id()),
            self.sample_size,
            f,
        );
        self
    }

    /// Registers and immediately runs a benchmark parameterized by `input`.
    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F) -> &mut Self
    where
        S: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.into_id()),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that invokes one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_matches_usage() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| b.iter(|| n * 2));
        group.bench_function("plain".to_owned(), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(50)).ends_with("s"));
    }
}
