//! Analog fault activation: choosing the sine stimulus `(A, f)` that makes a
//! conversion-block comparator behave differently in the fault-free and in
//! the faulty circuit (Table 1 and §2.3 of the paper).
//!
//! Activation is the analog half of the mixed fault story: the composite
//! `D`/`D̄` value a [`StimulusPlan`] places on a conversion-block output is
//! what the symbolic half — the complement-edged OBDD engine driving
//! [`crate::propagation`] — then pushes through the digital block.  The
//! Table-1 rows map one-to-one onto those composite values: a fault-free
//! `1` that turns into a faulty `0` is a `D`, the opposite flip a `D̄`
//! (with complement edges, literally the same BDD node behind a negated
//! edge).

use std::fmt;

use msatpg_analog::params::{ParameterKind, ParameterSpec};
use msatpg_analog::response::ResponseAnalyzer;
use msatpg_analog::signal::SineStimulus;
use msatpg_analog::FilterCircuit;

use crate::CoreError;

/// Direction of the parameter deviation being tested (the paper tests the
/// upper and the lower bound of the tolerance box separately).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviationSign {
    /// The parameter exceeds `(1 + x) · nominal`.
    Above,
    /// The parameter falls below `(1 − x) · nominal`.
    Below,
}

impl fmt::Display for DeviationSign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviationSign::Above => write!(f, "> +x%"),
            DeviationSign::Below => write!(f, "< -x%"),
        }
    }
}

/// One symbolic row of Table 1: how to choose the stimulus for a parameter
/// class and deviation direction, and what the comparator does in the
/// fault-free and in the faulty circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Parameter class (`ADC`, `AAC`, `flcf`, `fhcf`).
    pub parameter: &'static str,
    /// Tested condition (deviation direction).
    pub condition: &'static str,
    /// Symbolic amplitude of the input signal.
    pub amplitude: &'static str,
    /// Symbolic frequency of the input signal.
    pub frequency: &'static str,
    /// Comparator output in the fault-free circuit.
    pub fault_free: u8,
    /// Comparator output in the faulty circuit.
    pub faulty: u8,
    /// The composite value that appears on the digital line (`"D"` or
    /// `"D'"`).
    pub composite: &'static str,
}

/// The eight rows of Table 1 of the paper (upper and lower bound for the DC
/// gain, AC gain, low cut-off and high cut-off parameters).
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            parameter: "ADC",
            condition: "ADC > (1+x)·ADCn",
            amplitude: "Vref / ((1+x)·ADCn)",
            frequency: "0",
            fault_free: 0,
            faulty: 1,
            composite: "D'",
        },
        Table1Row {
            parameter: "ADC",
            condition: "ADC < (1-x)·ADCn",
            amplitude: "Vref / ((1-x)·ADCn)",
            frequency: "0",
            fault_free: 1,
            faulty: 0,
            composite: "D",
        },
        Table1Row {
            parameter: "AAC",
            condition: "AAC > (1+x)·AACn",
            amplitude: "Vref / ((1+x)·Af)",
            frequency: "f > 0",
            fault_free: 0,
            faulty: 1,
            composite: "D'",
        },
        Table1Row {
            parameter: "AAC",
            condition: "AAC < (1-x)·AACn",
            amplitude: "Vref / ((1-x)·Af)",
            frequency: "f > 0",
            fault_free: 1,
            faulty: 0,
            composite: "D",
        },
        Table1Row {
            parameter: "flcf",
            condition: "flcf > (1+x)·flcfn",
            amplitude: "Vref / ((1-y)·A(flcfn))",
            frequency: "flcfn",
            fault_free: 1,
            faulty: 0,
            composite: "D",
        },
        Table1Row {
            parameter: "flcf",
            condition: "flcf < (1-x)·flcfn",
            amplitude: "Vref / ((1+y)·A(flcfn))",
            frequency: "flcfn",
            fault_free: 0,
            faulty: 1,
            composite: "D'",
        },
        Table1Row {
            parameter: "fhcf",
            condition: "fhcf > (1+x)·fhcfn",
            amplitude: "Vref / ((1+y)·A(fhcfn))",
            frequency: "fhcfn",
            fault_free: 0,
            faulty: 1,
            composite: "D'",
        },
        Table1Row {
            parameter: "fhcf",
            condition: "fhcf < (1-x)·fhcfn",
            amplitude: "Vref / ((1-y)·A(fhcfn))",
            frequency: "fhcfn",
            fault_free: 1,
            faulty: 0,
            composite: "D",
        },
    ]
}

/// A concrete activation plan: the stimulus to apply and the comparator
/// behaviour it produces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StimulusPlan {
    /// The sine stimulus applied at the analog primary input.
    pub stimulus: SineStimulus,
    /// Comparator output in the fault-free circuit under this stimulus.
    pub fault_free_value: bool,
    /// Comparator output when the parameter sits outside its tolerance box
    /// in the tested direction.
    pub faulty_value: bool,
}

/// Selects the measurement frequency implied by a parameter kind: DC for DC
/// gains, the specified frequency for AC gains, and the nominal
/// peak/cut-off frequency for frequency-type parameters.
///
/// # Errors
///
/// Propagates measurement errors (e.g. a cut-off that does not exist).
pub fn measurement_frequency(
    filter: &FilterCircuit,
    parameter: &ParameterSpec,
) -> Result<f64, CoreError> {
    let output = parameter
        .output_node(filter.circuit())
        .map_err(|e| CoreError::Analog(e.to_string()))?;
    let analyzer = ResponseAnalyzer::new(filter.circuit(), &parameter.source, output)
        .with_sweep(parameter.sweep);
    let freq = match parameter.kind {
        ParameterKind::DcGain => 0.0,
        ParameterKind::AcGain { freq_hz } => freq_hz,
        ParameterKind::MaxGain | ParameterKind::CenterFrequency => analyzer
            .center_frequency()
            .map_err(|e| CoreError::Analog(e.to_string()))?,
        ParameterKind::LowCutoff => analyzer
            .low_cutoff()
            .map_err(|e| CoreError::Analog(e.to_string()))?,
        ParameterKind::HighCutoff => analyzer
            .high_cutoff()
            .map_err(|e| CoreError::Analog(e.to_string()))?,
    };
    Ok(freq)
}

/// Chooses the stimulus `(A, f)` that activates a deviation of `parameter`
/// beyond the tolerance `x` (fraction) in the given direction, observed at a
/// comparator with threshold `v_ref` — the computational form of Table 1.
///
/// The amplitude is placed so that the filter's output amplitude straddles
/// `v_ref`: it stays on one side while the parameter is inside its tolerance
/// box and crosses to the other side when the parameter leaves the box.
///
/// # Errors
///
/// Returns an error if the nominal or boundary gain cannot be measured or is
/// (numerically) zero at the chosen frequency.
pub fn select_stimulus(
    filter: &FilterCircuit,
    parameter: &ParameterSpec,
    direction: DeviationSign,
    tolerance: f64,
    v_ref: f64,
) -> Result<StimulusPlan, CoreError> {
    let output = parameter
        .output_node(filter.circuit())
        .map_err(|e| CoreError::Analog(e.to_string()))?;
    let analyzer = ResponseAnalyzer::new(filter.circuit(), &parameter.source, output)
        .with_sweep(parameter.sweep);
    let freq = measurement_frequency(filter, parameter)?;
    let gain_nominal = analyzer
        .gain_at(freq)
        .map_err(|e| CoreError::Analog(e.to_string()))?;
    // Gain when the parameter sits exactly at the tolerance boundary.
    let gain_boundary = match parameter.kind {
        ParameterKind::DcGain | ParameterKind::AcGain { .. } | ParameterKind::MaxGain => {
            match direction {
                DeviationSign::Above => gain_nominal * (1.0 + tolerance),
                DeviationSign::Below => gain_nominal * (1.0 - tolerance),
            }
        }
        // Frequency parameters: shifting a corner frequency by x% changes the
        // gain at the nominal corner like evaluating the nominal response at
        // a frequency scaled by 1/(1±x) (the paper's y% gain deviation caused
        // by an x% frequency deviation).
        ParameterKind::CenterFrequency | ParameterKind::LowCutoff | ParameterKind::HighCutoff => {
            let scale = match direction {
                DeviationSign::Above => 1.0 / (1.0 + tolerance),
                DeviationSign::Below => 1.0 / (1.0 - tolerance),
            };
            analyzer
                .gain_at(freq * scale)
                .map_err(|e| CoreError::Analog(e.to_string()))?
        }
    };
    if gain_nominal <= 0.0 || gain_boundary <= 0.0 {
        return Err(CoreError::ActivationImpossible {
            reason: format!(
                "gain is zero at {freq:.1} Hz for parameter '{}'",
                parameter.name
            ),
        });
    }
    if (gain_nominal - gain_boundary).abs() / gain_nominal < 1e-9 {
        return Err(CoreError::ActivationImpossible {
            reason: format!(
                "parameter '{}' does not change the output amplitude at {freq:.1} Hz",
                parameter.name
            ),
        });
    }
    // Amplitude such that the output amplitude is the geometric mean of the
    // nominal and boundary levels — above Vref on one side, below on the
    // other.
    let amplitude = v_ref / (gain_nominal * gain_boundary).sqrt();
    let fault_free_value = gain_nominal > gain_boundary;
    Ok(StimulusPlan {
        stimulus: SineStimulus::new(amplitude, freq),
        fault_free_value,
        faulty_value: !fault_free_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_analog::filters;

    #[test]
    fn table1_has_eight_rows_covering_both_directions() {
        let rows = table1();
        assert_eq!(rows.len(), 8);
        let d_count = rows.iter().filter(|r| r.composite == "D").count();
        let dbar_count = rows.iter().filter(|r| r.composite == "D'").count();
        assert_eq!(d_count, 4);
        assert_eq!(dbar_count, 4);
        // Every row where the fault-free value is 1 and faulty 0 is a D.
        for row in &rows {
            if row.fault_free == 1 && row.faulty == 0 {
                assert_eq!(row.composite, "D");
            } else {
                assert_eq!(row.composite, "D'");
            }
        }
    }

    #[test]
    fn stimulus_for_gain_parameter_straddles_the_reference() {
        let filter = filters::second_order_band_pass();
        // A2 = AC gain at 10 kHz.
        let a2 = filter.parameters()[1].clone();
        let plan = select_stimulus(&filter, &a2, DeviationSign::Below, 0.05, 2.0).unwrap();
        assert!(plan.stimulus.amplitude > 0.0);
        assert_eq!(plan.stimulus.frequency_hz, 10_000.0);
        // Testing a drop in gain: the fault-free output must be above Vref
        // (comparator = 1), the faulty one below (comparator = 0) → D.
        assert!(plan.fault_free_value);
        assert!(!plan.faulty_value);
        // The opposite direction flips the comparator values.
        let plan_up = select_stimulus(&filter, &a2, DeviationSign::Above, 0.05, 2.0).unwrap();
        assert!(!plan_up.fault_free_value);
        assert!(plan_up.faulty_value);
    }

    #[test]
    fn stimulus_for_cutoff_parameter_uses_the_corner_frequency() {
        let filter = filters::second_order_band_pass();
        // fc2 = high cut-off of the band-pass.
        let fc2 = filter.parameters()[4].clone();
        let freq = measurement_frequency(&filter, &fc2).unwrap();
        assert!(freq > 1_000.0, "high cut-off is above the center frequency");
        let plan = select_stimulus(&filter, &fc2, DeviationSign::Below, 0.05, 1.0).unwrap();
        assert!((plan.stimulus.frequency_hz - freq).abs() / freq < 1e-9);
        // A lower high-cutoff reduces the gain at the nominal corner → the
        // fault-free comparator value is 1 and the faulty one 0.
        assert!(plan.fault_free_value);
    }

    #[test]
    fn measurement_frequency_for_dc_and_ac_parameters() {
        let filter = filters::fifth_order_chebyshev();
        let adc = filter.parameters()[0].clone(); // DC gain
        let a1 = filter.parameters()[2].clone(); // AC gain @ 200 Hz
        assert_eq!(measurement_frequency(&filter, &adc).unwrap(), 0.0);
        assert_eq!(measurement_frequency(&filter, &a1).unwrap(), 200.0);
    }

    #[test]
    fn deviation_sign_displays() {
        assert_eq!(format!("{}", DeviationSign::Above), "> +x%");
        assert_eq!(format!("{}", DeviationSign::Below), "< -x%");
    }
}
