//! The mixed-signal circuit model: analog block → conversion block →
//! digital block (Figure 1 / Figure 4 of the paper).

use std::collections::BTreeMap;

use msatpg_analog::FilterCircuit;
use msatpg_conversion::constraints::{flash_codes, AllowedCodes};
use msatpg_conversion::{FlashAdc, SarAdc};
use msatpg_digital::netlist::{Netlist, SignalId};

use crate::CoreError;

/// The conversion block of a mixed circuit.
#[derive(Clone, Debug)]
pub enum ConverterBlock {
    /// A flash converter: one output line per comparator, thermometer-coded.
    Flash(FlashAdc),
    /// A binary (successive-approximation / half-flash) converter with the
    /// given number of low-order output lines connected to the digital block.
    Binary {
        /// The converter model.
        adc: SarAdc,
        /// Number of output bits wired to the digital block (LSB first).
        lines: usize,
    },
}

impl ConverterBlock {
    /// Number of digital lines the conversion block drives.
    pub fn output_count(&self) -> usize {
        match self {
            ConverterBlock::Flash(adc) => adc.comparator_count(),
            ConverterBlock::Binary { adc, lines } => (*lines).min(adc.bits() as usize),
        }
    }

    /// Converts an analog voltage into the digital code driven onto the
    /// connected lines.
    pub fn convert(&self, vin: f64) -> Vec<bool> {
        match self {
            ConverterBlock::Flash(adc) => adc.convert(vin),
            ConverterBlock::Binary { adc, lines } => {
                let bits = adc.convert_to_bits(vin);
                bits.into_iter()
                    .take((*lines).min(adc.bits() as usize))
                    .collect()
            }
        }
    }

    /// The set of codes this converter can produce (the basis of `Fc`).
    pub fn allowed_codes(&self) -> AllowedCodes {
        match self {
            ConverterBlock::Flash(adc) => flash_codes(adc),
            ConverterBlock::Binary { adc, lines } => {
                msatpg_conversion::constraints::binary_codes(adc, *lines)
            }
        }
    }

    /// The threshold voltage associated with output line `index` (0-based):
    /// the comparator threshold for a flash converter, or the input voltage
    /// at which the given binary output bit first toggles for a binary
    /// converter.
    pub fn threshold(&self, index: usize) -> Option<f64> {
        match self {
            ConverterBlock::Flash(adc) => adc.comparators().get(index).map(|c| c.threshold()),
            ConverterBlock::Binary { adc, .. } => {
                if index < adc.bits() as usize {
                    Some(adc.lsb() * (1 << index) as f64)
                } else {
                    None
                }
            }
        }
    }
}

/// A complete mixed-signal circuit: an analog block whose output feeds a
/// conversion block whose outputs drive some primary inputs of a digital
/// block.  The remaining digital inputs stay externally controllable.
#[derive(Clone, Debug)]
pub struct MixedCircuit {
    name: String,
    analog: FilterCircuit,
    converter: ConverterBlock,
    digital: Netlist,
    /// converter output index → digital primary-input signal
    connections: BTreeMap<usize, SignalId>,
    /// Optional override of the converter's allowed codes (used to model
    /// analog operating ranges that exclude some codes, as in Example 2).
    allowed_codes_override: Option<AllowedCodes>,
}

impl MixedCircuit {
    /// Creates a mixed circuit with no conversion-block/digital connections
    /// yet.
    pub fn new(
        name: &str,
        analog: FilterCircuit,
        converter: ConverterBlock,
        digital: Netlist,
    ) -> Self {
        MixedCircuit {
            name: name.to_owned(),
            analog,
            converter,
            digital,
            connections: BTreeMap::new(),
            allowed_codes_override: None,
        }
    }

    /// Connects converter output `converter_output` (0-based) to the digital
    /// primary input named `input_name`.
    ///
    /// # Errors
    ///
    /// Returns an error if the output index is out of range, the input does
    /// not exist or is not a primary input, or either endpoint is already
    /// connected.
    pub fn connect(&mut self, converter_output: usize, input_name: &str) -> Result<(), CoreError> {
        if converter_output >= self.converter.output_count() {
            return Err(CoreError::InvalidConnection {
                reason: format!(
                    "converter output {converter_output} out of range (block has {} outputs)",
                    self.converter.output_count()
                ),
            });
        }
        let signal =
            self.digital
                .find_signal(input_name)
                .ok_or_else(|| CoreError::InvalidConnection {
                    reason: format!("digital input '{input_name}' does not exist"),
                })?;
        if !self.digital.is_primary_input(signal) {
            return Err(CoreError::InvalidConnection {
                reason: format!("'{input_name}' is not a primary input"),
            });
        }
        if self.connections.contains_key(&converter_output)
            || self.connections.values().any(|&s| s == signal)
        {
            return Err(CoreError::InvalidConnection {
                reason: format!(
                    "converter output {converter_output} or input '{input_name}' is already connected"
                ),
            });
        }
        self.connections.insert(converter_output, signal);
        Ok(())
    }

    /// Connects converter outputs 0, 1, … to the given digital inputs in
    /// order.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`MixedCircuit::connect`].
    pub fn connect_in_order(&mut self, input_names: &[&str]) -> Result<(), CoreError> {
        for (i, name) in input_names.iter().enumerate() {
            self.connect(i, name)?;
        }
        Ok(())
    }

    /// Connects every converter output to a deterministically "random"
    /// selection of digital primary inputs (the paper selects the constrained
    /// inputs of the ISCAS85 circuits randomly).  The selection is a simple
    /// seeded shuffle so results are reproducible.
    ///
    /// # Errors
    ///
    /// Returns an error if the digital block has fewer primary inputs than
    /// the conversion block has outputs.
    pub fn connect_randomly(&mut self, seed: u64) -> Result<(), CoreError> {
        let needed = self.converter.output_count();
        let pis = self.digital.primary_inputs().to_vec();
        if pis.len() < needed {
            return Err(CoreError::InvalidConnection {
                reason: format!(
                    "digital block has {} inputs but the conversion block needs {needed}",
                    pis.len()
                ),
            });
        }
        // Deterministic Fisher-Yates driven by SplitMix64.
        let mut order: Vec<usize> = (0..pis.len()).collect();
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        for (converter_output, &pi_index) in order.iter().take(needed).enumerate() {
            let name = self.digital.signal_name(pis[pi_index]).to_owned();
            self.connect(converter_output, &name)?;
        }
        Ok(())
    }

    /// Overrides the allowed-code set (the ON-set of `Fc`).  Useful when the
    /// analog operating range excludes some converter codes, as in Example 2
    /// of the paper where `(l0, l2) = (0, 0)` can never occur.
    pub fn set_allowed_codes(&mut self, codes: AllowedCodes) {
        self.allowed_codes_override = Some(codes);
    }

    /// Name of the mixed circuit.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The analog block.
    pub fn analog(&self) -> &FilterCircuit {
        &self.analog
    }

    /// The conversion block.
    pub fn converter(&self) -> &ConverterBlock {
        &self.converter
    }

    /// The digital block.
    pub fn digital(&self) -> &Netlist {
        &self.digital
    }

    /// The converter-output → digital-input connections, ordered by converter
    /// output index.
    pub fn connections(&self) -> Vec<(usize, SignalId)> {
        self.connections.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Digital primary inputs driven by the conversion block, in converter
    /// output order.
    pub fn constrained_inputs(&self) -> Vec<SignalId> {
        self.connections.values().copied().collect()
    }

    /// Digital primary inputs that remain externally controllable.
    pub fn external_inputs(&self) -> Vec<SignalId> {
        let constrained = self.constrained_inputs();
        self.digital
            .primary_inputs()
            .iter()
            .copied()
            .filter(|s| !constrained.contains(s))
            .collect()
    }

    /// The allowed codes on the constrained inputs (the ON-set of `Fc`),
    /// honouring any override.
    pub fn allowed_codes(&self) -> AllowedCodes {
        self.allowed_codes_override
            .clone()
            .unwrap_or_else(|| self.converter.allowed_codes())
    }

    /// The digital input signal driven by converter output `index`, if
    /// connected.
    pub fn input_for_converter_output(&self, index: usize) -> Option<SignalId> {
        self.connections.get(&index).copied()
    }

    /// Basic consistency check of the assembled mixed circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if any block fails its own validation or if the
    /// conversion block drives no digital input at all.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.analog
            .circuit()
            .validate()
            .map_err(|e| CoreError::Analog(e.to_string()))?;
        self.digital
            .validate()
            .map_err(|e| CoreError::Digital(e.to_string()))?;
        if self.connections.is_empty() {
            return Err(CoreError::InvalidConnection {
                reason: "the conversion block drives no digital input".to_owned(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_analog::filters;
    use msatpg_digital::circuits;

    fn example2_circuit() -> MixedCircuit {
        // Figure 4: band-pass filter + 2-comparator conversion + Figure-3
        // digital circuit, with l0 and l2 constrained.
        let analog = filters::second_order_band_pass();
        let adc = FlashAdc::uniform(2, 4.0).unwrap();
        let digital = circuits::figure3_circuit();
        let mut mixed = MixedCircuit::new("figure4", analog, ConverterBlock::Flash(adc), digital);
        mixed.connect_in_order(&["l0", "l2"]).unwrap();
        mixed
    }

    #[test]
    fn connection_bookkeeping() {
        let mixed = example2_circuit();
        assert!(mixed.validate().is_ok());
        assert_eq!(mixed.constrained_inputs().len(), 2);
        assert_eq!(mixed.external_inputs().len(), 2);
        let l0 = mixed.digital().find_signal("l0").unwrap();
        assert_eq!(mixed.input_for_converter_output(0), Some(l0));
        assert_eq!(mixed.input_for_converter_output(5), None);
        assert_eq!(mixed.connections().len(), 2);
        assert_eq!(mixed.name(), "figure4");
    }

    #[test]
    fn invalid_connections_are_rejected() {
        let analog = filters::second_order_band_pass();
        let adc = FlashAdc::uniform(2, 4.0).unwrap();
        let digital = circuits::figure3_circuit();
        let mut mixed = MixedCircuit::new("bad", analog, ConverterBlock::Flash(adc), digital);
        assert!(mixed.connect(5, "l0").is_err(), "output out of range");
        assert!(mixed.connect(0, "nope").is_err(), "unknown input");
        assert!(mixed.connect(0, "Vo1").is_err(), "not a primary input");
        mixed.connect(0, "l0").unwrap();
        assert!(mixed.connect(0, "l2").is_err(), "output already used");
        assert!(mixed.connect(1, "l0").is_err(), "input already used");
        // Unconnected circuit fails validation.
        let analog = filters::second_order_band_pass();
        let adc = FlashAdc::uniform(2, 4.0).unwrap();
        let digital = circuits::figure3_circuit();
        let unconnected = MixedCircuit::new("none", analog, ConverterBlock::Flash(adc), digital);
        assert!(unconnected.validate().is_err());
    }

    #[test]
    fn random_connection_is_deterministic_and_complete() {
        let analog = filters::fifth_order_chebyshev();
        let adc = FlashAdc::uniform(15, 4.0).unwrap();
        let digital = msatpg_digital::benchmarks::c432();
        let mut a = MixedCircuit::new(
            "m1",
            analog.clone(),
            ConverterBlock::Flash(adc.clone()),
            digital.clone(),
        );
        a.connect_randomly(7).unwrap();
        let mut b = MixedCircuit::new("m2", analog, ConverterBlock::Flash(adc), digital);
        b.connect_randomly(7).unwrap();
        assert_eq!(a.constrained_inputs(), b.constrained_inputs());
        assert_eq!(a.constrained_inputs().len(), 15);
        assert_eq!(a.external_inputs().len(), 36 - 15);
    }

    #[test]
    fn converter_block_behaviour() {
        let flash = ConverterBlock::Flash(FlashAdc::uniform(15, 4.0).unwrap());
        assert_eq!(flash.output_count(), 15);
        assert_eq!(flash.convert(2.0).iter().filter(|&&b| b).count(), 8);
        assert_eq!(flash.allowed_codes().codes().len(), 16);
        assert!(flash.threshold(0).unwrap() > 0.0);
        assert!(flash.threshold(99).is_none());

        let binary = ConverterBlock::Binary {
            adc: SarAdc::ad7820(),
            lines: 4,
        };
        assert_eq!(binary.output_count(), 4);
        assert_eq!(binary.convert(2.5).len(), 4);
        assert!(binary.allowed_codes().is_unconstrained());
        assert!(binary.threshold(0).unwrap() > 0.0);
        assert!(binary.threshold(20).is_none());
    }

    #[test]
    fn allowed_code_override() {
        let mut mixed = example2_circuit();
        // Example 2: the code (0, 0) can never be produced.
        let codes = AllowedCodes::new(2, vec![vec![true, false], vec![true, true]]);
        mixed.set_allowed_codes(codes.clone());
        assert_eq!(mixed.allowed_codes(), codes);
        assert!(!mixed.allowed_codes().allows(&[false, false]));
    }

    #[test]
    fn too_small_digital_block_cannot_take_random_connection() {
        let analog = filters::second_order_band_pass();
        let adc = FlashAdc::uniform(15, 4.0).unwrap();
        let digital = circuits::figure3_circuit(); // only 4 inputs
        let mut mixed = MixedCircuit::new("m", analog, ConverterBlock::Flash(adc), digital);
        assert!(mixed.connect_randomly(1).is_err());
    }
}
