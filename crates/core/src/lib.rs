//! Mixed-signal automatic test vector generation — the primary contribution
//! of *Ayari, BenHamida & Kaminska, "Automatic Test Vector Generation for
//! Mixed-Signal Circuits" (DATE 1995)*.
//!
//! The crate assembles the analog, conversion and digital substrates into a
//! [`MixedCircuit`] and generates tests for it as a single entity:
//!
//! * [`digital_atpg`] — backtrack-free OBDD stuck-at ATPG with the
//!   constraint function `Fc` ([`constraint`]) imposed by the conversion
//!   block;
//! * [`activation`] — Table-1 stimulus selection for analog parametric
//!   faults;
//! * [`propagation`] — D/D̄ propagation from a conversion-block output
//!   through the digital block (Figure 6);
//! * [`analog_atpg`] / [`test_plan`] — the end-to-end flow producing a
//!   [`TestPlan`];
//! * [`report`] — plain-text tables used by the experiment binaries.
//!
//! See the crate-level examples of the `msatpg` facade crate and the
//! `msatpg-bench` binaries that regenerate every table and figure of the
//! paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod analog_atpg;
pub mod constraint;
pub mod digital_atpg;
pub mod mixed_circuit;
pub mod ordering;
pub mod propagation;
pub mod report;
pub mod store;
pub mod test_plan;

/// Execution policy and persistent worker pool of the workspace (re-export
/// of [`msatpg_exec`]).
pub use msatpg_bdd::{BddBudget, BddError};
pub use msatpg_digital::fault_sim::WordWidth;
pub use msatpg_exec::{CancelToken, ChaosInjector, ExecPolicy, PanicPolicy, PoolStats, WorkerPool};

pub use activation::{DeviationSign, StimulusPlan};
pub use analog_atpg::{AnalogAtpg, AnalogTestEntry, AnalogTestOutcome, AnalogTestVector};
pub use digital_atpg::{
    AbortReason, AtpgReport, DegradePolicy, DigitalAtpg, TestOutcome, TestVector,
};
pub use mixed_circuit::{ConverterBlock, MixedCircuit};
pub use ordering::{pi_order, DvoMode, StaticOrder, DVO_ENV_VAR};
pub use propagation::{PropagationEngine, PropagationResult};
pub use store::{Checkpoint, CheckpointPolicy, StoreError};
pub use test_plan::{AtpgOptions, MixedSignalAtpg, TestPlan};

use std::fmt;

/// Errors produced by the mixed-signal test generator.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An error bubbled up from the analog simulation layer.
    Analog(String),
    /// An error bubbled up from the digital simulation layer.
    Digital(String),
    /// An error bubbled up from the conversion-block models.
    Conversion(String),
    /// The mixed-circuit wiring is inconsistent.
    InvalidConnection {
        /// Explanation of the problem.
        reason: String,
    },
    /// No stimulus can activate the requested analog fault.
    ActivationImpossible {
        /// Explanation of the problem.
        reason: String,
    },
    /// The propagation engine was used inconsistently.
    Propagation {
        /// Explanation of the problem.
        reason: String,
    },
    /// A persistence operation (checkpoint write, artifact load) failed.
    ///
    /// The structured details live in [`store::StoreError`]; this variant
    /// carries its rendered message so `CoreError` can stay `Clone` +
    /// `PartialEq`.
    Store {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Analog(msg) => write!(f, "analog layer: {msg}"),
            CoreError::Digital(msg) => write!(f, "digital layer: {msg}"),
            CoreError::Conversion(msg) => write!(f, "conversion layer: {msg}"),
            CoreError::InvalidConnection { reason } => {
                write!(f, "invalid mixed-circuit connection: {reason}")
            }
            CoreError::ActivationImpossible { reason } => {
                write!(f, "analog fault activation impossible: {reason}")
            }
            CoreError::Propagation { reason } => write!(f, "propagation error: {reason}"),
            CoreError::Store { reason } => write!(f, "store error: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_variants() {
        let variants = vec![
            CoreError::Analog("a".into()),
            CoreError::Digital("d".into()),
            CoreError::Conversion("c".into()),
            CoreError::InvalidConnection { reason: "r".into() },
            CoreError::ActivationImpossible { reason: "r".into() },
            CoreError::Propagation { reason: "r".into() },
        ];
        for v in variants {
            assert!(!format!("{v}").is_empty());
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
