//! Backtrack-free, OBDD-based stuck-at test generation with constraints
//! (the paper's BDD_FTEST extended with the constraint function `Fc`).
//!
//! For a fault *l* s-a-*v*, the set of test vectors is obtained purely by
//! Boolean manipulation — no search, no backtracking:
//!
//! ```text
//! S = activation · propagation · Fc
//!   = (f_l ⊕ v) · (∂PO/∂l) · Fc
//! ```
//!
//! where `f_l` is the function of line *l* in terms of the primary inputs,
//! `∂PO/∂l` is the Boolean difference of a primary output with respect to
//! the line (computed by re-deriving the output with the line replaced by a
//! fresh variable `D`, which is last in the BDD ordering, exactly as in the
//! paper), and `Fc` encodes the assignments the conversion block can
//! produce.  Any path to `1` in `S` is a test vector; `S = ∅` for every
//! output means the fault is untestable under the constraints.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use msatpg_bdd::{Bdd, BddManager, Cube, VarId};
use msatpg_conversion::constraints::AllowedCodes;
use msatpg_digital::fault::{FaultList, StuckAtFault};
use msatpg_exec::{par_map_chunks_with, ExecPolicy};
use msatpg_digital::fault_sim::{word_mask, FaultCones, PpsfpScratch};
use msatpg_digital::gate::GateKind;
use msatpg_digital::netlist::{Netlist, SignalId};
use msatpg_digital::sim::Simulator;

use crate::constraint::{constraint_bdd, declare_input_variables};
use crate::CoreError;

/// The name of the auxiliary composite variable (kept last in the ordering).
const D_VAR_NAME: &str = "__D";

/// A generated test vector: an assignment to the primary inputs, with
/// don't-cares left open.
#[derive(Clone, Debug, PartialEq)]
pub struct TestVector {
    /// Values per primary input, in primary-input order (`None` =
    /// don't-care).
    pub assignment: Vec<Option<bool>>,
    /// The fault this vector was generated for.
    pub fault: StuckAtFault,
    /// Index of the primary output at which the fault is observed.
    pub observed_output: usize,
}

impl TestVector {
    /// Renders the vector as a `0`/`1`/`X` string over the primary inputs.
    pub fn to_pattern_string(&self) -> String {
        self.assignment
            .iter()
            .map(|v| match v {
                Some(true) => '1',
                Some(false) => '0',
                None => 'X',
            })
            .collect()
    }

    /// Fills the don't-cares with `fill` and returns a concrete pattern.
    pub fn concretize(&self, fill: bool) -> Vec<bool> {
        self.assignment.iter().map(|v| v.unwrap_or(fill)).collect()
    }
}

/// The outcome of generating a test for one fault.
#[derive(Clone, Debug, PartialEq)]
pub enum TestOutcome {
    /// A test vector exists (and is returned).
    Detected(TestVector),
    /// The fault was detected by a previously generated vector, so no new
    /// vector was emitted.
    PreviouslyDetected,
    /// No assignment activates the fault, propagates it to a primary output
    /// and satisfies the constraints.
    Untestable,
}

/// Summary of a full ATPG run over a fault list.
#[derive(Clone, Debug)]
pub struct AtpgReport {
    /// Name of the circuit.
    pub circuit: String,
    /// Total number of faults targeted.
    pub total_faults: usize,
    /// Number of detected faults (including those covered by earlier
    /// vectors).
    pub detected: usize,
    /// Faults for which no constrained test exists.
    pub untestable: Vec<StuckAtFault>,
    /// The generated vectors (after on-the-fly fault dropping).
    pub vectors: Vec<TestVector>,
    /// Wall-clock time spent.
    pub cpu: Duration,
    /// Whether a non-trivial constraint function was active.
    pub constrained: bool,
}

impl AtpgReport {
    /// Number of untestable faults.
    pub fn untestable_count(&self) -> usize {
        self.untestable.len()
    }

    /// Number of generated vectors.
    pub fn vector_count(&self) -> usize {
        self.vectors.len()
    }

    /// Fault coverage: detected / total.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }
}

/// The OBDD-based constrained test generator.
///
/// # Example
///
/// ```
/// use msatpg_core::digital_atpg::DigitalAtpg;
/// use msatpg_digital::circuits;
/// use msatpg_digital::fault::FaultList;
///
/// let circuit = circuits::figure3_circuit();
/// let faults = FaultList::all(&circuit);
/// let mut atpg = DigitalAtpg::new(&circuit);
/// let report = atpg.run(&faults)?;
/// // Considered alone, the Figure-3 circuit is fully testable.
/// assert_eq!(report.untestable_count(), 0);
/// # Ok::<(), msatpg_core::CoreError>(())
/// ```
pub struct DigitalAtpg<'a> {
    netlist: &'a Netlist,
    manager: BddManager,
    signal_bdds: Vec<Bdd>,
    fc: Bdd,
    d_var: VarId,
    fault_dropping: bool,
    constrained: bool,
    policy: ExecPolicy,
    /// The inputs of [`DigitalAtpg::with_constraints`], kept so parallel
    /// workers can rebuild an equivalent engine.
    constraint_spec: Option<(Vec<SignalId>, AllowedCodes)>,
}

impl<'a> DigitalAtpg<'a> {
    /// Builds the generator for a netlist without constraints (`Fc = 1`).
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut manager = BddManager::new();
        let pi_literals = declare_input_variables(&mut manager, netlist);
        // The composite variable is declared last, as prescribed by the
        // paper's ordering.
        let d_var = manager.var_id(D_VAR_NAME);
        let mut signal_bdds = vec![manager.zero(); netlist.signal_count()];
        for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
            signal_bdds[pi.index()] = pi_literals[i];
        }
        for gate in netlist.gates() {
            let inputs: Vec<Bdd> = gate.inputs.iter().map(|i| signal_bdds[i.index()]).collect();
            signal_bdds[gate.output.index()] = apply_gate(&mut manager, gate.kind, &inputs);
        }
        let fc = manager.one();
        DigitalAtpg {
            netlist,
            manager,
            signal_bdds,
            fc,
            d_var,
            fault_dropping: true,
            constrained: false,
            policy: ExecPolicy::Serial,
            constraint_spec: None,
        }
    }

    /// Installs the constraint function `Fc` derived from the conversion
    /// block: `lines[i]` is the digital input driven by converter output `i`
    /// and `codes` lists the producible assignments.
    ///
    /// # Errors
    ///
    /// Returns an error if a constrained line is not a primary input.
    pub fn with_constraints(
        mut self,
        lines: &[SignalId],
        codes: &AllowedCodes,
    ) -> Result<Self, CoreError> {
        for &line in lines {
            if !self.netlist.is_primary_input(line) {
                return Err(CoreError::InvalidConnection {
                    reason: format!(
                        "constrained line '{}' is not a primary input",
                        self.netlist.signal_name(line)
                    ),
                });
            }
        }
        self.fc = constraint_bdd(&mut self.manager, self.netlist, lines, codes);
        self.constrained = !codes.is_unconstrained();
        self.constraint_spec = Some((lines.to_vec(), codes.clone()));
        Ok(self)
    }

    /// Enables or disables on-the-fly fault dropping during [`Self::run`]
    /// (enabled by default).
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.fault_dropping = enabled;
        self
    }

    /// Sets the execution policy of [`Self::run`].  Under `Threads(n)` the
    /// per-fault test sets are generated speculatively in parallel (each
    /// worker builds its own OBDD engine) and the fault-dropping pass
    /// replays them sequentially, so the report is byte-identical to a
    /// serial run.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The constraint function currently in force.
    pub fn constraint(&self) -> Bdd {
        self.fc
    }

    /// Read-only access to the BDD manager (for inspection / DOT export).
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// The BDD of a signal's fault-free function over the primary inputs.
    pub fn signal_function(&self, signal: SignalId) -> Bdd {
        self.signal_bdds[signal.index()]
    }

    /// Generates a test for one fault, ignoring previously generated
    /// vectors.
    pub fn generate(&mut self, fault: StuckAtFault) -> TestOutcome {
        // 1. Activation: the line must carry the value opposite to the stuck
        //    value in the fault-free circuit.
        let line_fn = self.signal_bdds[fault.signal.index()];
        let activation = if fault.stuck_at {
            self.manager.not(line_fn)
        } else {
            line_fn
        };
        if activation.is_zero() {
            return TestOutcome::Untestable;
        }
        // 2. Re-derive the outputs with the fault site replaced by the free
        //    variable D (only the fanout cone needs recomputation).
        let faulty = self.functions_with_free_line(fault.signal);
        // 3. For each primary output, the test set is
        //    activation · (∂PO/∂D) · Fc.
        for (po_index, &po) in self.netlist.primary_outputs().iter().enumerate() {
            let f = faulty[po.index()];
            let observability = self.manager.boolean_difference(f, self.d_var);
            if observability.is_zero() {
                continue;
            }
            let act_obs = self.manager.and(activation, observability);
            let test_set = self.manager.and(act_obs, self.fc);
            if test_set.is_zero() {
                continue;
            }
            let cube = self
                .manager
                .sat_one(test_set)
                .expect("non-zero BDD has a satisfying cube");
            return TestOutcome::Detected(self.vector_from_cube(&cube, fault, po_index));
        }
        TestOutcome::Untestable
    }

    /// Generates every fault's outcome speculatively on the worker pool.
    ///
    /// [`Self::generate`] is a pure function of the (canonical) OBDD
    /// structure: it never depends on previously generated vectors, and
    /// independently built managers with the same declaration order yield
    /// the same satisfying cube.  So the parallel engines' outcomes equal
    /// what the sequential loop would have computed lazily, and the
    /// fault-dropping replay in [`Self::run`] reproduces the serial report
    /// byte for byte.  The speculation cost is one OBDD engine build per
    /// worker plus test sets for faults a serial run would have dropped.
    fn generate_all_parallel(&self, faults: &FaultList) -> Vec<Option<TestOutcome>> {
        let list = faults.faults();
        // Small chunks keep the pool's self-scheduling effective: per-fault
        // generation cost is highly uneven (hard faults explore far more
        // BDD nodes), so static one-chunk-per-worker splits would leave
        // workers idle behind the unlucky one.  The engine itself is built
        // once per worker and reused across its chunks.
        const GENERATE_CHUNK: usize = 8;
        let chunks = par_map_chunks_with(
            self.policy,
            list,
            GENERATE_CHUNK,
            || {
                let engine = DigitalAtpg::new(self.netlist);
                match &self.constraint_spec {
                    Some((lines, codes)) => engine
                        .with_constraints(lines, codes)
                        .expect("constraints were validated when installed on the primary engine"),
                    None => engine,
                }
            },
            |engine, _ci, _offset, chunk_faults| {
                chunk_faults
                    .iter()
                    .map(|&fault| Some(engine.generate(fault)))
                    .collect::<Vec<Option<TestOutcome>>>()
            },
        );
        chunks.into_iter().flatten().collect()
    }

    /// Runs the generator over a whole fault list, with fault dropping.
    ///
    /// Under a threaded [`ExecPolicy`] (see [`Self::with_policy`]) the
    /// per-fault generation runs concurrently up front; the sequential
    /// replay below keeps fault dropping synchronized through the shared
    /// pattern blocks exactly as in a serial run.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the fault-dropping pass (cannot
    /// occur for well-formed vectors).
    pub fn run(&mut self, faults: &FaultList) -> Result<AtpgReport, CoreError> {
        let start = Instant::now();
        let mut precomputed: Option<Vec<Option<TestOutcome>>> = if self.policy.workers() > 1 {
            Some(self.generate_all_parallel(faults))
        } else {
            None
        };
        // Fault-dropping pre-checks run word-parallel: generated patterns
        // accumulate in 64-wide good-value word blocks, and a candidate
        // fault is checked against a whole block with one cone-bounded
        // propagation (the same PPSFP kernel the fault simulator uses)
        // instead of one full faulty evaluation per (fault, pattern).
        let mut dropping = if self.fault_dropping {
            Some((
                FaultCones::build(self.netlist, faults.faults().iter().map(|f| f.signal)),
                PpsfpScratch::new(self.netlist),
                Simulator::new(self.netlist),
            ))
        } else {
            None
        };
        // Good-value words and valid-pattern mask per block; the last block
        // is rebuilt as it fills.
        let mut blocks: Vec<(Vec<u64>, u64)> = Vec::new();
        let mut open_block: Vec<Vec<bool>> = Vec::new();
        let mut vectors: Vec<TestVector> = Vec::new();
        let mut untestable = Vec::new();
        let mut detected = 0usize;
        for (fault_index, &fault) in faults.faults().iter().enumerate() {
            if let Some((cones, scratch, _)) = &mut dropping {
                let covered = blocks.iter().any(|(good, mask)| {
                    scratch.detection_word(self.netlist, cones, fault, good, *mask) != 0
                });
                if covered {
                    detected += 1;
                    continue;
                }
            }
            let outcome = match &mut precomputed {
                Some(outcomes) => outcomes[fault_index]
                    .take()
                    .expect("each fault's speculative outcome is consumed at most once"),
                None => self.generate(fault),
            };
            match outcome {
                TestOutcome::Detected(vector) => {
                    detected += 1;
                    if let Some((_, _, word_sim)) = &dropping {
                        open_block.push(vector.concretize(false));
                        let words = word_sim
                            .run_parallel_all(&open_block)
                            .map_err(|e| CoreError::Digital(e.to_string()))?;
                        let mask = word_mask(open_block.len());
                        if open_block.len() == 1 {
                            blocks.push((words, mask));
                        } else {
                            *blocks.last_mut().expect("open block exists") = (words, mask);
                        }
                        if open_block.len() == 64 {
                            open_block.clear();
                        }
                    }
                    vectors.push(vector);
                }
                TestOutcome::PreviouslyDetected => {
                    detected += 1;
                }
                TestOutcome::Untestable => untestable.push(fault),
            }
        }
        Ok(AtpgReport {
            circuit: self.netlist.name().to_owned(),
            total_faults: faults.len(),
            detected,
            untestable,
            vectors,
            cpu: start.elapsed(),
            constrained: self.constrained,
        })
    }

    /// Signal functions with `line` replaced by the free variable `D`
    /// (faulty-cone recomputation).
    fn functions_with_free_line(&mut self, line: SignalId) -> Vec<Bdd> {
        let mut values = self.signal_bdds.clone();
        values[line.index()] = self.manager.literal(self.d_var, true);
        let cone: HashMap<usize, ()> = self
            .netlist
            .fanout_cone(line)
            .into_iter()
            .map(|s| (s.index(), ()))
            .collect();
        for gate in self.netlist.gates() {
            if gate.output == line || !cone.contains_key(&gate.output.index()) {
                continue;
            }
            let inputs: Vec<Bdd> = gate.inputs.iter().map(|i| values[i.index()]).collect();
            values[gate.output.index()] = apply_gate(&mut self.manager, gate.kind, &inputs);
        }
        values
    }

    fn vector_from_cube(&self, cube: &Cube, fault: StuckAtFault, po_index: usize) -> TestVector {
        let assignment = self
            .netlist
            .primary_inputs()
            .iter()
            .map(|&pi| {
                self.manager
                    .var_index(self.netlist.signal_name(pi))
                    .and_then(|v| cube.get(v))
            })
            .collect();
        TestVector {
            assignment,
            fault,
            observed_output: po_index,
        }
    }
}

fn apply_gate(manager: &mut BddManager, kind: GateKind, inputs: &[Bdd]) -> Bdd {
    match kind {
        GateKind::Buf => inputs[0],
        GateKind::Not => manager.not(inputs[0]),
        GateKind::And => manager.and_all(inputs.iter().copied()),
        GateKind::Nand => {
            let a = manager.and_all(inputs.iter().copied());
            manager.not(a)
        }
        GateKind::Or => manager.or_all(inputs.iter().copied()),
        GateKind::Nor => {
            let o = manager.or_all(inputs.iter().copied());
            manager.not(o)
        }
        GateKind::Xor => inputs
            .iter()
            .skip(1)
            .fold(inputs[0], |acc, &b| manager.xor(acc, b)),
        GateKind::Xnor => {
            let x = inputs
                .iter()
                .skip(1)
                .fold(inputs[0], |acc, &b| manager.xor(acc, b));
            manager.not(x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_digital::circuits;
    use msatpg_digital::fault::FaultList;
    use msatpg_digital::fault_sim::FaultSimulator;

    fn example2_constraint() -> AllowedCodes {
        // Fc = l0 + l2: every code except (0, 0).
        AllowedCodes::new(
            2,
            vec![
                vec![true, false],
                vec![false, true],
                vec![true, true],
            ],
        )
    }

    #[test]
    fn figure3_alone_is_fully_testable() {
        let circuit = circuits::figure3_circuit();
        let faults = FaultList::all(&circuit);
        let mut atpg = DigitalAtpg::new(&circuit);
        let report = atpg.run(&faults).unwrap();
        assert_eq!(report.total_faults, 18);
        assert_eq!(report.untestable_count(), 0);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert!(!report.constrained);
        assert!(report.vector_count() <= report.detected);
    }

    #[test]
    fn figure3_under_constraints_loses_one_equivalence_class() {
        // The paper: with Fc = l0 + l2, the faults l0 s-a-1 and l3 s-a-1
        // become undetectable (two named faults of one equivalence class).
        // In our gate-level realization the OR gate that combines l0 and the
        // l2-branch l3 materializes a third equivalent fault (its output
        // s-a-1), so the uncollapsed run reports three undetectable faults —
        // all structurally equivalent — and the collapsed run reports two,
        // matching the paper's count.
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let l3 = circuit.find_signal("l3").unwrap();
        let l6 = circuit.find_signal("l6").unwrap();

        let uncollapsed = FaultList::all(&circuit);
        let mut atpg = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        let report = atpg.run(&uncollapsed).unwrap();
        assert!(report.constrained);
        assert_eq!(report.untestable_count(), 3, "untestable: {:?}", report.untestable);
        assert!(report.untestable.contains(&StuckAtFault::sa1(l0)));
        assert!(report.untestable.contains(&StuckAtFault::sa1(l3)));
        assert!(report.untestable.contains(&StuckAtFault::sa1(l6)));

        let collapsed = FaultList::collapsed(&circuit);
        let mut atpg2 = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        let report2 = atpg2.run(&collapsed).unwrap();
        assert_eq!(report2.untestable_count(), 2, "untestable: {:?}", report2.untestable);
        assert!(report2.untestable.contains(&StuckAtFault::sa1(l0)));
    }

    #[test]
    fn generated_vector_matches_paper_example() {
        // Fault l3 s-a-0 under Fc = l0 + l2: the paper derives the test
        // vector {l0, l1, l2, l4} = {0, 0, 1, X}.  Our generator must produce
        // a vector that activates, propagates and satisfies the constraint;
        // l2 = 1 and l0 = 0 are forced, the others may differ.
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let l3 = circuit.find_signal("l3").unwrap();
        let mut atpg = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        match atpg.generate(StuckAtFault::sa0(l3)) {
            TestOutcome::Detected(vector) => {
                // PI order is l0, l1, l2, l4.
                assert_eq!(vector.assignment[2], Some(true), "l2 must be 1 to activate");
                assert_eq!(vector.assignment[0], Some(false), "l0 must be 0 to propagate");
                let pattern = vector.to_pattern_string();
                assert_eq!(pattern.len(), 4);
            }
            other => panic!("expected a test, got {other:?}"),
        }
    }

    #[test]
    fn every_generated_vector_really_detects_its_fault() {
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let mut atpg = DigitalAtpg::new(&circuit);
        let report = atpg.run(&faults).unwrap();
        assert_eq!(report.untestable_count(), 0, "the adder is fully testable");
        let sim = FaultSimulator::new(&circuit);
        for vector in &report.vectors {
            let pattern = vector.concretize(false);
            assert!(
                sim.detects(vector.fault, &pattern).unwrap(),
                "vector {} must detect {}",
                vector.to_pattern_string(),
                vector.fault.describe(&circuit)
            );
        }
    }

    #[test]
    fn constrained_vectors_satisfy_the_constraint() {
        let circuit = circuits::figure3_circuit();
        let faults = FaultList::all(&circuit);
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let codes = example2_constraint();
        let mut atpg = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &codes)
            .unwrap();
        let report = atpg.run(&faults).unwrap();
        for vector in &report.vectors {
            let pattern = vector.concretize(false);
            // PI order: l0, l1, l2, l4 → constrained assignment is (l0, l2).
            let constrained = vec![pattern[0], pattern[2]];
            assert!(
                codes.allows(&constrained),
                "vector {} violates Fc",
                vector.to_pattern_string()
            );
        }
    }

    #[test]
    fn dropping_reduces_vector_count_but_not_coverage() {
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let with_drop = DigitalAtpg::new(&circuit).run(&faults).unwrap();
        let without_drop = DigitalAtpg::new(&circuit)
            .with_fault_dropping(false)
            .run(&faults)
            .unwrap();
        assert_eq!(with_drop.detected, without_drop.detected);
        assert!(with_drop.vector_count() <= without_drop.vector_count());
        assert!(without_drop.cpu >= Duration::ZERO);
    }

    #[test]
    fn parallel_runs_are_byte_identical_to_serial() {
        // Unconstrained adder and constrained Figure-3: every report field
        // except the wall-clock must match the serial run exactly, for both
        // dropping modes.
        let adder = circuits::adder4();
        let adder_faults = FaultList::collapsed(&adder);
        let figure3 = circuits::figure3_circuit();
        let figure3_faults = FaultList::all(&figure3);
        let l0 = figure3.find_signal("l0").unwrap();
        let l2 = figure3.find_signal("l2").unwrap();
        for dropping in [true, false] {
            let reference = DigitalAtpg::new(&adder)
                .with_fault_dropping(dropping)
                .run(&adder_faults)
                .unwrap();
            let constrained_reference = DigitalAtpg::new(&figure3)
                .with_constraints(&[l0, l2], &example2_constraint())
                .unwrap()
                .with_fault_dropping(dropping)
                .run(&figure3_faults)
                .unwrap();
            for threads in [2usize, 8] {
                let parallel = DigitalAtpg::new(&adder)
                    .with_fault_dropping(dropping)
                    .with_policy(ExecPolicy::Threads(threads))
                    .run(&adder_faults)
                    .unwrap();
                assert_eq!(parallel.detected, reference.detected);
                assert_eq!(parallel.untestable, reference.untestable);
                assert_eq!(parallel.vectors, reference.vectors);
                let parallel = DigitalAtpg::new(&figure3)
                    .with_constraints(&[l0, l2], &example2_constraint())
                    .unwrap()
                    .with_fault_dropping(dropping)
                    .with_policy(ExecPolicy::Threads(threads))
                    .run(&figure3_faults)
                    .unwrap();
                assert_eq!(parallel.detected, constrained_reference.detected);
                assert_eq!(parallel.untestable, constrained_reference.untestable);
                assert_eq!(parallel.vectors, constrained_reference.vectors);
                assert_eq!(parallel.constrained, constrained_reference.constrained);
            }
        }
    }

    #[test]
    fn constraining_a_non_input_line_is_rejected() {
        let circuit = circuits::figure3_circuit();
        let l6 = circuit.find_signal("l6").unwrap();
        let result =
            DigitalAtpg::new(&circuit).with_constraints(&[l6], &AllowedCodes::new(1, vec![vec![true]]));
        assert!(result.is_err());
    }

    #[test]
    fn signal_functions_are_exposed() {
        let circuit = circuits::figure3_circuit();
        let atpg = DigitalAtpg::new(&circuit);
        let l6 = circuit.find_signal("l6").unwrap();
        let f = atpg.signal_function(l6);
        // l6 = l0 OR l3 = l0 OR l2 (through the buffer).
        assert_eq!(atpg.manager().support(f).len(), 2);
        assert!(atpg.constraint().is_one());
    }
}
