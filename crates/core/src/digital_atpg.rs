//! Backtrack-free, OBDD-based stuck-at test generation with constraints
//! (the paper's BDD_FTEST extended with the constraint function `Fc`).
//!
//! For a fault *l* s-a-*v*, the set of test vectors is obtained purely by
//! Boolean manipulation — no search, no backtracking:
//!
//! ```text
//! S = activation · propagation · Fc
//!   = (f_l ⊕ v) · (∂PO/∂l) · Fc
//! ```
//!
//! where `f_l` is the function of line *l* in terms of the primary inputs,
//! `∂PO/∂l` is the Boolean difference of a primary output with respect to
//! the line (computed by re-deriving the output with the line replaced by a
//! fresh variable `D`, which is last in the BDD ordering, exactly as in the
//! paper), and `Fc` encodes the assignments the conversion block can
//! produce.  Any path to `1` in `S` is a test vector; `S = ∅` for every
//! output means the fault is untestable under the constraints.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use msatpg_bdd::{Bdd, BddBudget, BddError, BddManager, Cube, VarId};
use msatpg_conversion::constraints::AllowedCodes;
use msatpg_digital::fault::{FaultList, StuckAtFault};
use msatpg_digital::fault_sim::{block_mask, FaultCones, FaultSimulator, PpsfpScratch, WordWidth};
use msatpg_digital::gate::GateKind;
use msatpg_digital::netlist::{Netlist, SignalId};
use msatpg_digital::random_tpg::RandomPatternGenerator;
use msatpg_digital::sim::Simulator;
use msatpg_exec::{CancelToken, ChaosEvent, ChaosInjector, ExecPolicy, PanicPolicy, WorkerPool};

use crate::constraint::{constraint_bdd, declare_input_variables};
use crate::ordering::{DvoMode, StaticOrder};
use crate::store::{self, Checkpoint, CheckpointPolicy};
use crate::CoreError;

/// The name of the auxiliary composite variable (kept last in the ordering).
const D_VAR_NAME: &str = "__D";

/// Live-node watermark above which the per-fault safe point sweeps the BDD
/// arena.  Every fault target re-derives its faulty cone and test set from
/// scratch, so the garbage fraction grows linearly with the fault count;
/// the long-lived state (signal functions and `Fc`) is protected at
/// construction and survives every collection, which makes the sweep
/// invisible in the generated vectors.
const GC_WATERMARK: usize = 1 << 16;

/// A generated test vector: an assignment to the primary inputs, with
/// don't-cares left open.
#[derive(Clone, Debug, PartialEq)]
pub struct TestVector {
    /// Values per primary input, in primary-input order (`None` =
    /// don't-care).
    pub assignment: Vec<Option<bool>>,
    /// The fault this vector was generated for.
    pub fault: StuckAtFault,
    /// Index of the primary output at which the fault is observed.
    pub observed_output: usize,
}

impl TestVector {
    /// Renders the vector as a `0`/`1`/`X` string over the primary inputs.
    pub fn to_pattern_string(&self) -> String {
        self.assignment
            .iter()
            .map(|v| match v {
                Some(true) => '1',
                Some(false) => '0',
                None => 'X',
            })
            .collect()
    }

    /// Fills the don't-cares with `fill` and returns a concrete pattern.
    pub fn concretize(&self, fill: bool) -> Vec<bool> {
        self.assignment.iter().map(|v| v.unwrap_or(fill)).collect()
    }
}

/// Why a fault target was abandoned without a definitive answer.
///
/// An aborted fault is neither detected nor proven untestable: the
/// backtrack-free generator gave up (resource quota, deadline or an isolated
/// panic) before the test set was derived, and the random-pattern fallback
/// (when one ran) did not detect the fault either.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The armed [`BddBudget`] (node or step quota) was exhausted while
    /// deriving the fault's test set, and the degradation fallback did not
    /// detect the fault.
    Budget,
    /// The armed [`CancelToken`] fired — step quota, wall-clock deadline or
    /// an explicit [`CancelToken::cancel`] — before this fault was targeted.
    Deadline,
    /// Generating this fault's test set panicked and
    /// [`PanicPolicy::Isolate`] confined the damage to this fault.
    Panic,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Budget => write!(f, "resource budget exhausted"),
            AbortReason::Deadline => write!(f, "cancelled (deadline or quota)"),
            AbortReason::Panic => write!(f, "generation panicked (isolated)"),
        }
    }
}

/// The outcome of generating a test for one fault.
#[derive(Clone, Debug, PartialEq)]
pub enum TestOutcome {
    /// A test vector exists (and is returned).
    Detected(TestVector),
    /// The fault was detected by a previously generated vector, so no new
    /// vector was emitted.
    PreviouslyDetected,
    /// No assignment activates the fault, propagates it to a primary output
    /// and satisfies the constraints.
    Untestable,
    /// Deterministic generation hit a resource limit, but a seeded random
    /// pattern (drawn under the constraints and verified by the PPSFP
    /// kernel) detects the fault: graceful degradation.  The vector is fully
    /// specified (no don't-cares) and counts toward coverage.
    Degraded(TestVector),
    /// The fault target was abandoned for the given reason; its
    /// detectability is unknown.
    Aborted(AbortReason),
}

/// Summary of a full ATPG run over a fault list.
#[derive(Clone, Debug)]
pub struct AtpgReport {
    /// Name of the circuit.
    pub circuit: String,
    /// Total number of faults targeted.
    pub total_faults: usize,
    /// Number of detected faults (including those covered by earlier
    /// vectors).
    pub detected: usize,
    /// Faults for which no constrained test exists.
    pub untestable: Vec<StuckAtFault>,
    /// Faults detected only by the random-pattern degradation fallback
    /// (a subset of the `detected` count), in fault-list order.
    pub degraded: Vec<StuckAtFault>,
    /// Faults abandoned without detection, with the reason, in fault-list
    /// order.
    pub aborted: Vec<(StuckAtFault, AbortReason)>,
    /// The generated vectors (after on-the-fly fault dropping).
    pub vectors: Vec<TestVector>,
    /// Wall-clock time spent.
    pub cpu: Duration,
    /// Whether a non-trivial constraint function was active.
    pub constrained: bool,
}

impl AtpgReport {
    /// Number of untestable faults.
    pub fn untestable_count(&self) -> usize {
        self.untestable.len()
    }

    /// Number of faults detected only through the degradation fallback.
    pub fn degraded_count(&self) -> usize {
        self.degraded.len()
    }

    /// Number of faults abandoned without detection.
    pub fn aborted_count(&self) -> usize {
        self.aborted.len()
    }

    /// Number of generated vectors.
    pub fn vector_count(&self) -> usize {
        self.vectors.len()
    }

    /// Fault coverage: detected / total.  Aborted faults count as not
    /// detected; degraded faults were verified by simulation and count.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }
}

/// Configuration of the graceful-degradation fallback: when the armed
/// [`BddBudget`] aborts a fault's deterministic generation, the driver draws
/// seeded random patterns (filtered against the constraint codes, when
/// constraints are installed) and verifies them against the fault with the
/// PPSFP kernel.  The first detecting pattern becomes the fault's
/// [`TestOutcome::Degraded`] vector; if none detects it the fault is
/// reported as [`TestOutcome::Aborted`] with [`AbortReason::Budget`].
///
/// The fallback is a pure function of `(seed, fault)`, so degraded outcomes
/// are byte-identical across thread counts and runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Base seed of the per-fault pattern generator (each fault derives its
    /// own stream from this seed and its identity).
    pub seed: u64,
    /// Number of candidate patterns drawn per aborted fault (constraint
    /// filtering may accept fewer).
    pub patterns: usize,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            seed: 0x5EED_FA11,
            patterns: 192,
        }
    }
}

/// Faults per pipeline round: while the replay consumes one round, the pool
/// generates the next.
const REPLAY_CHUNK: usize = 64;

/// Faults per generation work unit within a round (small, so the pool's
/// chunk stealing balances the very uneven per-fault generation cost).
const GENERATE_CHUNK: usize = 8;

/// The width-generic coverage store behind [`ReplayState`]: generated
/// patterns accumulate in `64 * W`-wide good-value blocks, and a candidate
/// fault is checked against a whole block with one cone-bounded propagation
/// (the same PPSFP kernel the fault simulator uses) instead of one full
/// faulty evaluation per (fault, pattern).
///
/// The coverage answer is a boolean OR over all absorbed patterns, so it is
/// independent of how those patterns are grouped into blocks — which is why
/// reports stay byte-identical across widths.
struct WideCoverage<const W: usize> {
    cones: FaultCones,
    scratch: PpsfpScratch<W>,
    /// Good-value blocks and valid-pattern mask per block; the last block
    /// is rebuilt as it fills.
    blocks: Vec<(Vec<[u64; W]>, [u64; W])>,
    open_block: Vec<Vec<bool>>,
}

impl<const W: usize> WideCoverage<W> {
    fn new(netlist: &Netlist, faults: &FaultList) -> Self {
        WideCoverage {
            cones: FaultCones::build(netlist, faults.faults().iter().map(|f| f.signal)),
            scratch: PpsfpScratch::new(netlist),
            blocks: Vec::new(),
            open_block: Vec::new(),
        }
    }

    fn covered(&mut self, netlist: &Netlist, fault: StuckAtFault) -> bool {
        let scratch = &mut self.scratch;
        let cones = &self.cones;
        self.blocks.iter().any(|(good, mask)| {
            scratch.detection_block(netlist, cones, fault, good, *mask) != [0; W]
        })
    }

    fn absorb(&mut self, netlist: &Netlist, pattern: Vec<bool>) -> Result<(), CoreError> {
        self.open_block.push(pattern);
        let words = Simulator::new(netlist)
            .run_parallel_blocks::<W>(&self.open_block)
            .map_err(|e| CoreError::Digital(e.to_string()))?;
        let mask = block_mask::<W>(self.open_block.len());
        if self.open_block.len() == 1 {
            self.blocks.push((words, mask));
        } else {
            *self.blocks.last_mut().expect("open block exists") = (words, mask);
        }
        if self.open_block.len() == 64 * W {
            self.open_block.clear();
        }
        Ok(())
    }
}

/// The coverage store at the width the engine runs at (one monomorphized
/// instantiation per supported lane count).
enum Dropping {
    W1(WideCoverage<1>),
    W4(WideCoverage<4>),
    W8(WideCoverage<8>),
}

impl Dropping {
    fn new(netlist: &Netlist, faults: &FaultList, width: WordWidth) -> Self {
        match width.lanes() {
            4 => Dropping::W4(WideCoverage::new(netlist, faults)),
            8 => Dropping::W8(WideCoverage::new(netlist, faults)),
            _ => Dropping::W1(WideCoverage::new(netlist, faults)),
        }
    }
}

/// The sequential fault-dropping replay: consumes per-fault outcomes in
/// fault-list order and maintains the word-parallel coverage blocks
/// ([`WideCoverage`]).  Both the serial loop and the pipelined driver run
/// exactly this state machine, which is what keeps their reports
/// byte-identical.
struct ReplayState<'n> {
    netlist: &'n Netlist,
    dropping: Option<Dropping>,
    vectors: Vec<TestVector>,
    untestable: Vec<StuckAtFault>,
    degraded: Vec<StuckAtFault>,
    aborted: Vec<(StuckAtFault, AbortReason)>,
    detected: usize,
}

impl<'n> ReplayState<'n> {
    fn new(
        netlist: &'n Netlist,
        fault_dropping: bool,
        faults: &FaultList,
        width: WordWidth,
    ) -> Self {
        let dropping = fault_dropping.then(|| Dropping::new(netlist, faults, width));
        ReplayState {
            netlist,
            dropping,
            vectors: Vec::new(),
            untestable: Vec::new(),
            degraded: Vec::new(),
            aborted: Vec::new(),
            detected: 0,
        }
    }

    /// Is the fault already detected by a previously replayed vector?
    /// Always `false` with fault dropping disabled.  Coverage is monotone:
    /// blocks only gain patterns, so once covered a fault stays covered.
    fn covered(&mut self, fault: StuckAtFault) -> bool {
        match &mut self.dropping {
            None => false,
            Some(Dropping::W1(c)) => c.covered(self.netlist, fault),
            Some(Dropping::W4(c)) => c.covered(self.netlist, fault),
            Some(Dropping::W8(c)) => c.covered(self.netlist, fault),
        }
    }

    /// Applies one fault's outcome: bumps the detected count, folds a new
    /// vector into the word blocks, or records the fault as untestable,
    /// degraded or aborted.
    fn consume(&mut self, fault: StuckAtFault, outcome: TestOutcome) -> Result<(), CoreError> {
        match outcome {
            TestOutcome::Detected(vector) => {
                self.detected += 1;
                self.absorb_vector(vector)?;
            }
            TestOutcome::PreviouslyDetected => {
                self.detected += 1;
            }
            TestOutcome::Untestable => self.untestable.push(fault),
            TestOutcome::Degraded(vector) => {
                // A degraded vector is a real, simulation-verified test: it
                // counts toward coverage and feeds the fault-dropping blocks
                // exactly like a deterministically generated one.
                self.detected += 1;
                self.degraded.push(fault);
                self.absorb_vector(vector)?;
            }
            TestOutcome::Aborted(reason) => self.aborted.push((fault, reason)),
        }
        Ok(())
    }

    /// Records a new test vector and folds it into the word-parallel
    /// coverage blocks used by the fault-dropping pre-checks.
    fn absorb_vector(&mut self, vector: TestVector) -> Result<(), CoreError> {
        if let Some(dropping) = &mut self.dropping {
            let pattern = vector.concretize(false);
            match dropping {
                Dropping::W1(c) => c.absorb(self.netlist, pattern)?,
                Dropping::W4(c) => c.absorb(self.netlist, pattern)?,
                Dropping::W8(c) => c.absorb(self.netlist, pattern)?,
            }
        }
        self.vectors.push(vector);
        Ok(())
    }
}

/// The OBDD-based constrained test generator.
///
/// # Example
///
/// ```
/// use msatpg_core::digital_atpg::DigitalAtpg;
/// use msatpg_digital::circuits;
/// use msatpg_digital::fault::FaultList;
///
/// let circuit = circuits::figure3_circuit();
/// let faults = FaultList::all(&circuit);
/// let mut atpg = DigitalAtpg::new(&circuit);
/// let report = atpg.run(&faults)?;
/// // Considered alone, the Figure-3 circuit is fully testable.
/// assert_eq!(report.untestable_count(), 0);
/// # Ok::<(), msatpg_core::CoreError>(())
/// ```
pub struct DigitalAtpg<'a> {
    netlist: &'a Netlist,
    manager: BddManager,
    signal_bdds: Vec<Bdd>,
    fc: Bdd,
    d_var: VarId,
    fault_dropping: bool,
    constrained: bool,
    policy: ExecPolicy,
    width: WordWidth,
    /// The inputs of [`DigitalAtpg::with_constraints`], kept so parallel
    /// workers can rebuild an equivalent engine.
    constraint_spec: Option<(Vec<SignalId>, AllowedCodes)>,
    budget: BddBudget,
    cancel: Option<CancelToken>,
    chaos: Option<ChaosInjector>,
    panic_policy: PanicPolicy,
    degrade: DegradePolicy,
    checkpoint: Option<(CheckpointPolicy, PathBuf)>,
    resume: Option<Checkpoint>,
    static_order: StaticOrder,
    dvo: DvoMode,
}

/// A per-fault generation failure the driver translates into an outcome.
enum GenFailure {
    /// The BDD layer reported a structured interruption.
    Bdd(BddError),
    /// The generation job panicked under [`PanicPolicy::Isolate`].
    Panicked,
}

/// The campaign journal: records every outcome in fault-list order on the
/// replay driver and flushes the accumulated snapshot per the armed
/// [`CheckpointPolicy`].  A disarmed journal (no checkpoint configured) is
/// a no-op.
///
/// Flushes go through the store's chaotic write hook so the
/// [`ChaosInjector`]'s store classes (crash, torn write, bit flip) can
/// corrupt a checkpoint deterministically in tests; the chaos site is the
/// journal length at the flush.
struct CampaignJournal {
    armed: Option<(CheckpointPolicy, PathBuf)>,
    chaos: Option<ChaosInjector>,
    checkpoint: Checkpoint,
    /// The on-cancel flush fires once, at the first `Aborted(Deadline)`:
    /// after that every remaining fault aborts the same way, and flushing
    /// the whole tail one entry at a time would be quadratic.
    cancel_flushed: bool,
}

impl CampaignJournal {
    fn new(
        armed: Option<(CheckpointPolicy, PathBuf)>,
        chaos: Option<ChaosInjector>,
        netlist: &Netlist,
        faults: &FaultList,
    ) -> Self {
        let outcomes = Vec::with_capacity(if armed.is_some() { faults.len() } else { 0 });
        CampaignJournal {
            armed,
            chaos,
            checkpoint: Checkpoint {
                circuit: netlist.name().to_owned(),
                total_faults: faults.len(),
                faults_digest: store::faults_digest(faults.faults()),
                outcomes,
            },
            cancel_flushed: false,
        }
    }

    /// Journals one outcome and flushes if the policy says so.
    fn record(&mut self, outcome: &TestOutcome) -> Result<(), CoreError> {
        let Some((policy, _)) = &self.armed else {
            return Ok(());
        };
        self.checkpoint.outcomes.push(outcome.clone());
        let flush = match outcome {
            TestOutcome::Aborted(AbortReason::Deadline) => {
                policy.on_cancel && !std::mem::replace(&mut self.cancel_flushed, true)
            }
            TestOutcome::Aborted(_) => policy.on_abort,
            _ => policy.every != 0 && self.checkpoint.outcomes.len() % policy.every == 0,
        };
        if flush {
            self.flush()?;
        }
        Ok(())
    }

    /// The end-of-campaign flush: an armed journal always persists its
    /// final state, so a completed run leaves a complete snapshot behind.
    fn finish(&mut self) -> Result<(), CoreError> {
        if self.armed.is_some() {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), CoreError> {
        let Some((_, path)) = &self.armed else {
            return Ok(());
        };
        let site = self.checkpoint.outcomes.len() as u64;
        store::save_checkpoint_chaotic(
            path,
            &self.checkpoint,
            self.chaos.as_ref().map(|c| (c, site)),
        )
        .map_err(CoreError::from)
    }
}

impl<'a> DigitalAtpg<'a> {
    /// Builds the generator for a netlist without constraints (`Fc = 1`),
    /// declaring the input variables in netlist order (the paper's order).
    pub fn new(netlist: &'a Netlist) -> Self {
        Self::new_ordered(netlist, StaticOrder::Declaration)
    }

    /// Builds the generator with the primary-input variables declared in
    /// the order computed by the static heuristic `order` (see
    /// [`StaticOrder`]); the composite variable `D` stays last regardless.
    /// Everything downstream addresses variables by name, so any order
    /// produces equivalent (though not byte-identical) results — only the
    /// OBDD sizes change.
    pub fn new_ordered(netlist: &'a Netlist, order: StaticOrder) -> Self {
        let mut manager = BddManager::new();
        // Pre-declare the inputs in the heuristic's order; the by-name
        // declaration below is then a no-op lookup that returns the
        // literals in netlist order for the signal table.
        for &pi in &crate::ordering::pi_order(netlist, order) {
            manager.var_id(netlist.signal_name(pi));
        }
        let pi_literals = declare_input_variables(&mut manager, netlist);
        // The composite variable is declared last, as prescribed by the
        // paper's ordering.
        let d_var = manager.var_id(D_VAR_NAME);
        let mut signal_bdds = vec![manager.zero(); netlist.signal_count()];
        for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
            signal_bdds[pi.index()] = pi_literals[i];
        }
        for gate in netlist.gates() {
            let inputs: Vec<Bdd> = gate.inputs.iter().map(|i| signal_bdds[i.index()]).collect();
            signal_bdds[gate.output.index()] = apply_gate(&mut manager, gate.kind, &inputs);
        }
        // The signal functions are the engine's long-lived state: register
        // them as GC roots so the per-fault safe point in
        // [`DigitalAtpg::generate`] can sweep everything else.
        for &f in &signal_bdds {
            manager.protect(f);
        }
        let fc = manager.one();
        DigitalAtpg {
            netlist,
            manager,
            signal_bdds,
            fc,
            d_var,
            fault_dropping: true,
            constrained: false,
            policy: ExecPolicy::Serial,
            width: WordWidth::Auto,
            constraint_spec: None,
            budget: BddBudget::UNLIMITED,
            cancel: None,
            chaos: None,
            panic_policy: PanicPolicy::FailFast,
            degrade: DegradePolicy::default(),
            checkpoint: None,
            resume: None,
            static_order: order,
            dvo: DvoMode::Never,
        }
    }

    /// Installs the constraint function `Fc` derived from the conversion
    /// block: `lines[i]` is the digital input driven by converter output `i`
    /// and `codes` lists the producible assignments.
    ///
    /// # Errors
    ///
    /// Returns an error if a constrained line is not a primary input, or if
    /// the allowed-code width does not match the number of constrained
    /// lines.
    pub fn with_constraints(
        mut self,
        lines: &[SignalId],
        codes: &AllowedCodes,
    ) -> Result<Self, CoreError> {
        if !codes.is_unconstrained() && codes.width() != lines.len() {
            return Err(CoreError::InvalidConnection {
                reason: format!(
                    "allowed-code width {} does not match the {} constrained lines",
                    codes.width(),
                    lines.len()
                ),
            });
        }
        for &line in lines {
            if !self.netlist.is_primary_input(line) {
                return Err(CoreError::InvalidConnection {
                    reason: format!(
                        "constrained line '{}' is not a primary input",
                        self.netlist.signal_name(line)
                    ),
                });
            }
        }
        self.manager.unprotect(self.fc);
        self.fc = constraint_bdd(&mut self.manager, self.netlist, lines, codes);
        self.manager.protect(self.fc);
        self.constrained = !codes.is_unconstrained();
        self.constraint_spec = Some((lines.to_vec(), codes.clone()));
        Ok(self)
    }

    /// Enables or disables on-the-fly fault dropping during [`Self::run`]
    /// (enabled by default).
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.fault_dropping = enabled;
        self
    }

    /// Sets the execution policy of [`Self::run`].  Under `Threads(n)` the
    /// per-fault test sets are generated speculatively in parallel (each
    /// worker builds its own OBDD engine) and the fault-dropping pass
    /// replays them sequentially, so the report is byte-identical to a
    /// serial run.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the PPSFP block width used by the fault-dropping pre-screens
    /// and the degraded-fault verification (see
    /// [`WordWidth`]; the default
    /// honors the `MSATPG_WORD_WIDTH` environment variable).  Reports —
    /// and checkpoint files — are byte-identical across widths; only the
    /// wall-clock changes.
    pub fn with_word_width(mut self, width: WordWidth) -> Self {
        self.width = width;
        self
    }

    /// Sets the dynamic-variable-ordering mode (the default honors the
    /// `MSATPG_DVO` environment variable; see [`DvoMode`]).  When active,
    /// the engine's manager is sifted to convergence immediately — a
    /// deterministic construction-time safe point where the signal
    /// functions and `Fc` are the only protected roots — so apply this
    /// *after* [`Self::with_constraints`] and [`Self::with_budget`]; the
    /// pipelined worker engines replay the same sequence.  A sift
    /// interrupted by the budget leaves the manager consistent and the
    /// outcome deterministic, so the builder stays infallible.
    pub fn with_dvo(mut self, mode: DvoMode) -> Self {
        self.dvo = mode;
        if mode.is_active() {
            let _ = self.manager.try_sift_until_convergence();
        }
        self
    }

    /// Arms a [`BddBudget`] on the engine's OBDD manager.  Fault targets
    /// whose test-set derivation exceeds the quota are degraded to the
    /// random-pattern fallback (see [`DigitalAtpg::with_degradation`]) or
    /// reported as [`TestOutcome::Aborted`] with [`AbortReason::Budget`];
    /// every other fault is unaffected.
    ///
    /// Budgeted outcomes are deterministic: with a budget armed the engine
    /// collects to its protected baseline and re-opens the step quota before
    /// every fault target, so each outcome is a pure function of the fault —
    /// identical across serial, pipelined and worker engines.
    pub fn with_budget(mut self, budget: BddBudget) -> Self {
        self.budget = budget;
        self.manager.set_budget(budget);
        self
    }

    /// Arms a cooperative [`CancelToken`].  The replay driver charges one
    /// step of the token's quota per targeted fault **in fault-list order**,
    /// so a step-quota token aborts at the identical fault on every thread
    /// count; workers only *observe* the token (wasted speculation, never
    /// the report).  Once the token fires, every remaining fault is reported
    /// as [`TestOutcome::Aborted`] with [`AbortReason::Deadline`].
    /// Wall-clock deadlines cancel cooperatively too, but their abort point
    /// is inherently timing-dependent.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.manager.set_cancel_token(Some(token.clone()));
        self.cancel = Some(token);
        self
    }

    /// Installs a deterministic fault-injection harness: at each fault
    /// target the injector (a pure function of its seed and the fault
    /// index) may simulate a budget exhaustion, a cancellation, or — under
    /// [`PanicPolicy::Isolate`] — genuinely panic inside the generation job
    /// to exercise the isolation machinery.  The *report* is decided by the
    /// replay driver from the injector alone, so it is byte-identical across
    /// thread counts for a given seed.
    pub fn with_chaos(mut self, chaos: ChaosInjector) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Sets how generation panics are handled (default
    /// [`PanicPolicy::FailFast`]): under [`PanicPolicy::Isolate`] a panic
    /// while generating one fault's test set is confined to that fault
    /// (reported as [`TestOutcome::Aborted`] with [`AbortReason::Panic`])
    /// and the run — including the worker pool and its sessions — continues.
    pub fn with_panic_policy(mut self, panic_policy: PanicPolicy) -> Self {
        self.panic_policy = panic_policy;
        self
    }

    /// Replaces the graceful-degradation configuration used for
    /// budget-aborted faults.
    pub fn with_degradation(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }

    /// Arms campaign checkpointing: every per-fault outcome is journaled
    /// **in fault-list order** and the journal is flushed to `path` — a
    /// crash-consistent atomic replace, see [`crate::store`] — per `policy`,
    /// plus one final flush when the campaign ends.  A reader therefore
    /// always finds either no file, the previous complete snapshot or the
    /// new complete snapshot, never a torn one.
    ///
    /// Outcomes are journaled at the governed gc+reset boundaries (see
    /// [`DigitalAtpg::with_budget`]), where each one is a pure function of
    /// its fault; replaying a journaled prefix is therefore byte-identical
    /// to recomputing it.
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some((policy, path.into()));
        self
    }

    /// Resumes the next [`DigitalAtpg::run`] from a snapshot (load one with
    /// [`store::load_checkpoint`]).  Journaled `Detected`, `Untestable`,
    /// `PreviouslyDetected` and `Degraded` outcomes are replayed without
    /// regeneration; journaled `Aborted` outcomes and the unjournaled tail
    /// are re-attempted under whatever budget or token this engine has
    /// armed *now*.
    ///
    /// An interrupted-then-resumed campaign reproduces the uninterrupted
    /// report **byte for byte** (up to wall-clock `cpu`) at any thread
    /// count: the replayed prefix rebuilds the exact fault-dropping state
    /// the original run had, and governed generation is a pure function of
    /// the fault.  The snapshot is validated against the campaign's circuit
    /// and fault list when the run starts; a mismatch is
    /// [`CoreError::Store`].
    pub fn with_resume(mut self, checkpoint: Checkpoint) -> Self {
        self.resume = Some(checkpoint);
        self
    }

    /// `true` when a budget or a cancel token makes generation fallible.
    fn governed(&self) -> bool {
        !self.budget.is_unlimited() || self.cancel.is_some()
    }

    /// The constraint function currently in force.
    pub fn constraint(&self) -> Bdd {
        self.fc
    }

    /// Read-only access to the BDD manager (for inspection / DOT export).
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// Runs a full garbage collection, keeping only the engine's protected
    /// baseline (the signal functions and the constraint `Fc`), and returns
    /// that baseline's live node count.  This is the state every governed
    /// fault target restarts from, so `collect_garbage() + margin` is the
    /// right way to size a deliberately tight
    /// [`BddBudget::with_max_live_nodes`] quota — the count observed during
    /// construction overstates the baseline by the build's transients.
    pub fn collect_garbage(&mut self) -> usize {
        self.manager.gc();
        self.manager.live_node_count()
    }

    /// The BDD of a signal's fault-free function over the primary inputs.
    pub fn signal_function(&self, signal: SignalId) -> Bdd {
        self.signal_bdds[signal.index()]
    }

    /// Generates a test for one fault, ignoring previously generated
    /// vectors.
    ///
    /// # Panics
    ///
    /// Panics if the armed budget or cancel token interrupts the
    /// derivation; use [`DigitalAtpg::try_generate`] when governance is
    /// armed.
    pub fn generate(&mut self, fault: StuckAtFault) -> TestOutcome {
        match self.try_generate(fault) {
            Ok(outcome) => outcome,
            Err(err) => panic!(
                "infallible test generation interrupted: {err}; \
                 use try_generate when a budget or cancel token is armed"
            ),
        }
    }

    /// Fallible [`DigitalAtpg::generate`]: returns the structured
    /// [`BddError`] when the armed budget or cancel token interrupts the
    /// derivation.  The partial build is abandoned (reclaimed at the next
    /// safe point) and the engine stays fully usable for the next fault.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeBudgetExceeded`] / [`BddError::StepBudgetExceeded`]
    /// when the armed [`BddBudget`] is exhausted, [`BddError::Cancelled`]
    /// when the armed [`CancelToken`] has fired.
    pub fn try_generate(&mut self, fault: StuckAtFault) -> Result<TestOutcome, BddError> {
        // Safe point: no transient handle from a previous target is live
        // here, so everything outside the protected signal functions and
        // `Fc` is garbage.  The sweep never renumbers live nodes, so the
        // generated vectors are byte-identical with or without it.
        if self.governed() {
            // Determinism of governed outcomes: collect to the protected
            // baseline and re-open the step quota, so the resources consumed
            // by this target are a pure function of the fault — independent
            // of which faults this particular engine processed before, and
            // therefore identical across serial, pipelined and worker
            // engines.
            self.manager.gc();
            self.manager.reset_steps();
        } else {
            self.manager.gc_if_above(GC_WATERMARK);
        }
        // 1. Activation: the line must carry the value opposite to the stuck
        //    value in the fault-free circuit.
        let line_fn = self.signal_bdds[fault.signal.index()];
        let activation = if fault.stuck_at {
            self.manager.not(line_fn)
        } else {
            line_fn
        };
        if activation.is_zero() {
            return Ok(TestOutcome::Untestable);
        }
        // 2. Re-derive the outputs with the fault site replaced by the free
        //    variable D (only the fanout cone needs recomputation).
        let faulty = self.functions_with_free_line(fault.signal)?;
        // 3. For each primary output, the test set is
        //    activation · (∂PO/∂D) · Fc.
        for (po_index, &po) in self.netlist.primary_outputs().iter().enumerate() {
            let f = faulty[po.index()];
            let observability = self.manager.try_boolean_difference(f, self.d_var)?;
            if observability.is_zero() {
                continue;
            }
            let act_obs = self.manager.try_and(activation, observability)?;
            let test_set = self.manager.try_and(act_obs, self.fc)?;
            let Some(cube) = self.manager.sat_one(test_set) else {
                continue;
            };
            return Ok(TestOutcome::Detected(
                self.vector_from_cube(&cube, fault, po_index),
            ));
        }
        Ok(TestOutcome::Untestable)
    }

    /// Runs the generator over a whole fault list, with fault dropping.
    ///
    /// Under a threaded [`ExecPolicy`] (see [`Self::with_policy`]) the run
    /// is **pipelined**: worker engines generate the test sets of fault
    /// chunk *k+1* while the sequential fault-dropping replay consumes
    /// chunk *k* on the caller's thread (see [`Self::run_on`]).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the fault-dropping pass (cannot
    /// occur for well-formed vectors).
    pub fn run(&mut self, faults: &FaultList) -> Result<AtpgReport, CoreError> {
        let pool = WorkerPool::new(self.policy).with_panic_policy(self.panic_policy);
        self.run_on(&pool, faults)
    }

    /// Like [`Self::run`], but rides a caller-provided [`WorkerPool`] so a
    /// larger flow (the mixed-signal ATPG) shares one pool across stages.
    /// The **pool's policy** decides the worker count here;
    /// [`Self::with_policy`] only configures the pool that [`Self::run`]
    /// builds internally.
    ///
    /// The pipeline works in rounds of `REPLAY_CHUNK` faults: while the
    /// replay consumes the outcomes of round *k*, the pool generates round
    /// *k+1*.  Before submitting a round the driver pre-screens its faults
    /// against the vectors replayed so far and flags the covered ones, so
    /// the workers stop speculating on faults the replay already covers.
    /// The replay itself remains the oracle — it re-checks coverage exactly
    /// like the serial loop and falls back to inline generation when a
    /// speculative outcome is missing — so the report is **byte-identical**
    /// to a serial run: [`Self::generate`] is a pure function of the
    /// (canonical) OBDD structure, and independently built managers with
    /// the same declaration order yield the same satisfying cube.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the fault-dropping pass.
    pub fn run_on(
        &mut self,
        pool: &WorkerPool,
        faults: &FaultList,
    ) -> Result<AtpgReport, CoreError> {
        let start = Instant::now();
        let mut replay = ReplayState::new(self.netlist, self.fault_dropping, faults, self.width);
        let slots = self.resume_slots(faults)?;
        let mut journal =
            CampaignJournal::new(self.checkpoint.clone(), self.chaos, self.netlist, faults);
        if pool.policy().is_serial() {
            for (k, &fault) in faults.faults().iter().enumerate() {
                // A journaled non-aborted outcome is replayed verbatim: the
                // prefix replayed so far rebuilt the exact coverage state
                // the original run had at this index, so re-deciding would
                // only recompute the same answer.
                if let Some(outcome) = slots.get(k).and_then(|s| s.clone()) {
                    journal.record(&outcome)?;
                    replay.consume(fault, outcome)?;
                    continue;
                }
                if replay.covered(fault) {
                    replay.detected += 1;
                    journal.record(&TestOutcome::PreviouslyDetected)?;
                    continue;
                }
                let outcome = self.decide(k, fault, None)?;
                journal.record(&outcome)?;
                replay.consume(fault, outcome)?;
            }
        } else {
            self.run_pipelined(pool, faults, &mut replay, &mut journal, &slots)?;
        }
        journal.finish()?;
        Ok(AtpgReport {
            circuit: self.netlist.name().to_owned(),
            total_faults: faults.len(),
            detected: replay.detected,
            untestable: replay.untestable,
            degraded: replay.degraded,
            aborted: replay.aborted,
            vectors: replay.vectors,
            cpu: start.elapsed(),
            constrained: self.constrained,
        })
    }

    /// Validates the armed resume snapshot (if any) against this campaign
    /// and expands it into per-index replay slots: `Some` for journaled
    /// non-aborted outcomes, `None` for journaled aborts (re-attempted
    /// fresh) and for the unjournaled tail.  The snapshot is consumed — a
    /// second `run` on the same engine starts from scratch.
    fn resume_slots(&mut self, faults: &FaultList) -> Result<Vec<Option<TestOutcome>>, CoreError> {
        let Some(checkpoint) = self.resume.take() else {
            return Ok(Vec::new());
        };
        let mismatch = |reason: String| CoreError::Store { reason };
        if checkpoint.circuit != self.netlist.name() {
            return Err(mismatch(format!(
                "resume snapshot is for circuit `{}`, campaign runs on `{}`",
                checkpoint.circuit,
                self.netlist.name()
            )));
        }
        if checkpoint.total_faults != faults.len()
            || checkpoint.faults_digest != store::faults_digest(faults.faults())
        {
            return Err(mismatch(format!(
                "resume snapshot covers a different fault list \
                 ({} faults, digest {:016x})",
                checkpoint.total_faults, checkpoint.faults_digest
            )));
        }
        if checkpoint.outcomes.len() > faults.len() {
            return Err(mismatch(format!(
                "resume snapshot journals {} outcomes for {} faults",
                checkpoint.outcomes.len(),
                faults.len()
            )));
        }
        let mut slots: Vec<Option<TestOutcome>> = vec![None; faults.len()];
        for (slot, outcome) in slots.iter_mut().zip(checkpoint.outcomes) {
            if !matches!(outcome, TestOutcome::Aborted(_)) {
                *slot = Some(outcome);
            }
        }
        Ok(slots)
    }

    /// Decides the outcome of fault-list entry `index` — the one place
    /// where resource failures become [`TestOutcome`]s.  It runs on the
    /// replay driver **in fault-list order**, and every input it consults is
    /// schedule-independent (the chaos injector is a pure function of the
    /// fault index, the cancel token is charged only here, and governed
    /// generation is a pure function of the fault), so the report is
    /// byte-identical across thread counts.
    ///
    /// `speculative` carries a worker's pre-computed result when one exists;
    /// governed generation is a pure function of the fault, so reusing it is
    /// indistinguishable from generating inline.
    fn decide(
        &mut self,
        index: usize,
        fault: StuckAtFault,
        speculative: Option<Result<TestOutcome, BddError>>,
    ) -> Result<TestOutcome, CoreError> {
        if let Some(chaos) = self.chaos {
            match chaos.fires(index as u64) {
                Some(ChaosEvent::Panic) => {
                    if self.panic_policy == PanicPolicy::Isolate {
                        return Ok(TestOutcome::Aborted(AbortReason::Panic));
                    }
                    // FailFast means exactly that, in serial and pipelined
                    // runs alike (the pipelined run usually dies earlier, at
                    // the barrier that relays the worker's injected panic).
                    panic!("chaos: injected panic at fault target {index}");
                }
                Some(ChaosEvent::Budget) => return self.degrade_or_abort(fault),
                Some(ChaosEvent::Cancel) => return Ok(TestOutcome::Aborted(AbortReason::Deadline)),
                // Store-class events never come out of `fires` (they are
                // drawn by `fires_store` at checkpoint-write sites).
                Some(_) | None => {}
            }
        }
        // One charge per targeted fault, strictly in replay order: the
        // token's step quota therefore fires at the identical fault on every
        // thread count.
        if let Some(token) = &self.cancel {
            if !token.charge(1) {
                return Ok(TestOutcome::Aborted(AbortReason::Deadline));
            }
        }
        let result = match speculative {
            Some(result) => result.map_err(GenFailure::Bdd),
            None => self.guarded_generate(fault),
        };
        match result {
            Ok(outcome) => Ok(outcome),
            Err(GenFailure::Bdd(BddError::Cancelled)) => {
                Ok(TestOutcome::Aborted(AbortReason::Deadline))
            }
            Err(GenFailure::Bdd(_)) => self.degrade_or_abort(fault),
            Err(GenFailure::Panicked) => Ok(TestOutcome::Aborted(AbortReason::Panic)),
        }
    }

    /// Inline generation with the panic policy applied: under
    /// [`PanicPolicy::Isolate`] a panic is caught and confined to this
    /// fault (the manager may retain a few pinned transient nodes from the
    /// interrupted recursion — safe, at worst a small arena leak).
    fn guarded_generate(&mut self, fault: StuckAtFault) -> Result<TestOutcome, GenFailure> {
        if self.panic_policy == PanicPolicy::Isolate {
            match catch_unwind(AssertUnwindSafe(|| self.try_generate(fault))) {
                Ok(result) => result.map_err(GenFailure::Bdd),
                Err(_) => Err(GenFailure::Panicked),
            }
        } else {
            self.try_generate(fault).map_err(GenFailure::Bdd)
        }
    }

    /// The budget-exhaustion path: try the seeded random fallback, abort if
    /// it finds nothing.
    fn degrade_or_abort(&mut self, fault: StuckAtFault) -> Result<TestOutcome, CoreError> {
        match self.degrade(fault)? {
            Some(vector) => Ok(TestOutcome::Degraded(vector)),
            None => Ok(TestOutcome::Aborted(AbortReason::Budget)),
        }
    }

    /// Graceful degradation for one budget-aborted fault: draw seeded random
    /// patterns (filtered against the constraint codes when constraints are
    /// installed), verify them against the fault with the PPSFP kernel, and
    /// return the first detecting pattern as a fully specified vector.
    ///
    /// A pure function of `(degrade.seed, fault)` — it never touches the
    /// OBDD manager — so degraded outcomes are deterministic everywhere.
    fn degrade(&self, fault: StuckAtFault) -> Result<Option<TestVector>, CoreError> {
        let netlist = self.netlist;
        let fault_key = ((fault.signal.index() as u64) << 1) | fault.stuck_at as u64;
        let mut generator = RandomPatternGenerator::new(
            netlist,
            self.degrade
                .seed
                .wrapping_add(fault_key.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let candidates = match &self.constraint_spec {
            Some((lines, codes)) => {
                // The constrained lines were validated as primary inputs
                // when the constraints were installed.
                let positions: Vec<usize> = lines
                    .iter()
                    .filter_map(|&l| netlist.primary_inputs().iter().position(|&pi| pi == l))
                    .collect();
                let (accepted, _attempts) = generator.constrained_patterns(
                    self.degrade.patterns,
                    self.degrade.patterns.saturating_mul(64),
                    |p| {
                        let assignment: Vec<bool> = positions.iter().map(|&i| p[i]).collect();
                        codes.allows(&assignment)
                    },
                );
                accepted
            }
            None => generator.patterns(self.degrade.patterns),
        };
        if candidates.is_empty() {
            return Ok(None);
        }
        match self.width.lanes() {
            4 => self.degrade_verify::<4>(fault, &candidates),
            8 => self.degrade_verify::<8>(fault, &candidates),
            _ => self.degrade_verify::<1>(fault, &candidates),
        }
    }

    /// The width-generic PPSFP verification behind [`DigitalAtpg::degrade`]:
    /// scans the candidate patterns in `64 * W`-wide blocks and returns the
    /// **first** detecting pattern in candidate order (first block, first
    /// lane, lowest bit), so the chosen vector is independent of the width.
    fn degrade_verify<const W: usize>(
        &self,
        fault: StuckAtFault,
        candidates: &[Vec<bool>],
    ) -> Result<Option<TestVector>, CoreError> {
        let netlist = self.netlist;
        let cones = FaultCones::build(netlist, [fault.signal]);
        let mut scratch: PpsfpScratch<W> = PpsfpScratch::new(netlist);
        let simulator = Simulator::new(netlist);
        for block in candidates.chunks(64 * W) {
            let good = simulator
                .run_parallel_blocks::<W>(block)
                .map_err(|e| CoreError::Digital(e.to_string()))?;
            let diff = scratch.detection_block(
                netlist,
                &cones,
                fault,
                &good,
                block_mask::<W>(block.len()),
            );
            if let Some(lane) = diff.iter().position(|&w| w != 0) {
                let pattern = &block[lane * 64 + diff[lane].trailing_zeros() as usize];
                let observed_output = FaultSimulator::new(netlist)
                    .detecting_output(fault, pattern)
                    .map_err(|e| CoreError::Digital(e.to_string()))?
                    .unwrap_or(0);
                return Ok(Some(TestVector {
                    assignment: pattern.iter().map(|&b| Some(b)).collect(),
                    fault,
                    observed_output,
                }));
            }
        }
        Ok(None)
    }

    /// The pipelined engine behind [`Self::run_on`]: one pool session whose
    /// rounds generate fault chunks one step ahead of the replay.
    fn run_pipelined(
        &mut self,
        pool: &WorkerPool,
        faults: &FaultList,
        replay: &mut ReplayState<'a>,
        journal: &mut CampaignJournal,
        slots: &[Option<TestOutcome>],
    ) -> Result<(), CoreError> {
        let list = faults.faults();
        let netlist = self.netlist;
        let spec = self.constraint_spec.clone();
        let budget = self.budget;
        let cancel = self.cancel.clone();
        let chaos = self.chaos;
        let static_order = self.static_order;
        let dvo = self.dvo;
        // Replay-side coverage flags: set by the driver strictly between
        // rounds (prescreen), read by the workers to skip doomed
        // speculation.  They only gate whether a speculative outcome is
        // produced — the replay independently re-derives coverage — so the
        // flags cannot change the report, only the wasted work.
        let covered: Vec<AtomicBool> = list.iter().map(|_| AtomicBool::new(false)).collect();
        let n_rounds = list.len().div_ceil(REPLAY_CHUNK);
        // Small sub-chunks keep the pool's self-scheduling effective:
        // per-fault generation cost is highly uneven (hard faults explore
        // far more BDD nodes), so static one-chunk-per-worker splits would
        // leave workers idle behind the unlucky one.
        let chunks_per_round = REPLAY_CHUNK.div_ceil(GENERATE_CHUNK);
        pool.session(
            chunks_per_round,
            || {
                let engine = DigitalAtpg::new_ordered(netlist, static_order);
                let engine = match &spec {
                    Some((lines, codes)) => engine
                        .with_constraints(lines, codes)
                        .expect("constraints were validated when installed on the primary engine"),
                    None => engine,
                };
                // Worker engines mirror the primary's governance so their
                // speculative results match inline generation bit for bit;
                // they only *observe* the cancel token (never charge it).
                // The variable order is replayed too: same static order,
                // same sift at the same safe point (constraints and budget
                // armed), so speculative cubes match the driver's.
                let engine = engine.with_budget(budget).with_dvo(dvo);
                match &cancel {
                    Some(token) => engine.with_cancel_token(token.clone()),
                    None => engine,
                }
            },
            |engine, round_start: &usize, ci| {
                let base = round_start + ci * GENERATE_CHUNK;
                let end = (base + GENERATE_CHUNK)
                    .min(round_start + REPLAY_CHUNK)
                    .min(list.len());
                let mut outcomes: Vec<Option<Result<TestOutcome, BddError>>> = Vec::new();
                for k in base..end.max(base) {
                    // A resume slot already holds this fault's outcome:
                    // speculating would just recompute it.
                    if covered[k].load(Ordering::Relaxed)
                        || slots.get(k).is_some_and(|s| s.is_some())
                    {
                        outcomes.push(None);
                        continue;
                    }
                    if let Some(chaos) = chaos {
                        if let Some(event) = chaos.fires(k as u64) {
                            if event == ChaosEvent::Panic {
                                // A genuine panic inside the job: exercises
                                // the pool's panic machinery (isolation or
                                // fail-fast relay).  The *outcome* of fault
                                // `k` is decided by the replay driver from
                                // the injector alone.
                                panic!("chaos: injected panic at fault target {k}");
                            }
                            // Simulated budget/cancel events are decided by
                            // the driver; skip the doomed speculation.
                            outcomes.push(None);
                            continue;
                        }
                    }
                    outcomes.push(Some(engine.try_generate(list[k])));
                }
                outcomes
            },
            |session| -> Result<(), CoreError> {
                session.submit(0usize, chunks_per_round);
                for round in 0..n_rounds {
                    let round_start = round * REPLAY_CHUNK;
                    // The panic-isolating barrier: a chunk whose job
                    // panicked (chaos or genuine) simply loses its
                    // speculative outcomes — the replay regenerates them
                    // inline, where `decide` applies the panic policy with
                    // per-fault granularity.
                    let mut outcomes: Vec<Option<Result<TestOutcome, BddError>>> =
                        Vec::with_capacity(REPLAY_CHUNK);
                    for (ci, chunk_result) in session.wait_results().into_iter().enumerate() {
                        match chunk_result {
                            Ok(chunk) => outcomes.extend(chunk),
                            Err(_chunk_panic) => {
                                let base = round_start + ci * GENERATE_CHUNK;
                                let end = (base + GENERATE_CHUNK)
                                    .min(round_start + REPLAY_CHUNK)
                                    .min(list.len());
                                outcomes.extend((base..end.max(base)).map(|_| None));
                            }
                        }
                    }
                    if round + 1 < n_rounds {
                        // Pre-screen the next round against the blocks
                        // replayed so far (rounds < `round`), then hand it
                        // to the workers before replaying this round.
                        let next_start = (round + 1) * REPLAY_CHUNK;
                        let next_end = (next_start + REPLAY_CHUNK).min(list.len());
                        for k in next_start..next_end {
                            if replay.covered(list[k]) {
                                covered[k].store(true, Ordering::Relaxed);
                            }
                        }
                        session.submit(next_start, chunks_per_round);
                    }
                    // Replay round `round` while the workers generate round
                    // `round + 1` — exactly the serial loop, with inline
                    // generation replaced by the speculative result where
                    // available.
                    for (j, speculative) in outcomes.into_iter().enumerate() {
                        let k = round_start + j;
                        let fault = list[k];
                        // Exactly the serial loop: resume slots replay
                        // first (they encode the coverage state of the
                        // original run at this index).
                        if let Some(outcome) = slots.get(k).and_then(|s| s.clone()) {
                            journal.record(&outcome)?;
                            replay.consume(fault, outcome)?;
                            continue;
                        }
                        // A flag set by the prescreen was itself a full
                        // coverage scan, and coverage is monotone (blocks
                        // only gain patterns), so the replay can trust it
                        // without rescanning; only unflagged faults pay the
                        // pre-check here.  Flags are written by this driver
                        // alone, never by workers.
                        if covered[k].load(Ordering::Relaxed) || replay.covered(fault) {
                            replay.detected += 1;
                            journal.record(&TestOutcome::PreviouslyDetected)?;
                            continue;
                        }
                        let outcome = self.decide(k, fault, speculative)?;
                        journal.record(&outcome)?;
                        replay.consume(fault, outcome)?;
                    }
                }
                Ok(())
            },
        )
    }

    /// Signal functions with `line` replaced by the free variable `D`
    /// (faulty-cone recomputation).
    fn functions_with_free_line(&mut self, line: SignalId) -> Result<Vec<Bdd>, BddError> {
        let mut values = self.signal_bdds.clone();
        values[line.index()] = self.manager.literal(self.d_var, true);
        let cone: HashMap<usize, ()> = self
            .netlist
            .fanout_cone(line)
            .into_iter()
            .map(|s| (s.index(), ()))
            .collect();
        for gate in self.netlist.gates() {
            if gate.output == line || !cone.contains_key(&gate.output.index()) {
                continue;
            }
            let inputs: Vec<Bdd> = gate.inputs.iter().map(|i| values[i.index()]).collect();
            values[gate.output.index()] = try_apply_gate(&mut self.manager, gate.kind, &inputs)?;
        }
        Ok(values)
    }

    fn vector_from_cube(&self, cube: &Cube, fault: StuckAtFault, po_index: usize) -> TestVector {
        let assignment = self
            .netlist
            .primary_inputs()
            .iter()
            .map(|&pi| {
                self.manager
                    .var_index(self.netlist.signal_name(pi))
                    .and_then(|v| cube.get(v))
            })
            .collect();
        TestVector {
            assignment,
            fault,
            observed_output: po_index,
        }
    }
}

/// Lowers one gate onto the OBDD manager: the single definition of how a
/// [`GateKind`] becomes Boolean operations, shared by the test generator,
/// the propagation engine and the `bdd_memory` benchmark (which must
/// measure exactly the build the ATPG performs).
///
/// # Panics
///
/// Panics if a budget or cancel token armed on `manager` interrupts the
/// build; use [`try_apply_gate`] under governance.
pub fn apply_gate(manager: &mut BddManager, kind: GateKind, inputs: &[Bdd]) -> Bdd {
    match try_apply_gate(manager, kind, inputs) {
        Ok(f) => f,
        Err(err) => panic!("infallible gate lowering interrupted: {err}"),
    }
}

/// Fallible [`apply_gate`]: returns the structured [`BddError`] when the
/// budget or cancel token armed on `manager` interrupts the build.
///
/// # Errors
///
/// Propagates [`BddError`] from the underlying `try_*` operations.
pub fn try_apply_gate(
    manager: &mut BddManager,
    kind: GateKind,
    inputs: &[Bdd],
) -> Result<Bdd, BddError> {
    Ok(match kind {
        GateKind::Buf => inputs[0],
        GateKind::Not => manager.not(inputs[0]),
        GateKind::And => manager.try_and_all(inputs.iter().copied())?,
        GateKind::Nand => {
            let a = manager.try_and_all(inputs.iter().copied())?;
            manager.not(a)
        }
        GateKind::Or => manager.try_or_all(inputs.iter().copied())?,
        GateKind::Nor => {
            let o = manager.try_or_all(inputs.iter().copied())?;
            manager.not(o)
        }
        GateKind::Xor => {
            let mut acc = inputs[0];
            for &b in inputs.iter().skip(1) {
                acc = manager.try_xor(acc, b)?;
            }
            acc
        }
        GateKind::Xnor => {
            let mut acc = inputs[0];
            for &b in inputs.iter().skip(1) {
                acc = manager.try_xor(acc, b)?;
            }
            manager.not(acc)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_digital::circuits;
    use msatpg_digital::fault::FaultList;
    use msatpg_digital::fault_sim::FaultSimulator;

    fn example2_constraint() -> AllowedCodes {
        // Fc = l0 + l2: every code except (0, 0).
        AllowedCodes::new(
            2,
            vec![vec![true, false], vec![false, true], vec![true, true]],
        )
    }

    #[test]
    fn figure3_alone_is_fully_testable() {
        let circuit = circuits::figure3_circuit();
        let faults = FaultList::all(&circuit);
        let mut atpg = DigitalAtpg::new(&circuit);
        let report = atpg.run(&faults).unwrap();
        assert_eq!(report.total_faults, 18);
        assert_eq!(report.untestable_count(), 0);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert!(!report.constrained);
        assert!(report.vector_count() <= report.detected);
    }

    #[test]
    fn figure3_under_constraints_loses_one_equivalence_class() {
        // The paper: with Fc = l0 + l2, the faults l0 s-a-1 and l3 s-a-1
        // become undetectable (two named faults of one equivalence class).
        // In our gate-level realization the OR gate that combines l0 and the
        // l2-branch l3 materializes a third equivalent fault (its output
        // s-a-1), so the uncollapsed run reports three undetectable faults —
        // all structurally equivalent — and the collapsed run reports two,
        // matching the paper's count.
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let l3 = circuit.find_signal("l3").unwrap();
        let l6 = circuit.find_signal("l6").unwrap();

        let uncollapsed = FaultList::all(&circuit);
        let mut atpg = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        let report = atpg.run(&uncollapsed).unwrap();
        assert!(report.constrained);
        assert_eq!(
            report.untestable_count(),
            3,
            "untestable: {:?}",
            report.untestable
        );
        assert!(report.untestable.contains(&StuckAtFault::sa1(l0)));
        assert!(report.untestable.contains(&StuckAtFault::sa1(l3)));
        assert!(report.untestable.contains(&StuckAtFault::sa1(l6)));

        let collapsed = FaultList::collapsed(&circuit);
        let mut atpg2 = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        let report2 = atpg2.run(&collapsed).unwrap();
        assert_eq!(
            report2.untestable_count(),
            2,
            "untestable: {:?}",
            report2.untestable
        );
        assert!(report2.untestable.contains(&StuckAtFault::sa1(l0)));
    }

    #[test]
    fn generated_vector_matches_paper_example() {
        // Fault l3 s-a-0 under Fc = l0 + l2: the paper derives the test
        // vector {l0, l1, l2, l4} = {0, 0, 1, X}.  Our generator must produce
        // a vector that activates, propagates and satisfies the constraint;
        // l2 = 1 and l0 = 0 are forced, the others may differ.
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let l3 = circuit.find_signal("l3").unwrap();
        let mut atpg = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        match atpg.generate(StuckAtFault::sa0(l3)) {
            TestOutcome::Detected(vector) => {
                // PI order is l0, l1, l2, l4.
                assert_eq!(vector.assignment[2], Some(true), "l2 must be 1 to activate");
                assert_eq!(
                    vector.assignment[0],
                    Some(false),
                    "l0 must be 0 to propagate"
                );
                let pattern = vector.to_pattern_string();
                assert_eq!(pattern.len(), 4);
            }
            other => panic!("expected a test, got {other:?}"),
        }
    }

    #[test]
    fn every_generated_vector_really_detects_its_fault() {
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let mut atpg = DigitalAtpg::new(&circuit);
        let report = atpg.run(&faults).unwrap();
        assert_eq!(report.untestable_count(), 0, "the adder is fully testable");
        let sim = FaultSimulator::new(&circuit);
        for vector in &report.vectors {
            let pattern = vector.concretize(false);
            assert!(
                sim.detects(vector.fault, &pattern).unwrap(),
                "vector {} must detect {}",
                vector.to_pattern_string(),
                vector.fault.describe(&circuit)
            );
        }
    }

    #[test]
    fn constrained_vectors_satisfy_the_constraint() {
        let circuit = circuits::figure3_circuit();
        let faults = FaultList::all(&circuit);
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let codes = example2_constraint();
        let mut atpg = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &codes)
            .unwrap();
        let report = atpg.run(&faults).unwrap();
        for vector in &report.vectors {
            let pattern = vector.concretize(false);
            // PI order: l0, l1, l2, l4 → constrained assignment is (l0, l2).
            let constrained = vec![pattern[0], pattern[2]];
            assert!(
                codes.allows(&constrained),
                "vector {} violates Fc",
                vector.to_pattern_string()
            );
        }
    }

    #[test]
    fn dropping_reduces_vector_count_but_not_coverage() {
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let with_drop = DigitalAtpg::new(&circuit).run(&faults).unwrap();
        let without_drop = DigitalAtpg::new(&circuit)
            .with_fault_dropping(false)
            .run(&faults)
            .unwrap();
        assert_eq!(with_drop.detected, without_drop.detected);
        assert!(with_drop.vector_count() <= without_drop.vector_count());
        assert!(without_drop.cpu >= Duration::ZERO);
    }

    #[test]
    fn parallel_runs_are_byte_identical_to_serial() {
        // Unconstrained adder and constrained Figure-3: every report field
        // except the wall-clock must match the serial run exactly, for both
        // dropping modes.
        let adder = circuits::adder4();
        let adder_faults = FaultList::collapsed(&adder);
        let figure3 = circuits::figure3_circuit();
        let figure3_faults = FaultList::all(&figure3);
        let l0 = figure3.find_signal("l0").unwrap();
        let l2 = figure3.find_signal("l2").unwrap();
        for dropping in [true, false] {
            let reference = DigitalAtpg::new(&adder)
                .with_fault_dropping(dropping)
                .run(&adder_faults)
                .unwrap();
            let constrained_reference = DigitalAtpg::new(&figure3)
                .with_constraints(&[l0, l2], &example2_constraint())
                .unwrap()
                .with_fault_dropping(dropping)
                .run(&figure3_faults)
                .unwrap();
            for threads in [2usize, 8] {
                let parallel = DigitalAtpg::new(&adder)
                    .with_fault_dropping(dropping)
                    .with_policy(ExecPolicy::Threads(threads))
                    .run(&adder_faults)
                    .unwrap();
                assert_eq!(parallel.detected, reference.detected);
                assert_eq!(parallel.untestable, reference.untestable);
                assert_eq!(parallel.vectors, reference.vectors);
                let parallel = DigitalAtpg::new(&figure3)
                    .with_constraints(&[l0, l2], &example2_constraint())
                    .unwrap()
                    .with_fault_dropping(dropping)
                    .with_policy(ExecPolicy::Threads(threads))
                    .run(&figure3_faults)
                    .unwrap();
                assert_eq!(parallel.detected, constrained_reference.detected);
                assert_eq!(parallel.untestable, constrained_reference.untestable);
                assert_eq!(parallel.vectors, constrained_reference.vectors);
                assert_eq!(parallel.constrained, constrained_reference.constrained);
            }
        }
    }

    #[test]
    fn pipelined_run_spawns_one_worker_set_and_one_barrier_per_round() {
        let circuit = circuits::adder4();
        // Double the fault universe so the campaign spans several pipeline
        // rounds (the replay handles repeated faults like the serial loop).
        let mut universe = FaultList::all(&circuit).faults().to_vec();
        universe.extend(universe.clone());
        let faults = FaultList::from_faults(universe);
        let pool = WorkerPool::new(ExecPolicy::Threads(2));
        let report = DigitalAtpg::new(&circuit)
            .with_policy(ExecPolicy::Threads(2))
            .run_on(&pool, &faults)
            .unwrap();
        let reference = DigitalAtpg::new(&circuit).run(&faults).unwrap();
        assert_eq!(report.vectors, reference.vectors);
        assert_eq!(report.detected, reference.detected);
        assert_eq!(report.untestable, reference.untestable);
        let stats = pool.stats();
        let n_rounds = faults.len().div_ceil(REPLAY_CHUNK) as u64;
        assert!(
            n_rounds >= 2,
            "the adder fault list must span several rounds"
        );
        assert_eq!(
            stats.spawns, 2,
            "one worker set for the whole pipelined run, not one per chunk"
        );
        assert_eq!(stats.barriers, n_rounds, "one barrier per pipeline round");
    }

    #[test]
    fn gc_between_targets_never_changes_outcomes() {
        // Force a full collection after every fault target on one engine
        // and none on the other: the per-fault outcomes (vectors, observed
        // outputs, untestability) must be byte-identical, because the sweep
        // never touches the protected signal functions or `Fc` and never
        // renumbers live nodes.
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let faults = FaultList::all(&circuit);
        let mut collected = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        let mut plain = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        for &fault in faults.faults() {
            let report = collected.manager.gc();
            assert_eq!(
                report.live_after,
                collected.manager.live_node_count(),
                "gc accounting is coherent"
            );
            assert_eq!(collected.generate(fault), plain.generate(fault), "{fault}");
        }
        assert!(
            collected.manager.stats().gc_runs >= faults.len() as u64,
            "one forced collection per target"
        );
        assert_eq!(plain.manager.stats().gc_runs, 0);
        // The collected engine's arena is bounded by its live state; the
        // plain engine accumulated every transient test set.
        assert!(
            collected.manager.stats().node_count <= plain.manager.stats().node_count,
            "collection cannot leave more nodes live"
        );
    }

    #[test]
    fn constraining_a_non_input_line_is_rejected() {
        let circuit = circuits::figure3_circuit();
        let l6 = circuit.find_signal("l6").unwrap();
        let result = DigitalAtpg::new(&circuit)
            .with_constraints(&[l6], &AllowedCodes::new(1, vec![vec![true]]));
        assert!(result.is_err());
    }

    #[test]
    fn mismatched_code_width_is_a_structured_error() {
        // Two-bit codes over one constrained line must be rejected with an
        // error, not an assertion failure inside the Fc build.
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let result = DigitalAtpg::new(&circuit).with_constraints(&[l0], &example2_constraint());
        assert!(result.is_err());
    }

    #[test]
    fn signal_functions_are_exposed() {
        let circuit = circuits::figure3_circuit();
        let atpg = DigitalAtpg::new(&circuit);
        let l6 = circuit.find_signal("l6").unwrap();
        let f = atpg.signal_function(l6);
        // l6 = l0 OR l3 = l0 OR l2 (through the buffer).
        assert_eq!(atpg.manager().support(f).len(), 2);
        assert!(atpg.constraint().is_one());
    }

    /// Every report field except the wall-clock must match.
    fn assert_reports_identical(a: &AtpgReport, b: &AtpgReport) {
        assert_eq!(a.total_faults, b.total_faults);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.untestable, b.untestable);
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.aborted, b.aborted);
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.constrained, b.constrained);
    }

    #[test]
    fn tiny_step_budget_degrades_gracefully_and_deterministically() {
        // A one-step quota per fault target: deterministic generation fails
        // on every fault that needs real BDD work, and the seeded random
        // fallback takes over.  The run must complete without panicking,
        // account for every fault, and be byte-identical across thread
        // counts.
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let budget = BddBudget::UNLIMITED.with_max_steps(1);
        let reference = DigitalAtpg::new(&circuit)
            .with_budget(budget)
            .run(&faults)
            .unwrap();
        assert_eq!(
            reference.detected + reference.untestable_count() + reference.aborted_count(),
            faults.len(),
            "every fault is accounted for"
        );
        assert!(
            reference.degraded_count() > 0,
            "the random fallback rescues budget-aborted faults"
        );
        assert!(reference
            .aborted
            .iter()
            .all(|(_, r)| *r == AbortReason::Budget));
        // Degraded vectors are real tests: fully specified and verified.
        let sim = FaultSimulator::new(&circuit);
        for vector in &reference.vectors {
            assert!(vector.assignment.iter().all(Option::is_some));
            assert!(sim
                .detects(vector.fault, &vector.concretize(false))
                .unwrap());
        }
        for threads in [2usize, 8] {
            let parallel = DigitalAtpg::new(&circuit)
                .with_budget(budget)
                .with_policy(ExecPolicy::Threads(threads))
                .run(&faults)
                .unwrap();
            assert_reports_identical(&parallel, &reference);
        }
    }

    #[test]
    fn generous_budget_changes_nothing() {
        // A budget large enough never to fire must leave the report
        // byte-identical to the ungoverned run — the governed path's extra
        // collections cannot change outcomes.
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let clean = DigitalAtpg::new(&circuit).run(&faults).unwrap();
        let governed = DigitalAtpg::new(&circuit)
            .with_budget(BddBudget::UNLIMITED.with_max_steps(u64::MAX / 2))
            .run(&faults)
            .unwrap();
        assert_reports_identical(&governed, &clean);
        assert!(governed.degraded.is_empty());
        assert!(governed.aborted.is_empty());
    }

    #[test]
    fn step_quota_token_aborts_the_tail_at_the_same_fault_everywhere() {
        // The driver charges the token once per targeted fault in replay
        // order, and the charge that exhausts the quota itself fails, so a
        // quota of five decides exactly four faults and abandons the rest as
        // Aborted(Deadline) — at the identical fault on every thread count.
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let quota = 5u64;
        let reference = DigitalAtpg::new(&circuit)
            .with_cancel_token(CancelToken::with_step_quota(quota))
            .run(&faults)
            .unwrap();
        assert!(reference.aborted_count() > 0, "quota fired mid-campaign");
        assert!(reference
            .aborted
            .iter()
            .all(|(_, r)| *r == AbortReason::Deadline));
        assert_eq!(
            reference.vector_count() + reference.untestable_count() + reference.degraded_count(),
            quota as usize - 1,
            "the exhausting charge fails, so quota - 1 faults were decided"
        );
        assert_eq!(
            reference.detected + reference.untestable_count() + reference.aborted_count(),
            faults.len()
        );
        for threads in [2usize, 8] {
            let parallel = DigitalAtpg::new(&circuit)
                .with_cancel_token(CancelToken::with_step_quota(quota))
                .with_policy(ExecPolicy::Threads(threads))
                .run(&faults)
                .unwrap();
            assert_reports_identical(&parallel, &reference);
        }
    }

    #[test]
    fn engine_and_token_state_survive_cancellation() {
        // After a cancelled campaign the engine (and a fresh token) run the
        // full list as if nothing happened.
        let circuit = circuits::figure3_circuit();
        let faults = FaultList::all(&circuit);
        let clean = DigitalAtpg::new(&circuit).run(&faults).unwrap();
        let mut atpg =
            DigitalAtpg::new(&circuit).with_cancel_token(CancelToken::with_step_quota(2));
        let cancelled = atpg.run(&faults).unwrap();
        assert!(cancelled.aborted_count() > 0);
        // Re-arm with an unlimited token: the same engine recovers fully.
        let mut atpg = atpg.with_cancel_token(CancelToken::new());
        let recovered = atpg.run(&faults).unwrap();
        assert_reports_identical(&recovered, &clean);
    }

    #[test]
    fn chaos_isolate_confines_injected_panics_and_stays_deterministic() {
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let chaos = ChaosInjector::new(0xC0FFEE).with_panic_rate(5);
        let reference = DigitalAtpg::new(&circuit)
            .with_chaos(chaos)
            .with_panic_policy(PanicPolicy::Isolate)
            .run(&faults)
            .unwrap();
        assert!(
            reference
                .aborted
                .iter()
                .any(|(_, r)| *r == AbortReason::Panic),
            "the injector hit at least one targeted fault"
        );
        assert_eq!(
            reference.detected + reference.untestable_count() + reference.aborted_count(),
            faults.len()
        );
        for threads in [2usize, 8] {
            let parallel = DigitalAtpg::new(&circuit)
                .with_chaos(chaos)
                .with_panic_policy(PanicPolicy::Isolate)
                .with_policy(ExecPolicy::Threads(threads))
                .run(&faults)
                .unwrap();
            assert_reports_identical(&parallel, &reference);
        }
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic")]
    fn chaos_failfast_propagates_the_injected_panic() {
        let circuit = circuits::figure3_circuit();
        let faults = FaultList::all(&circuit);
        // Rate 1: the very first targeted fault panics under FailFast.
        let chaos = ChaosInjector::new(1).with_panic_rate(1);
        let _ = DigitalAtpg::new(&circuit).with_chaos(chaos).run(&faults);
    }

    #[test]
    fn chaos_budget_events_degrade_under_constraints() {
        // Simulated budget exhaustion on a constrained engine: the degraded
        // vectors must satisfy the constraint codes (they were drawn through
        // the constrained pattern generator) and really detect their faults.
        let circuit = circuits::figure3_circuit();
        let faults = FaultList::all(&circuit);
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let codes = example2_constraint();
        let chaos = ChaosInjector::new(3).with_budget_rate(2);
        let mut atpg = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &codes)
            .unwrap()
            .with_chaos(chaos);
        let report = atpg.run(&faults).unwrap();
        assert!(report.degraded_count() > 0, "some faults were degraded");
        let sim = FaultSimulator::new(&circuit);
        for vector in &report.vectors {
            let pattern = vector.concretize(false);
            // PI order: l0, l1, l2, l4 → constrained assignment is (l0, l2).
            assert!(codes.allows(&vec![pattern[0], pattern[2]]));
            if report.degraded.contains(&vector.fault) {
                assert!(sim.detects(vector.fault, &pattern).unwrap());
            }
        }
    }

    #[test]
    fn pool_survives_chaos_and_cancellation_and_stays_reusable() {
        // One pool across three campaigns: injected worker panics
        // (isolated), a mid-run cancellation, then a clean run that must be
        // byte-identical to a fresh pool's.
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let clean_reference = DigitalAtpg::new(&circuit).run(&faults).unwrap();
        let pool = WorkerPool::new(ExecPolicy::Threads(2)).with_panic_policy(PanicPolicy::Isolate);
        let chaotic = DigitalAtpg::new(&circuit)
            .with_chaos(ChaosInjector::new(0xBAD).with_panic_rate(4))
            .with_panic_policy(PanicPolicy::Isolate)
            .run_on(&pool, &faults)
            .unwrap();
        assert!(chaotic.aborted_count() > 0);
        let cancelled = DigitalAtpg::new(&circuit)
            .with_cancel_token(CancelToken::with_step_quota(3))
            .run_on(&pool, &faults)
            .unwrap();
        assert!(cancelled.aborted_count() > 0);
        let clean = DigitalAtpg::new(&circuit).run_on(&pool, &faults).unwrap();
        assert_reports_identical(&clean, &clean_reference);
        assert!(clean.degraded.is_empty() && clean.aborted.is_empty());
    }
}
