//! Backtrack-free, OBDD-based stuck-at test generation with constraints
//! (the paper's BDD_FTEST extended with the constraint function `Fc`).
//!
//! For a fault *l* s-a-*v*, the set of test vectors is obtained purely by
//! Boolean manipulation — no search, no backtracking:
//!
//! ```text
//! S = activation · propagation · Fc
//!   = (f_l ⊕ v) · (∂PO/∂l) · Fc
//! ```
//!
//! where `f_l` is the function of line *l* in terms of the primary inputs,
//! `∂PO/∂l` is the Boolean difference of a primary output with respect to
//! the line (computed by re-deriving the output with the line replaced by a
//! fresh variable `D`, which is last in the BDD ordering, exactly as in the
//! paper), and `Fc` encodes the assignments the conversion block can
//! produce.  Any path to `1` in `S` is a test vector; `S = ∅` for every
//! output means the fault is untestable under the constraints.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use msatpg_bdd::{Bdd, BddManager, Cube, VarId};
use msatpg_conversion::constraints::AllowedCodes;
use msatpg_digital::fault::{FaultList, StuckAtFault};
use msatpg_digital::fault_sim::{word_mask, FaultCones, PpsfpScratch};
use msatpg_digital::gate::GateKind;
use msatpg_digital::netlist::{Netlist, SignalId};
use msatpg_digital::sim::Simulator;
use msatpg_exec::{ExecPolicy, WorkerPool};

use crate::constraint::{constraint_bdd, declare_input_variables};
use crate::CoreError;

/// The name of the auxiliary composite variable (kept last in the ordering).
const D_VAR_NAME: &str = "__D";

/// Live-node watermark above which the per-fault safe point sweeps the BDD
/// arena.  Every fault target re-derives its faulty cone and test set from
/// scratch, so the garbage fraction grows linearly with the fault count;
/// the long-lived state (signal functions and `Fc`) is protected at
/// construction and survives every collection, which makes the sweep
/// invisible in the generated vectors.
const GC_WATERMARK: usize = 1 << 16;

/// A generated test vector: an assignment to the primary inputs, with
/// don't-cares left open.
#[derive(Clone, Debug, PartialEq)]
pub struct TestVector {
    /// Values per primary input, in primary-input order (`None` =
    /// don't-care).
    pub assignment: Vec<Option<bool>>,
    /// The fault this vector was generated for.
    pub fault: StuckAtFault,
    /// Index of the primary output at which the fault is observed.
    pub observed_output: usize,
}

impl TestVector {
    /// Renders the vector as a `0`/`1`/`X` string over the primary inputs.
    pub fn to_pattern_string(&self) -> String {
        self.assignment
            .iter()
            .map(|v| match v {
                Some(true) => '1',
                Some(false) => '0',
                None => 'X',
            })
            .collect()
    }

    /// Fills the don't-cares with `fill` and returns a concrete pattern.
    pub fn concretize(&self, fill: bool) -> Vec<bool> {
        self.assignment.iter().map(|v| v.unwrap_or(fill)).collect()
    }
}

/// The outcome of generating a test for one fault.
#[derive(Clone, Debug, PartialEq)]
pub enum TestOutcome {
    /// A test vector exists (and is returned).
    Detected(TestVector),
    /// The fault was detected by a previously generated vector, so no new
    /// vector was emitted.
    PreviouslyDetected,
    /// No assignment activates the fault, propagates it to a primary output
    /// and satisfies the constraints.
    Untestable,
}

/// Summary of a full ATPG run over a fault list.
#[derive(Clone, Debug)]
pub struct AtpgReport {
    /// Name of the circuit.
    pub circuit: String,
    /// Total number of faults targeted.
    pub total_faults: usize,
    /// Number of detected faults (including those covered by earlier
    /// vectors).
    pub detected: usize,
    /// Faults for which no constrained test exists.
    pub untestable: Vec<StuckAtFault>,
    /// The generated vectors (after on-the-fly fault dropping).
    pub vectors: Vec<TestVector>,
    /// Wall-clock time spent.
    pub cpu: Duration,
    /// Whether a non-trivial constraint function was active.
    pub constrained: bool,
}

impl AtpgReport {
    /// Number of untestable faults.
    pub fn untestable_count(&self) -> usize {
        self.untestable.len()
    }

    /// Number of generated vectors.
    pub fn vector_count(&self) -> usize {
        self.vectors.len()
    }

    /// Fault coverage: detected / total.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }
}

/// Faults per pipeline round: while the replay consumes one round, the pool
/// generates the next.
const REPLAY_CHUNK: usize = 64;

/// Faults per generation work unit within a round (small, so the pool's
/// chunk stealing balances the very uneven per-fault generation cost).
const GENERATE_CHUNK: usize = 8;

/// The sequential fault-dropping replay: consumes per-fault outcomes in
/// fault-list order and maintains the word-parallel coverage blocks.
///
/// Fault-dropping pre-checks run word-parallel: generated patterns
/// accumulate in 64-wide good-value word blocks, and a candidate fault is
/// checked against a whole block with one cone-bounded propagation (the
/// same PPSFP kernel the fault simulator uses) instead of one full faulty
/// evaluation per (fault, pattern).  Both the serial loop and the pipelined
/// driver run exactly this state machine, which is what keeps their reports
/// byte-identical.
struct ReplayState<'n> {
    netlist: &'n Netlist,
    dropping: Option<(FaultCones, PpsfpScratch, Simulator<'n>)>,
    /// Good-value words and valid-pattern mask per block; the last block is
    /// rebuilt as it fills.
    blocks: Vec<(Vec<u64>, u64)>,
    open_block: Vec<Vec<bool>>,
    vectors: Vec<TestVector>,
    untestable: Vec<StuckAtFault>,
    detected: usize,
}

impl<'n> ReplayState<'n> {
    fn new(netlist: &'n Netlist, fault_dropping: bool, faults: &FaultList) -> Self {
        let dropping = if fault_dropping {
            Some((
                FaultCones::build(netlist, faults.faults().iter().map(|f| f.signal)),
                PpsfpScratch::new(netlist),
                Simulator::new(netlist),
            ))
        } else {
            None
        };
        ReplayState {
            netlist,
            dropping,
            blocks: Vec::new(),
            open_block: Vec::new(),
            vectors: Vec::new(),
            untestable: Vec::new(),
            detected: 0,
        }
    }

    /// Is the fault already detected by a previously replayed vector?
    /// Always `false` with fault dropping disabled.  Coverage is monotone:
    /// blocks only gain patterns, so once covered a fault stays covered.
    fn covered(&mut self, fault: StuckAtFault) -> bool {
        let Some((cones, scratch, _)) = &mut self.dropping else {
            return false;
        };
        let netlist = self.netlist;
        self.blocks
            .iter()
            .any(|(good, mask)| scratch.detection_word(netlist, cones, fault, good, *mask) != 0)
    }

    /// Applies one fault's outcome: bumps the detected count, folds a new
    /// vector into the word blocks, or records the fault as untestable.
    fn consume(&mut self, fault: StuckAtFault, outcome: TestOutcome) -> Result<(), CoreError> {
        match outcome {
            TestOutcome::Detected(vector) => {
                self.detected += 1;
                if let Some((_, _, word_sim)) = &self.dropping {
                    self.open_block.push(vector.concretize(false));
                    let words = word_sim
                        .run_parallel_all(&self.open_block)
                        .map_err(|e| CoreError::Digital(e.to_string()))?;
                    let mask = word_mask(self.open_block.len());
                    if self.open_block.len() == 1 {
                        self.blocks.push((words, mask));
                    } else {
                        *self.blocks.last_mut().expect("open block exists") = (words, mask);
                    }
                    if self.open_block.len() == 64 {
                        self.open_block.clear();
                    }
                }
                self.vectors.push(vector);
            }
            TestOutcome::PreviouslyDetected => {
                self.detected += 1;
            }
            TestOutcome::Untestable => self.untestable.push(fault),
        }
        Ok(())
    }
}

/// The OBDD-based constrained test generator.
///
/// # Example
///
/// ```
/// use msatpg_core::digital_atpg::DigitalAtpg;
/// use msatpg_digital::circuits;
/// use msatpg_digital::fault::FaultList;
///
/// let circuit = circuits::figure3_circuit();
/// let faults = FaultList::all(&circuit);
/// let mut atpg = DigitalAtpg::new(&circuit);
/// let report = atpg.run(&faults)?;
/// // Considered alone, the Figure-3 circuit is fully testable.
/// assert_eq!(report.untestable_count(), 0);
/// # Ok::<(), msatpg_core::CoreError>(())
/// ```
pub struct DigitalAtpg<'a> {
    netlist: &'a Netlist,
    manager: BddManager,
    signal_bdds: Vec<Bdd>,
    fc: Bdd,
    d_var: VarId,
    fault_dropping: bool,
    constrained: bool,
    policy: ExecPolicy,
    /// The inputs of [`DigitalAtpg::with_constraints`], kept so parallel
    /// workers can rebuild an equivalent engine.
    constraint_spec: Option<(Vec<SignalId>, AllowedCodes)>,
}

impl<'a> DigitalAtpg<'a> {
    /// Builds the generator for a netlist without constraints (`Fc = 1`).
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut manager = BddManager::new();
        let pi_literals = declare_input_variables(&mut manager, netlist);
        // The composite variable is declared last, as prescribed by the
        // paper's ordering.
        let d_var = manager.var_id(D_VAR_NAME);
        let mut signal_bdds = vec![manager.zero(); netlist.signal_count()];
        for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
            signal_bdds[pi.index()] = pi_literals[i];
        }
        for gate in netlist.gates() {
            let inputs: Vec<Bdd> = gate.inputs.iter().map(|i| signal_bdds[i.index()]).collect();
            signal_bdds[gate.output.index()] = apply_gate(&mut manager, gate.kind, &inputs);
        }
        // The signal functions are the engine's long-lived state: register
        // them as GC roots so the per-fault safe point in
        // [`DigitalAtpg::generate`] can sweep everything else.
        for &f in &signal_bdds {
            manager.protect(f);
        }
        let fc = manager.one();
        DigitalAtpg {
            netlist,
            manager,
            signal_bdds,
            fc,
            d_var,
            fault_dropping: true,
            constrained: false,
            policy: ExecPolicy::Serial,
            constraint_spec: None,
        }
    }

    /// Installs the constraint function `Fc` derived from the conversion
    /// block: `lines[i]` is the digital input driven by converter output `i`
    /// and `codes` lists the producible assignments.
    ///
    /// # Errors
    ///
    /// Returns an error if a constrained line is not a primary input.
    pub fn with_constraints(
        mut self,
        lines: &[SignalId],
        codes: &AllowedCodes,
    ) -> Result<Self, CoreError> {
        for &line in lines {
            if !self.netlist.is_primary_input(line) {
                return Err(CoreError::InvalidConnection {
                    reason: format!(
                        "constrained line '{}' is not a primary input",
                        self.netlist.signal_name(line)
                    ),
                });
            }
        }
        self.manager.unprotect(self.fc);
        self.fc = constraint_bdd(&mut self.manager, self.netlist, lines, codes);
        self.manager.protect(self.fc);
        self.constrained = !codes.is_unconstrained();
        self.constraint_spec = Some((lines.to_vec(), codes.clone()));
        Ok(self)
    }

    /// Enables or disables on-the-fly fault dropping during [`Self::run`]
    /// (enabled by default).
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.fault_dropping = enabled;
        self
    }

    /// Sets the execution policy of [`Self::run`].  Under `Threads(n)` the
    /// per-fault test sets are generated speculatively in parallel (each
    /// worker builds its own OBDD engine) and the fault-dropping pass
    /// replays them sequentially, so the report is byte-identical to a
    /// serial run.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The constraint function currently in force.
    pub fn constraint(&self) -> Bdd {
        self.fc
    }

    /// Read-only access to the BDD manager (for inspection / DOT export).
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// The BDD of a signal's fault-free function over the primary inputs.
    pub fn signal_function(&self, signal: SignalId) -> Bdd {
        self.signal_bdds[signal.index()]
    }

    /// Generates a test for one fault, ignoring previously generated
    /// vectors.
    pub fn generate(&mut self, fault: StuckAtFault) -> TestOutcome {
        // Safe point: no transient handle from a previous target is live
        // here, so everything outside the protected signal functions and
        // `Fc` is garbage.  The sweep never renumbers live nodes, so the
        // generated vectors are byte-identical with or without it.
        self.manager.gc_if_above(GC_WATERMARK);
        // 1. Activation: the line must carry the value opposite to the stuck
        //    value in the fault-free circuit.
        let line_fn = self.signal_bdds[fault.signal.index()];
        let activation = if fault.stuck_at {
            self.manager.not(line_fn)
        } else {
            line_fn
        };
        if activation.is_zero() {
            return TestOutcome::Untestable;
        }
        // 2. Re-derive the outputs with the fault site replaced by the free
        //    variable D (only the fanout cone needs recomputation).
        let faulty = self.functions_with_free_line(fault.signal);
        // 3. For each primary output, the test set is
        //    activation · (∂PO/∂D) · Fc.
        for (po_index, &po) in self.netlist.primary_outputs().iter().enumerate() {
            let f = faulty[po.index()];
            let observability = self.manager.boolean_difference(f, self.d_var);
            if observability.is_zero() {
                continue;
            }
            let act_obs = self.manager.and(activation, observability);
            let test_set = self.manager.and(act_obs, self.fc);
            if test_set.is_zero() {
                continue;
            }
            let cube = self
                .manager
                .sat_one(test_set)
                .expect("non-zero BDD has a satisfying cube");
            return TestOutcome::Detected(self.vector_from_cube(&cube, fault, po_index));
        }
        TestOutcome::Untestable
    }

    /// Runs the generator over a whole fault list, with fault dropping.
    ///
    /// Under a threaded [`ExecPolicy`] (see [`Self::with_policy`]) the run
    /// is **pipelined**: worker engines generate the test sets of fault
    /// chunk *k+1* while the sequential fault-dropping replay consumes
    /// chunk *k* on the caller's thread (see [`Self::run_on`]).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the fault-dropping pass (cannot
    /// occur for well-formed vectors).
    pub fn run(&mut self, faults: &FaultList) -> Result<AtpgReport, CoreError> {
        let pool = WorkerPool::new(self.policy);
        self.run_on(&pool, faults)
    }

    /// Like [`Self::run`], but rides a caller-provided [`WorkerPool`] so a
    /// larger flow (the mixed-signal ATPG) shares one pool across stages.
    /// The **pool's policy** decides the worker count here;
    /// [`Self::with_policy`] only configures the pool that [`Self::run`]
    /// builds internally.
    ///
    /// The pipeline works in rounds of `REPLAY_CHUNK` faults: while the
    /// replay consumes the outcomes of round *k*, the pool generates round
    /// *k+1*.  Before submitting a round the driver pre-screens its faults
    /// against the vectors replayed so far and flags the covered ones, so
    /// the workers stop speculating on faults the replay already covers.
    /// The replay itself remains the oracle — it re-checks coverage exactly
    /// like the serial loop and falls back to inline generation when a
    /// speculative outcome is missing — so the report is **byte-identical**
    /// to a serial run: [`Self::generate`] is a pure function of the
    /// (canonical) OBDD structure, and independently built managers with
    /// the same declaration order yield the same satisfying cube.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the fault-dropping pass.
    pub fn run_on(
        &mut self,
        pool: &WorkerPool,
        faults: &FaultList,
    ) -> Result<AtpgReport, CoreError> {
        let start = Instant::now();
        let mut replay = ReplayState::new(self.netlist, self.fault_dropping, faults);
        if pool.policy().is_serial() {
            for &fault in faults.faults() {
                if replay.covered(fault) {
                    replay.detected += 1;
                    continue;
                }
                let outcome = self.generate(fault);
                replay.consume(fault, outcome)?;
            }
        } else {
            self.run_pipelined(pool, faults, &mut replay)?;
        }
        Ok(AtpgReport {
            circuit: self.netlist.name().to_owned(),
            total_faults: faults.len(),
            detected: replay.detected,
            untestable: replay.untestable,
            vectors: replay.vectors,
            cpu: start.elapsed(),
            constrained: self.constrained,
        })
    }

    /// The pipelined engine behind [`Self::run_on`]: one pool session whose
    /// rounds generate fault chunks one step ahead of the replay.
    fn run_pipelined(
        &mut self,
        pool: &WorkerPool,
        faults: &FaultList,
        replay: &mut ReplayState<'a>,
    ) -> Result<(), CoreError> {
        let list = faults.faults();
        let netlist = self.netlist;
        let spec = self.constraint_spec.clone();
        // Replay-side coverage flags: set by the driver strictly between
        // rounds (prescreen), read by the workers to skip doomed
        // speculation.  They only gate whether a speculative outcome is
        // produced — the replay independently re-derives coverage — so the
        // flags cannot change the report, only the wasted work.
        let covered: Vec<AtomicBool> = list.iter().map(|_| AtomicBool::new(false)).collect();
        let n_rounds = list.len().div_ceil(REPLAY_CHUNK);
        // Small sub-chunks keep the pool's self-scheduling effective:
        // per-fault generation cost is highly uneven (hard faults explore
        // far more BDD nodes), so static one-chunk-per-worker splits would
        // leave workers idle behind the unlucky one.
        let chunks_per_round = REPLAY_CHUNK.div_ceil(GENERATE_CHUNK);
        pool.session(
            chunks_per_round,
            || {
                let engine = DigitalAtpg::new(netlist);
                match &spec {
                    Some((lines, codes)) => engine
                        .with_constraints(lines, codes)
                        .expect("constraints were validated when installed on the primary engine"),
                    None => engine,
                }
            },
            |engine, round_start: &usize, ci| {
                let base = round_start + ci * GENERATE_CHUNK;
                let end = (base + GENERATE_CHUNK)
                    .min(round_start + REPLAY_CHUNK)
                    .min(list.len());
                let mut outcomes: Vec<Option<TestOutcome>> = Vec::new();
                for k in base..end.max(base) {
                    if covered[k].load(Ordering::Relaxed) {
                        outcomes.push(None);
                    } else {
                        outcomes.push(Some(engine.generate(list[k])));
                    }
                }
                outcomes
            },
            |session| -> Result<(), CoreError> {
                session.submit(0usize, chunks_per_round);
                for round in 0..n_rounds {
                    let round_start = round * REPLAY_CHUNK;
                    let outcomes: Vec<Option<TestOutcome>> =
                        session.wait().into_iter().flatten().collect();
                    if round + 1 < n_rounds {
                        // Pre-screen the next round against the blocks
                        // replayed so far (rounds < `round`), then hand it
                        // to the workers before replaying this round.
                        let next_start = (round + 1) * REPLAY_CHUNK;
                        let next_end = (next_start + REPLAY_CHUNK).min(list.len());
                        for k in next_start..next_end {
                            if replay.covered(list[k]) {
                                covered[k].store(true, Ordering::Relaxed);
                            }
                        }
                        session.submit(next_start, chunks_per_round);
                    }
                    // Replay round `round` while the workers generate round
                    // `round + 1` — exactly the serial loop, with `generate`
                    // replaced by the speculative outcome where available.
                    for (j, slot) in outcomes.into_iter().enumerate() {
                        let k = round_start + j;
                        let fault = list[k];
                        // A flag set by the prescreen was itself a full
                        // coverage scan, and coverage is monotone (blocks
                        // only gain patterns), so the replay can trust it
                        // without rescanning; only unflagged faults pay the
                        // pre-check here.  Flags are written by this driver
                        // alone, never by workers.
                        if covered[k].load(Ordering::Relaxed) || replay.covered(fault) {
                            replay.detected += 1;
                            continue;
                        }
                        let outcome = match slot {
                            Some(outcome) => outcome,
                            None => self.generate(fault),
                        };
                        replay.consume(fault, outcome)?;
                    }
                }
                Ok(())
            },
        )
    }

    /// Signal functions with `line` replaced by the free variable `D`
    /// (faulty-cone recomputation).
    fn functions_with_free_line(&mut self, line: SignalId) -> Vec<Bdd> {
        let mut values = self.signal_bdds.clone();
        values[line.index()] = self.manager.literal(self.d_var, true);
        let cone: HashMap<usize, ()> = self
            .netlist
            .fanout_cone(line)
            .into_iter()
            .map(|s| (s.index(), ()))
            .collect();
        for gate in self.netlist.gates() {
            if gate.output == line || !cone.contains_key(&gate.output.index()) {
                continue;
            }
            let inputs: Vec<Bdd> = gate.inputs.iter().map(|i| values[i.index()]).collect();
            values[gate.output.index()] = apply_gate(&mut self.manager, gate.kind, &inputs);
        }
        values
    }

    fn vector_from_cube(&self, cube: &Cube, fault: StuckAtFault, po_index: usize) -> TestVector {
        let assignment = self
            .netlist
            .primary_inputs()
            .iter()
            .map(|&pi| {
                self.manager
                    .var_index(self.netlist.signal_name(pi))
                    .and_then(|v| cube.get(v))
            })
            .collect();
        TestVector {
            assignment,
            fault,
            observed_output: po_index,
        }
    }
}

/// Lowers one gate onto the OBDD manager: the single definition of how a
/// [`GateKind`] becomes Boolean operations, shared by the test generator,
/// the propagation engine and the `bdd_memory` benchmark (which must
/// measure exactly the build the ATPG performs).
pub fn apply_gate(manager: &mut BddManager, kind: GateKind, inputs: &[Bdd]) -> Bdd {
    match kind {
        GateKind::Buf => inputs[0],
        GateKind::Not => manager.not(inputs[0]),
        GateKind::And => manager.and_all(inputs.iter().copied()),
        GateKind::Nand => {
            let a = manager.and_all(inputs.iter().copied());
            manager.not(a)
        }
        GateKind::Or => manager.or_all(inputs.iter().copied()),
        GateKind::Nor => {
            let o = manager.or_all(inputs.iter().copied());
            manager.not(o)
        }
        GateKind::Xor => inputs
            .iter()
            .skip(1)
            .fold(inputs[0], |acc, &b| manager.xor(acc, b)),
        GateKind::Xnor => {
            let x = inputs
                .iter()
                .skip(1)
                .fold(inputs[0], |acc, &b| manager.xor(acc, b));
            manager.not(x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_digital::circuits;
    use msatpg_digital::fault::FaultList;
    use msatpg_digital::fault_sim::FaultSimulator;

    fn example2_constraint() -> AllowedCodes {
        // Fc = l0 + l2: every code except (0, 0).
        AllowedCodes::new(
            2,
            vec![vec![true, false], vec![false, true], vec![true, true]],
        )
    }

    #[test]
    fn figure3_alone_is_fully_testable() {
        let circuit = circuits::figure3_circuit();
        let faults = FaultList::all(&circuit);
        let mut atpg = DigitalAtpg::new(&circuit);
        let report = atpg.run(&faults).unwrap();
        assert_eq!(report.total_faults, 18);
        assert_eq!(report.untestable_count(), 0);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert!(!report.constrained);
        assert!(report.vector_count() <= report.detected);
    }

    #[test]
    fn figure3_under_constraints_loses_one_equivalence_class() {
        // The paper: with Fc = l0 + l2, the faults l0 s-a-1 and l3 s-a-1
        // become undetectable (two named faults of one equivalence class).
        // In our gate-level realization the OR gate that combines l0 and the
        // l2-branch l3 materializes a third equivalent fault (its output
        // s-a-1), so the uncollapsed run reports three undetectable faults —
        // all structurally equivalent — and the collapsed run reports two,
        // matching the paper's count.
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let l3 = circuit.find_signal("l3").unwrap();
        let l6 = circuit.find_signal("l6").unwrap();

        let uncollapsed = FaultList::all(&circuit);
        let mut atpg = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        let report = atpg.run(&uncollapsed).unwrap();
        assert!(report.constrained);
        assert_eq!(
            report.untestable_count(),
            3,
            "untestable: {:?}",
            report.untestable
        );
        assert!(report.untestable.contains(&StuckAtFault::sa1(l0)));
        assert!(report.untestable.contains(&StuckAtFault::sa1(l3)));
        assert!(report.untestable.contains(&StuckAtFault::sa1(l6)));

        let collapsed = FaultList::collapsed(&circuit);
        let mut atpg2 = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        let report2 = atpg2.run(&collapsed).unwrap();
        assert_eq!(
            report2.untestable_count(),
            2,
            "untestable: {:?}",
            report2.untestable
        );
        assert!(report2.untestable.contains(&StuckAtFault::sa1(l0)));
    }

    #[test]
    fn generated_vector_matches_paper_example() {
        // Fault l3 s-a-0 under Fc = l0 + l2: the paper derives the test
        // vector {l0, l1, l2, l4} = {0, 0, 1, X}.  Our generator must produce
        // a vector that activates, propagates and satisfies the constraint;
        // l2 = 1 and l0 = 0 are forced, the others may differ.
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let l3 = circuit.find_signal("l3").unwrap();
        let mut atpg = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        match atpg.generate(StuckAtFault::sa0(l3)) {
            TestOutcome::Detected(vector) => {
                // PI order is l0, l1, l2, l4.
                assert_eq!(vector.assignment[2], Some(true), "l2 must be 1 to activate");
                assert_eq!(
                    vector.assignment[0],
                    Some(false),
                    "l0 must be 0 to propagate"
                );
                let pattern = vector.to_pattern_string();
                assert_eq!(pattern.len(), 4);
            }
            other => panic!("expected a test, got {other:?}"),
        }
    }

    #[test]
    fn every_generated_vector_really_detects_its_fault() {
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let mut atpg = DigitalAtpg::new(&circuit);
        let report = atpg.run(&faults).unwrap();
        assert_eq!(report.untestable_count(), 0, "the adder is fully testable");
        let sim = FaultSimulator::new(&circuit);
        for vector in &report.vectors {
            let pattern = vector.concretize(false);
            assert!(
                sim.detects(vector.fault, &pattern).unwrap(),
                "vector {} must detect {}",
                vector.to_pattern_string(),
                vector.fault.describe(&circuit)
            );
        }
    }

    #[test]
    fn constrained_vectors_satisfy_the_constraint() {
        let circuit = circuits::figure3_circuit();
        let faults = FaultList::all(&circuit);
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let codes = example2_constraint();
        let mut atpg = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &codes)
            .unwrap();
        let report = atpg.run(&faults).unwrap();
        for vector in &report.vectors {
            let pattern = vector.concretize(false);
            // PI order: l0, l1, l2, l4 → constrained assignment is (l0, l2).
            let constrained = vec![pattern[0], pattern[2]];
            assert!(
                codes.allows(&constrained),
                "vector {} violates Fc",
                vector.to_pattern_string()
            );
        }
    }

    #[test]
    fn dropping_reduces_vector_count_but_not_coverage() {
        let circuit = circuits::adder4();
        let faults = FaultList::collapsed(&circuit);
        let with_drop = DigitalAtpg::new(&circuit).run(&faults).unwrap();
        let without_drop = DigitalAtpg::new(&circuit)
            .with_fault_dropping(false)
            .run(&faults)
            .unwrap();
        assert_eq!(with_drop.detected, without_drop.detected);
        assert!(with_drop.vector_count() <= without_drop.vector_count());
        assert!(without_drop.cpu >= Duration::ZERO);
    }

    #[test]
    fn parallel_runs_are_byte_identical_to_serial() {
        // Unconstrained adder and constrained Figure-3: every report field
        // except the wall-clock must match the serial run exactly, for both
        // dropping modes.
        let adder = circuits::adder4();
        let adder_faults = FaultList::collapsed(&adder);
        let figure3 = circuits::figure3_circuit();
        let figure3_faults = FaultList::all(&figure3);
        let l0 = figure3.find_signal("l0").unwrap();
        let l2 = figure3.find_signal("l2").unwrap();
        for dropping in [true, false] {
            let reference = DigitalAtpg::new(&adder)
                .with_fault_dropping(dropping)
                .run(&adder_faults)
                .unwrap();
            let constrained_reference = DigitalAtpg::new(&figure3)
                .with_constraints(&[l0, l2], &example2_constraint())
                .unwrap()
                .with_fault_dropping(dropping)
                .run(&figure3_faults)
                .unwrap();
            for threads in [2usize, 8] {
                let parallel = DigitalAtpg::new(&adder)
                    .with_fault_dropping(dropping)
                    .with_policy(ExecPolicy::Threads(threads))
                    .run(&adder_faults)
                    .unwrap();
                assert_eq!(parallel.detected, reference.detected);
                assert_eq!(parallel.untestable, reference.untestable);
                assert_eq!(parallel.vectors, reference.vectors);
                let parallel = DigitalAtpg::new(&figure3)
                    .with_constraints(&[l0, l2], &example2_constraint())
                    .unwrap()
                    .with_fault_dropping(dropping)
                    .with_policy(ExecPolicy::Threads(threads))
                    .run(&figure3_faults)
                    .unwrap();
                assert_eq!(parallel.detected, constrained_reference.detected);
                assert_eq!(parallel.untestable, constrained_reference.untestable);
                assert_eq!(parallel.vectors, constrained_reference.vectors);
                assert_eq!(parallel.constrained, constrained_reference.constrained);
            }
        }
    }

    #[test]
    fn pipelined_run_spawns_one_worker_set_and_one_barrier_per_round() {
        let circuit = circuits::adder4();
        // Double the fault universe so the campaign spans several pipeline
        // rounds (the replay handles repeated faults like the serial loop).
        let mut universe = FaultList::all(&circuit).faults().to_vec();
        universe.extend(universe.clone());
        let faults = FaultList::from_faults(universe);
        let pool = WorkerPool::new(ExecPolicy::Threads(2));
        let report = DigitalAtpg::new(&circuit)
            .with_policy(ExecPolicy::Threads(2))
            .run_on(&pool, &faults)
            .unwrap();
        let reference = DigitalAtpg::new(&circuit).run(&faults).unwrap();
        assert_eq!(report.vectors, reference.vectors);
        assert_eq!(report.detected, reference.detected);
        assert_eq!(report.untestable, reference.untestable);
        let stats = pool.stats();
        let n_rounds = faults.len().div_ceil(REPLAY_CHUNK) as u64;
        assert!(
            n_rounds >= 2,
            "the adder fault list must span several rounds"
        );
        assert_eq!(
            stats.spawns, 2,
            "one worker set for the whole pipelined run, not one per chunk"
        );
        assert_eq!(stats.barriers, n_rounds, "one barrier per pipeline round");
    }

    #[test]
    fn gc_between_targets_never_changes_outcomes() {
        // Force a full collection after every fault target on one engine
        // and none on the other: the per-fault outcomes (vectors, observed
        // outputs, untestability) must be byte-identical, because the sweep
        // never touches the protected signal functions or `Fc` and never
        // renumbers live nodes.
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let faults = FaultList::all(&circuit);
        let mut collected = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        let mut plain = DigitalAtpg::new(&circuit)
            .with_constraints(&[l0, l2], &example2_constraint())
            .unwrap();
        for &fault in faults.faults() {
            let report = collected.manager.gc();
            assert_eq!(
                report.live_after,
                collected.manager.live_node_count(),
                "gc accounting is coherent"
            );
            assert_eq!(collected.generate(fault), plain.generate(fault), "{fault}");
        }
        assert!(
            collected.manager.stats().gc_runs >= faults.len() as u64,
            "one forced collection per target"
        );
        assert_eq!(plain.manager.stats().gc_runs, 0);
        // The collected engine's arena is bounded by its live state; the
        // plain engine accumulated every transient test set.
        assert!(
            collected.manager.stats().node_count <= plain.manager.stats().node_count,
            "collection cannot leave more nodes live"
        );
    }

    #[test]
    fn constraining_a_non_input_line_is_rejected() {
        let circuit = circuits::figure3_circuit();
        let l6 = circuit.find_signal("l6").unwrap();
        let result = DigitalAtpg::new(&circuit)
            .with_constraints(&[l6], &AllowedCodes::new(1, vec![vec![true]]));
        assert!(result.is_err());
    }

    #[test]
    fn signal_functions_are_exposed() {
        let circuit = circuits::figure3_circuit();
        let atpg = DigitalAtpg::new(&circuit);
        let l6 = circuit.find_signal("l6").unwrap();
        let f = atpg.signal_function(l6);
        // l6 = l0 OR l3 = l0 OR l2 (through the buffer).
        assert_eq!(atpg.manager().support(f).len(), 2);
        assert!(atpg.constraint().is_one());
    }
}
