//! Propagation of a composite value (`D`/`D̄`) from a conversion-block
//! output through the digital block to a primary output (§2.3, Figure 6).
//!
//! The digital inputs driven by the conversion block are not free: under the
//! chosen analog stimulus they carry fixed logic values, except the one
//! comparator whose output differs between the fault-free and the faulty
//! circuit, which carries `D` or `D̄`.  The engine builds the OBDD of every
//! primary output over the *external* primary inputs plus the composite
//! variable `D` (last in the ordering) and looks for an external-input
//! assignment under which the output depends on `D`.

use std::collections::HashMap;

use msatpg_bdd::{Bdd, BddManager, Cube, VarId};
use msatpg_digital::logic::Logic;
use msatpg_digital::netlist::{Netlist, SignalId};
use msatpg_digital::sim::CompositeSimulator;

use crate::digital_atpg::apply_gate;
use crate::ordering::{pi_order, DvoMode, StaticOrder};
use crate::CoreError;

/// The name of the composite variable (kept last in the ordering).
const D_VAR_NAME: &str = "__D";

/// Live-node watermark above which the engine sweeps the per-call manager
/// once the output functions are built: every interior signal function is
/// garbage at that point, only the primary-output BDDs (registered as GC
/// roots) carry forward into the Boolean-difference search.
const GC_WATERMARK: usize = 1 << 12;

/// The result of a successful propagation search.
#[derive(Clone, Debug, PartialEq)]
pub struct PropagationResult {
    /// Index (in primary-output order) of the output where the composite
    /// value is observed.
    pub observed_output: usize,
    /// Required values of the external (unconstrained) primary inputs;
    /// `None` = don't-care.
    pub external_assignment: Vec<(SignalId, Option<bool>)>,
    /// The composite value observed at the output.
    pub observed_value: Logic,
}

/// OBDD-based propagation engine bound to one digital netlist.
pub struct PropagationEngine<'a> {
    netlist: &'a Netlist,
    order: StaticOrder,
    dvo: DvoMode,
}

impl<'a> PropagationEngine<'a> {
    /// Creates a propagation engine (declaration input order, dynamic
    /// reordering per the `MSATPG_DVO` environment variable).
    pub fn new(netlist: &'a Netlist) -> Self {
        PropagationEngine {
            netlist,
            order: StaticOrder::Declaration,
            dvo: DvoMode::Auto,
        }
    }

    /// Sets the static heuristic that orders the external input variables
    /// of the per-call OBDD managers (`D` stays last; see [`StaticOrder`]).
    pub fn with_static_order(mut self, order: StaticOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the dynamic-variable-ordering mode applied once per search,
    /// right after the output functions are built (see [`DvoMode`]).
    pub fn with_dvo(mut self, dvo: DvoMode) -> Self {
        self.dvo = dvo;
        self
    }

    /// Searches for an assignment to the external primary inputs that
    /// propagates the composite value to some primary output.
    ///
    /// `fixed` gives the logic value of every constrained input (the values
    /// the conversion block produces under the chosen stimulus in the
    /// fault-free circuit); `composite_line` is the constrained input whose
    /// value differs in the faulty circuit and `composite` is that value
    /// (`D` or `D̄`).
    ///
    /// Returns `Ok(None)` when no assignment propagates the fault.
    ///
    /// # Errors
    ///
    /// Returns an error if `composite` is not a fault effect or a fixed value
    /// is not a constant.
    pub fn find_propagating_assignment(
        &self,
        fixed: &HashMap<SignalId, bool>,
        composite_line: SignalId,
        composite: Logic,
    ) -> Result<Option<PropagationResult>, CoreError> {
        let (mut manager, outputs, d_var) =
            self.build_output_functions(fixed, composite_line, composite)?;
        for (po_index, &f) in outputs.iter().enumerate() {
            // The fault is observable at this output iff the output depends
            // on D for some external-input assignment.
            let diff = manager.boolean_difference(f, d_var);
            if diff.is_zero() {
                continue;
            }
            let cube = manager.sat_one(diff).expect("non-zero BDD is satisfiable");
            let result =
                self.result_from_cube(&manager, &cube, po_index, fixed, composite_line, composite)?;
            return Ok(Some(result));
        }
        Ok(None)
    }

    /// Builds the OBDDs of every primary output over the external inputs
    /// plus the composite variable `D` (declared last), registers them as
    /// GC roots and sweeps the interior signal functions the build left
    /// behind.  Shared by the single-output and the all-outputs searches.
    fn build_output_functions(
        &self,
        fixed: &HashMap<SignalId, bool>,
        composite_line: SignalId,
        composite: Logic,
    ) -> Result<(BddManager, Vec<Bdd>, VarId), CoreError> {
        if !composite.is_fault_effect() {
            return Err(CoreError::Propagation {
                reason: format!("composite value must be D or D', got {composite}"),
            });
        }
        let mut manager = BddManager::new();
        // External inputs first (in the static heuristic's order), D last.
        let mut values: Vec<Option<Bdd>> = vec![None; self.netlist.signal_count()];
        for &pi in &pi_order(self.netlist, self.order) {
            if pi == composite_line {
                continue;
            }
            if let Some(&v) = fixed.get(&pi) {
                values[pi.index()] = Some(manager.constant(v));
            } else {
                let literal = manager.var(self.netlist.signal_name(pi));
                values[pi.index()] = Some(literal);
            }
        }
        let d_var = manager.var_id(D_VAR_NAME);
        // The composite line is represented by the variable D for `D` and by
        // ¬D for `D̄`, so that D = 1 always means "the good-circuit value".
        // With complement edges the negation shares the literal's node.
        let d_literal = manager.literal(d_var, true);
        values[composite_line.index()] = Some(match composite {
            Logic::D => d_literal,
            _ => manager.not(d_literal),
        });
        for gate in self.netlist.gates() {
            let inputs: Vec<Bdd> = gate
                .inputs
                .iter()
                .map(|i| values[i.index()].expect("topological order guarantees availability"))
                .collect();
            let out = apply_gate(&mut manager, gate.kind, &inputs);
            if values[gate.output.index()].is_none() {
                values[gate.output.index()] = Some(out);
            }
        }
        let outputs: Vec<Bdd> = self
            .netlist
            .primary_outputs()
            .iter()
            .map(|&po| values[po.index()].expect("all signals computed"))
            .collect();
        // Only the output functions carry forward; reclaim the interior of
        // the netlist build before the Boolean-difference search fans out.
        for &f in &outputs {
            manager.protect(f);
        }
        manager.gc_if_above(GC_WATERMARK);
        // Deterministic reordering safe point: only the protected output
        // functions survive into the Boolean-difference search, so a sift
        // here shrinks exactly what that search will traverse.
        if self.dvo.is_active() {
            let _ = manager.try_sift_until_convergence();
        }
        Ok((manager, outputs, d_var))
    }

    /// Lists, for each primary output, whether the composite value can be
    /// propagated to it (used for the "propagation through comparators"
    /// study of Table 5).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::find_propagating_assignment`].
    pub fn reachable_outputs(
        &self,
        fixed: &HashMap<SignalId, bool>,
        composite_line: SignalId,
        composite: Logic,
    ) -> Result<Vec<bool>, CoreError> {
        let mut reachable = Vec::new();
        for po_index in 0..self.netlist.primary_outputs().len() {
            let single =
                self.find_propagating_assignment_to(fixed, composite_line, composite, po_index)?;
            reachable.push(single.is_some());
        }
        Ok(reachable)
    }

    fn find_propagating_assignment_to(
        &self,
        fixed: &HashMap<SignalId, bool>,
        composite_line: SignalId,
        composite: Logic,
        target_output: usize,
    ) -> Result<Option<PropagationResult>, CoreError> {
        // Reuse the general search but mask every other output by checking
        // only the requested one.
        let all = self.find_all(fixed, composite_line, composite)?;
        Ok(all.into_iter().find(|r| r.observed_output == target_output))
    }

    fn find_all(
        &self,
        fixed: &HashMap<SignalId, bool>,
        composite_line: SignalId,
        composite: Logic,
    ) -> Result<Vec<PropagationResult>, CoreError> {
        let (mut manager, outputs, d_var) =
            self.build_output_functions(fixed, composite_line, composite)?;
        let mut results = Vec::new();
        for (po_index, &f) in outputs.iter().enumerate() {
            let diff = manager.boolean_difference(f, d_var);
            if diff.is_zero() {
                continue;
            }
            let cube = manager.sat_one(diff).expect("non-zero BDD is satisfiable");
            results.push(self.result_from_cube(
                &manager,
                &cube,
                po_index,
                fixed,
                composite_line,
                composite,
            )?);
        }
        Ok(results)
    }

    fn result_from_cube(
        &self,
        manager: &BddManager,
        cube: &Cube,
        po_index: usize,
        fixed: &HashMap<SignalId, bool>,
        composite_line: SignalId,
        composite: Logic,
    ) -> Result<PropagationResult, CoreError> {
        let external_assignment: Vec<(SignalId, Option<bool>)> = self
            .netlist
            .primary_inputs()
            .iter()
            .copied()
            .filter(|&pi| pi != composite_line && !fixed.contains_key(&pi))
            .map(|pi| {
                let value = manager
                    .var_index(self.netlist.signal_name(pi))
                    .and_then(|v| cube.get(v));
                (pi, value)
            })
            .collect();
        // Cross-check with the five-valued simulator and read the composite
        // value actually observed at the output.
        let mut sim = CompositeSimulator::new(self.netlist);
        sim.force(composite_line, composite);
        let inputs: Vec<Logic> = self
            .netlist
            .primary_inputs()
            .iter()
            .map(|&pi| {
                if pi == composite_line {
                    Logic::X // overridden by force()
                } else if let Some(&v) = fixed.get(&pi) {
                    Logic::from(v)
                } else {
                    external_assignment
                        .iter()
                        .find(|(s, _)| *s == pi)
                        .and_then(|(_, v)| *v)
                        .map(Logic::from)
                        .unwrap_or(Logic::Zero)
                }
            })
            .collect();
        let outputs = sim
            .run_outputs(&inputs)
            .map_err(|e| CoreError::Digital(e.to_string()))?;
        let observed_value = outputs[po_index];
        if !observed_value.is_fault_effect() {
            return Err(CoreError::Propagation {
                reason: format!(
                    "BDD search claimed propagation to output {po_index} but simulation observes {observed_value}"
                ),
            });
        }
        Ok(PropagationResult {
            observed_output: po_index,
            external_assignment,
            observed_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_digital::circuits;

    /// The paper's Figure-6 scenario: l0 = D, l2 = D̄ is not representable
    /// with a single composite line, so we reproduce the simpler case the
    /// text walks through: a D appears on l2 (through the comparator Co1)
    /// while l0 keeps its fault-free value, and the external inputs l1, l4
    /// must be chosen to propagate it.
    #[test]
    fn figure6_propagation_to_both_outputs() {
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let engine = PropagationEngine::new(&circuit);
        let mut fixed = HashMap::new();
        fixed.insert(l0, true); // comparator Co? keeps l0 = 1
        let result = engine
            .find_propagating_assignment(&fixed, l2, Logic::D)
            .unwrap()
            .expect("the fault effect must reach an output");
        assert!(result.observed_value.is_fault_effect());
        // With l0 = 1, l6 = 1 and Vo1 = l7 = l1 + D... propagation to Vo1
        // requires l1 = 0; Vo2 = l6·l4 never sees the effect; so observation
        // happens at output 0 (Vo1).
        assert_eq!(result.observed_output, 0);
        let l1 = circuit.find_signal("l1").unwrap();
        let l1_value = result
            .external_assignment
            .iter()
            .find(|(s, _)| *s == l1)
            .unwrap()
            .1;
        assert_eq!(l1_value, Some(false));
    }

    #[test]
    fn propagation_blocked_by_fixed_values() {
        // With l0 forced to 0 the OR gate l6 = l0 + l3 passes l3 = l2 and the
        // composite on l2 reaches both outputs through l6; but if the fixed
        // comparator values force l0 = 0 AND the composite is on l0 instead,
        // masking can occur.  Exercise a masked case: composite on l2 with
        // l0 = 0 → l6 = D(l2-path), Vo2 = l6 · l4 needs l4 = 1.
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let engine = PropagationEngine::new(&circuit);
        let mut fixed = HashMap::new();
        fixed.insert(l0, false);
        let reachable = engine.reachable_outputs(&fixed, l2, Logic::D).unwrap();
        assert_eq!(reachable, vec![true, true], "both outputs reachable");

        // Now force l0 = 1: l6 is stuck at 1, Vo2 = l4 is fault-free, and
        // only Vo1 (through l7) can observe the composite.
        let mut fixed2 = HashMap::new();
        fixed2.insert(l0, true);
        let reachable2 = engine.reachable_outputs(&fixed2, l2, Logic::D).unwrap();
        assert_eq!(reachable2, vec![true, false]);
    }

    #[test]
    fn dbar_composite_is_supported() {
        let circuit = circuits::figure3_circuit();
        let l0 = circuit.find_signal("l0").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let engine = PropagationEngine::new(&circuit);
        let mut fixed = HashMap::new();
        fixed.insert(l0, true);
        let result = engine
            .find_propagating_assignment(&fixed, l2, Logic::Dbar)
            .unwrap()
            .expect("D' propagates the same way");
        assert!(result.observed_value.is_fault_effect());
    }

    #[test]
    fn non_composite_value_is_rejected() {
        let circuit = circuits::figure3_circuit();
        let l2 = circuit.find_signal("l2").unwrap();
        let engine = PropagationEngine::new(&circuit);
        let err = engine
            .find_propagating_assignment(&HashMap::new(), l2, Logic::One)
            .unwrap_err();
        assert!(matches!(err, CoreError::Propagation { .. }));
    }

    #[test]
    fn unpropagatable_effect_returns_none() {
        // Force every other input so that both outputs are insensitive to
        // the composite line: l0 = 1 makes l6 = 1, and the composite sits on
        // l4's partner... use composite on l4 path: force l6 path... Build
        // the blocked case directly: composite on l1 with l2 = 1 forces
        // l7 = 1, so Vo1 is insensitive to l1 and Vo2 never depends on l1.
        let circuit = circuits::figure3_circuit();
        let l1 = circuit.find_signal("l1").unwrap();
        let l2 = circuit.find_signal("l2").unwrap();
        let engine = PropagationEngine::new(&circuit);
        let mut fixed = HashMap::new();
        fixed.insert(l2, true);
        let result = engine
            .find_propagating_assignment(&fixed, l1, Logic::D)
            .unwrap();
        assert!(result.is_none(), "l7 = l1 + 1 masks the composite");
    }
}
