//! The end-to-end mixed-signal test-generation flow: analog element tests,
//! conversion-block tests and constrained digital stuck-at tests combined
//! into one [`TestPlan`].

use std::path::PathBuf;

use msatpg_analog::coverage::CoverageGraph;
use msatpg_analog::sensitivity::{DeviationReport, WorstCaseAnalysis};
use msatpg_bdd::BddBudget;
use msatpg_conversion::fault::ladder_coverage;
use msatpg_digital::fault::FaultList;
use msatpg_digital::fault_sim::WordWidth;
use msatpg_exec::{ExecPolicy, WorkerPool};

use crate::analog_atpg::{AnalogAtpg, AnalogTestEntry, ElementTestRequest};
use crate::digital_atpg::{AtpgReport, DigitalAtpg};
use crate::mixed_circuit::{ConverterBlock, MixedCircuit};
use crate::ordering::DvoMode;
use crate::store::{self, CheckpointPolicy};
use crate::CoreError;

/// Options controlling a [`MixedSignalAtpg`] run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AtpgOptions {
    /// Parameter tolerance box (fraction), ±5 % in the paper.
    pub parameter_tolerance: f64,
    /// Fault-free element tolerance used for worst-case masking.
    pub element_tolerance: f64,
    /// Use worst-case masking (true) or nominal-only analysis (false).
    pub worst_case: bool,
    /// Largest element deviation searched (fraction).
    pub max_deviation: f64,
    /// Use the collapsed stuck-at fault list (true) or the full one (false).
    pub collapse_faults: bool,
    /// Execution policy for the parallelizable stages (digital test
    /// generation and the deviation analysis).  Every policy produces a
    /// byte-identical [`TestPlan`]; `Serial` is the default.
    pub exec: ExecPolicy,
    /// Resource budget for the digital OBDD engines.  Unlimited by default;
    /// arming it makes the stuck-at passes degrade gracefully instead of
    /// blowing up on pathological cones (see
    /// [`DigitalAtpg::with_budget`](crate::DigitalAtpg::with_budget)).
    pub bdd_budget: BddBudget,
    /// PPSFP block width of the digital stages (fault-dropping pre-screens
    /// and degraded-fault verification).  The default honors the
    /// `MSATPG_WORD_WIDTH` environment variable; every width produces a
    /// byte-identical [`TestPlan`] (see
    /// [`DigitalAtpg::with_word_width`](crate::DigitalAtpg::with_word_width)).
    pub word_width: WordWidth,
    /// Dynamic variable reordering of the digital OBDD engines.  The
    /// default honors the `MSATPG_DVO` environment variable; every mode
    /// produces an *equivalent* [`TestPlan`] (same coverage and outcome
    /// taxonomy, possibly different test cubes — see
    /// [`DigitalAtpg::with_dvo`](crate::DigitalAtpg::with_dvo)), and within
    /// one mode the plan stays byte-identical across thread counts.
    pub dvo: DvoMode,
}

impl Default for AtpgOptions {
    fn default() -> Self {
        AtpgOptions {
            parameter_tolerance: 0.05,
            element_tolerance: 0.05,
            worst_case: false,
            max_deviation: 5.0,
            collapse_faults: true,
            exec: ExecPolicy::Serial,
            bdd_budget: BddBudget::UNLIMITED,
            word_width: WordWidth::Auto,
            dvo: DvoMode::Auto,
        }
    }
}

/// Coverage of one conversion-block ladder resistor inside the mixed
/// circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct ConversionTestEntry {
    /// 1-based resistor index (bottom of the ladder first).
    pub resistor: usize,
    /// 1-based comparator through which it is best tested, or `None` when no
    /// usable comparator can test it (the dashed cells of Table 7).
    pub comparator: Option<usize>,
    /// Detectable deviation (fraction) through that comparator.
    pub detectable_deviation: Option<f64>,
}

/// The complete output of the mixed-signal ATPG.
#[derive(Clone, Debug)]
pub struct TestPlan {
    /// Constrained stuck-at ATPG results for the digital block.
    pub digital: AtpgReport,
    /// Unconstrained results for comparison (the paper's "case 1").
    pub digital_unconstrained: AtpgReport,
    /// Analog element tests (one entry per element, at its detectable
    /// deviation).
    pub analog: Vec<AnalogTestEntry>,
    /// Element-deviation report of the analog block (the E.D. columns of
    /// Tables 3 and 8).
    pub analog_deviations: DeviationReport,
    /// Conversion-block ladder coverage inside the mixed circuit (Table 7)
    /// — empty for binary converters.
    pub conversion: Vec<ConversionTestEntry>,
}

impl TestPlan {
    /// Number of analog elements for which a complete test was found.
    pub fn analog_tested_count(&self) -> usize {
        self.analog.iter().filter(|e| e.outcome.is_tested()).count()
    }

    /// Fraction of analog elements with a complete test.
    pub fn analog_coverage(&self) -> f64 {
        if self.analog.is_empty() {
            return 1.0;
        }
        self.analog_tested_count() as f64 / self.analog.len() as f64
    }
}

/// The top-level mixed-signal test generator.
///
/// # Example
///
/// ```no_run
/// use msatpg_core::{MixedCircuit, MixedSignalAtpg, ConverterBlock};
/// use msatpg_analog::filters;
/// use msatpg_conversion::FlashAdc;
/// use msatpg_digital::circuits;
///
/// let mut mixed = MixedCircuit::new(
///     "figure4",
///     filters::second_order_band_pass(),
///     ConverterBlock::Flash(FlashAdc::uniform(2, 3.0)?),
///     circuits::figure3_circuit(),
/// );
/// mixed.connect_in_order(&["l0", "l2"])?;
/// let plan = MixedSignalAtpg::new(mixed).run()?;
/// println!("analog coverage: {:.0}%", plan.analog_coverage() * 100.0);
/// println!("untestable digital faults: {}", plan.digital.untestable_count());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct MixedSignalAtpg {
    circuit: MixedCircuit,
    options: AtpgOptions,
    checkpoint: Option<(CheckpointPolicy, PathBuf)>,
}

impl MixedSignalAtpg {
    /// Creates the generator with default options.
    pub fn new(circuit: MixedCircuit) -> Self {
        MixedSignalAtpg {
            circuit,
            options: AtpgOptions::default(),
            checkpoint: None,
        }
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: AtpgOptions) -> Self {
        self.options = options;
        self
    }

    /// Arms campaign checkpointing for the digital ATPG stages: each stage
    /// journals its per-fault outcomes into `dir`
    /// (`digital_constrained.ckpt` / `digital_unconstrained.ckpt`) per
    /// `policy`, and — when a valid snapshot for the same circuit and fault
    /// list is already present — resumes from it instead of starting over.
    /// A missing, corrupt or mismatched snapshot silently falls back to a
    /// fresh campaign; genuine I/O failures while *writing* a checkpoint
    /// still surface as [`CoreError::Store`].
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some((policy, dir.into()));
        self
    }

    /// Wires the armed checkpoint directory (if any) into one digital
    /// stage: arms journaling on `stage_file` and resumes from a valid
    /// pre-existing snapshot.
    fn checkpointed<'a>(
        &self,
        atpg: DigitalAtpg<'a>,
        faults: &FaultList,
        stage_file: &str,
    ) -> DigitalAtpg<'a> {
        let Some((policy, dir)) = &self.checkpoint else {
            return atpg;
        };
        let path = dir.join(stage_file);
        let atpg = match store::load_checkpoint(&path, self.circuit.digital(), faults.faults()) {
            Ok(snapshot) => atpg.with_resume(snapshot),
            // No snapshot yet, or an unusable one (torn, corrupt, from a
            // different campaign): start fresh and overwrite it.
            Err(_) => atpg,
        };
        atpg.with_checkpoint(*policy, path)
    }

    /// The mixed circuit under test.
    pub fn circuit(&self) -> &MixedCircuit {
        &self.circuit
    }

    /// Runs the constrained digital ATPG (the paper's "case 2").
    ///
    /// # Errors
    ///
    /// Propagates ATPG errors.
    pub fn digital_constrained(&self) -> Result<AtpgReport, CoreError> {
        self.digital_constrained_on(&WorkerPool::new(self.options.exec))
    }

    /// [`MixedSignalAtpg::digital_constrained`] on a shared worker pool.
    ///
    /// On the `_on` paths the **pool's policy** governs execution —
    /// `options.exec` only matters when the convenience wrappers build the
    /// pool themselves.
    ///
    /// # Errors
    ///
    /// Propagates ATPG errors.
    pub fn digital_constrained_on(&self, pool: &WorkerPool) -> Result<AtpgReport, CoreError> {
        let faults = self.fault_list();
        let lines = self.circuit.constrained_inputs();
        let codes = self.circuit.allowed_codes();
        let atpg = DigitalAtpg::new(self.circuit.digital())
            .with_budget(self.options.bdd_budget)
            .with_word_width(self.options.word_width)
            .with_constraints(&lines, &codes)?
            .with_dvo(self.options.dvo);
        let mut atpg = self.checkpointed(atpg, &faults, "digital_constrained.ckpt");
        atpg.run_on(pool, &faults)
    }

    /// Runs the unconstrained digital ATPG (the paper's "case 1", every
    /// block accessed directly).
    ///
    /// # Errors
    ///
    /// Propagates ATPG errors.
    pub fn digital_unconstrained(&self) -> Result<AtpgReport, CoreError> {
        self.digital_unconstrained_on(&WorkerPool::new(self.options.exec))
    }

    /// [`MixedSignalAtpg::digital_unconstrained`] on a shared worker pool
    /// (whose policy governs execution, as on every `_on` path).
    ///
    /// # Errors
    ///
    /// Propagates ATPG errors.
    pub fn digital_unconstrained_on(&self, pool: &WorkerPool) -> Result<AtpgReport, CoreError> {
        let faults = self.fault_list();
        let atpg = DigitalAtpg::new(self.circuit.digital())
            .with_budget(self.options.bdd_budget)
            .with_word_width(self.options.word_width)
            .with_dvo(self.options.dvo);
        let mut atpg = self.checkpointed(atpg, &faults, "digital_unconstrained.ckpt");
        atpg.run_on(pool, &faults)
    }

    /// Computes the analog element-deviation report (worst-case or nominal
    /// per the options).
    ///
    /// # Errors
    ///
    /// Propagates analog measurement errors.
    pub fn analog_deviation_report(&self) -> Result<DeviationReport, CoreError> {
        self.analog_deviation_report_on(&WorkerPool::new(self.options.exec))
    }

    /// [`MixedSignalAtpg::analog_deviation_report`] on a shared worker pool
    /// (whose policy governs execution, as on every `_on` path).
    ///
    /// # Errors
    ///
    /// Propagates analog measurement errors.
    pub fn analog_deviation_report_on(
        &self,
        pool: &WorkerPool,
    ) -> Result<DeviationReport, CoreError> {
        WorstCaseAnalysis::new(
            self.circuit.analog().circuit(),
            self.circuit.analog().parameters(),
        )
        .with_parameter_tolerance(self.options.parameter_tolerance)
        .with_element_tolerance(self.options.element_tolerance)
        .with_worst_case(self.options.worst_case)
        .with_max_deviation(self.options.max_deviation)
        .run_on(pool)
        .map_err(|e| CoreError::Analog(e.to_string()))
    }

    /// Generates analog element tests from a precomputed deviation report.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn analog_tests(
        &self,
        deviations: &DeviationReport,
    ) -> Result<Vec<AnalogTestEntry>, CoreError> {
        self.analog_tests_on(&WorkerPool::new(self.options.exec), deviations)
    }

    /// [`MixedSignalAtpg::analog_tests`] on a shared worker pool: the cheap
    /// per-element parameter ranking happens inline, then the expensive
    /// stimulus/propagation searches run one element per work unit through
    /// [`AnalogAtpg::test_elements_on`], merged back in element order.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn analog_tests_on(
        &self,
        pool: &WorkerPool,
        deviations: &DeviationReport,
    ) -> Result<Vec<AnalogTestEntry>, CoreError> {
        let atpg = AnalogAtpg::new(&self.circuit).with_tolerance(self.options.parameter_tolerance);
        let graph = CoverageGraph::from_report(deviations);
        let analog = self.circuit.analog();
        // Slot per element: either a ready entry (nothing detects the
        // element — no simulation needed) or `None`, to be filled from the
        // pooled test of the request with the same rank.
        let mut slots: Vec<Option<AnalogTestEntry>> = Vec::new();
        let mut requests: Vec<ElementTestRequest> = Vec::new();
        for (element_id, element_name) in deviations.elements() {
            // Rank the parameters for this element by detectable deviation
            // (the paper tests "the parameter that is the most sensitive to a
            // deviation in the element" first).
            let mut ranked: Vec<(String, f64)> = deviations
                .rows()
                .iter()
                .filter(|r| &r.element == element_name)
                .filter_map(|r| r.detectable_deviation.map(|d| (r.parameter.clone(), d)))
                .collect();
            ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let ranking: Vec<_> = ranked
                .iter()
                .filter_map(|(name, _)| {
                    analog
                        .parameters()
                        .iter()
                        .find(|p| &p.name == name)
                        .cloned()
                })
                .collect();
            let Some(best) = graph.best_deviation(element_name) else {
                slots.push(Some(AnalogTestEntry {
                    element: element_name.clone(),
                    parameter: "-".to_owned(),
                    deviation: f64::NAN,
                    direction: crate::activation::DeviationSign::Below,
                    outcome: crate::analog_atpg::AnalogTestOutcome::Failed(
                        crate::analog_atpg::AnalogTestFailure::ActivationFailed,
                    ),
                }));
                continue;
            };
            // Inject a deviation 20 % beyond the detectable threshold, in the
            // negative direction (component value drops), as on the paper's
            // validation board.
            let injected = -(best * 1.2).min(0.95);
            slots.push(None);
            requests.push(ElementTestRequest {
                element: *element_id,
                deviation: injected,
                ranking,
            });
        }
        let mut tested = atpg.test_elements_on(pool, &requests)?.into_iter();
        Ok(slots
            .into_iter()
            .map(|slot| match slot {
                Some(entry) => entry,
                None => tested.next().expect("one entry per request"),
            })
            .collect())
    }

    /// Computes the conversion-block ladder coverage inside the mixed
    /// circuit (Table 7): each ladder resistor is tested through the best
    /// comparator whose flip can still be propagated through the constrained
    /// digital block.
    ///
    /// # Errors
    ///
    /// Propagates propagation errors.
    pub fn conversion_tests(&self) -> Result<Vec<ConversionTestEntry>, CoreError> {
        self.conversion_tests_on(&WorkerPool::new(self.options.exec))
    }

    /// [`MixedSignalAtpg::conversion_tests`] on a shared worker pool: the
    /// per-comparator propagation studies are independent OBDD builds and
    /// run one comparator per work unit.
    ///
    /// # Errors
    ///
    /// Propagates propagation errors.
    pub fn conversion_tests_on(
        &self,
        pool: &WorkerPool,
    ) -> Result<Vec<ConversionTestEntry>, CoreError> {
        let ConverterBlock::Flash(adc) = self.circuit.converter() else {
            return Ok(Vec::new());
        };
        let coverage = ladder_coverage(adc.ladder(), self.options.parameter_tolerance, 50.0)
            .map_err(|e| CoreError::Conversion(e.to_string()))?;
        // Which comparators can propagate a flip through the digital block?
        let atpg = AnalogAtpg::new(&self.circuit);
        let study = atpg.comparator_propagation_study_on(pool)?;
        let usable: Vec<usize> = study
            .iter()
            .enumerate()
            .filter(|(_, &(d, dbar))| d || dbar)
            .map(|(i, _)| i + 1)
            .collect();
        let assignment = coverage.best_assignment(&usable);
        Ok(assignment
            .into_iter()
            .map(|(resistor, best)| ConversionTestEntry {
                resistor,
                comparator: best.map(|(k, _)| k),
                detectable_deviation: best.map(|(_, d)| d),
            })
            .collect())
    }

    /// Runs the complete flow and assembles the [`TestPlan`].
    ///
    /// One [`WorkerPool`] is threaded through every stage — the digital
    /// ATPG pipelines on it, and the analog element tests, deviation rows
    /// and conversion-block comparator studies ride the same pool — so its
    /// [`msatpg_exec::PoolStats`] describe the entire mixed-signal run.
    ///
    /// # Errors
    ///
    /// Propagates errors from any of the stages.
    pub fn run(&self) -> Result<TestPlan, CoreError> {
        self.run_on(&WorkerPool::new(self.options.exec))
    }

    /// [`MixedSignalAtpg::run`] on a caller-provided pool.
    ///
    /// # Errors
    ///
    /// Propagates errors from any of the stages.
    pub fn run_on(&self, pool: &WorkerPool) -> Result<TestPlan, CoreError> {
        self.circuit.validate()?;
        let digital = self.digital_constrained_on(pool)?;
        let digital_unconstrained = self.digital_unconstrained_on(pool)?;
        let analog_deviations = self.analog_deviation_report_on(pool)?;
        let analog = self.analog_tests_on(pool, &analog_deviations)?;
        let conversion = self.conversion_tests_on(pool)?;
        Ok(TestPlan {
            digital,
            digital_unconstrained,
            analog,
            analog_deviations,
            conversion,
        })
    }

    fn fault_list(&self) -> FaultList {
        if self.options.collapse_faults {
            FaultList::collapsed(self.circuit.digital())
        } else {
            FaultList::all(self.circuit.digital())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_analog::filters;
    use msatpg_conversion::constraints::AllowedCodes;
    use msatpg_conversion::FlashAdc;
    use msatpg_digital::circuits;

    fn figure4() -> MixedCircuit {
        let analog = filters::second_order_band_pass();
        let adc = FlashAdc::uniform(2, 3.0).unwrap();
        let digital = circuits::figure3_circuit();
        let mut mixed = MixedCircuit::new("figure4", analog, ConverterBlock::Flash(adc), digital);
        mixed.connect_in_order(&["l0", "l2"]).unwrap();
        // Example 2: the code (0,0) can never be produced by the analog
        // block in its operating range.
        mixed.set_allowed_codes(AllowedCodes::new(
            2,
            vec![vec![true, false], vec![false, true], vec![true, true]],
        ));
        mixed
    }

    #[test]
    fn digital_case1_vs_case2_matches_example2() {
        // Collapsed fault list: fully testable when accessed directly,
        // 2 undetectable faults inside the mixed circuit (the paper's
        // Example 2 count).
        let atpg = MixedSignalAtpg::new(figure4());
        let unconstrained = atpg.digital_unconstrained().unwrap();
        let constrained = atpg.digital_constrained().unwrap();
        assert_eq!(unconstrained.untestable_count(), 0);
        assert_eq!(constrained.untestable_count(), 2);
        // The uncollapsed universe of the Figure-3 circuit has 18 faults.
        let uncollapsed = MixedSignalAtpg::new(figure4()).with_options(AtpgOptions {
            collapse_faults: false,
            ..AtpgOptions::default()
        });
        assert_eq!(
            uncollapsed.digital_unconstrained().unwrap().total_faults,
            18
        );
    }

    #[test]
    fn full_run_produces_a_complete_plan() {
        let atpg = MixedSignalAtpg::new(figure4());
        let plan = atpg.run().unwrap();
        // All 8 passive elements of the band-pass filter are analyzed.
        assert_eq!(plan.analog.len(), 8);
        // Most elements are testable through the mixed circuit.
        assert!(
            plan.analog_coverage() > 0.5,
            "coverage {}",
            plan.analog_coverage()
        );
        // The conversion block of this small example has 2 ladder+1... the
        // flash block has 3 resistors; coverage entries exist for each.
        assert_eq!(plan.conversion.len(), 3);
        assert!(plan.digital.constrained);
        assert!(!plan.digital_unconstrained.constrained);
        assert!(!plan.analog_deviations.rows().is_empty());
    }

    #[test]
    fn shared_pool_run_matches_serial_and_accounts_all_stages() {
        let reference = MixedSignalAtpg::new(figure4()).run().unwrap();
        let pool = WorkerPool::new(ExecPolicy::Threads(2));
        let plan = MixedSignalAtpg::new(figure4())
            .with_options(AtpgOptions {
                exec: ExecPolicy::Threads(2),
                ..AtpgOptions::default()
            })
            .run_on(&pool)
            .unwrap();
        assert_eq!(plan.digital.vectors, reference.digital.vectors);
        assert_eq!(plan.digital.untestable, reference.digital.untestable);
        assert_eq!(plan.analog, reference.analog);
        assert_eq!(
            plan.analog_deviations.rows(),
            reference.analog_deviations.rows()
        );
        assert_eq!(plan.conversion, reference.conversion);
        let stats = pool.stats();
        assert!(stats.spawns > 0, "the threaded stages spawned worker sets");
        assert!(stats.barriers > 0 && stats.jobs > 0);
    }

    #[test]
    fn options_builder_is_respected() {
        let opts = AtpgOptions {
            parameter_tolerance: 0.1,
            worst_case: true,
            ..AtpgOptions::default()
        };
        let atpg = MixedSignalAtpg::new(figure4()).with_options(opts);
        assert_eq!(atpg.options.parameter_tolerance, 0.1);
        assert!(atpg.options.worst_case);
        assert_eq!(atpg.circuit().name(), "figure4");
        assert_eq!(AtpgOptions::default().parameter_tolerance, 0.05);
    }
}
