//! End-to-end test generation for analog faults in a mixed circuit:
//! activation through the conversion block, then propagation through the
//! digital block (§2.3 of the paper).

use std::collections::HashMap;

use msatpg_analog::fault::AnalogFault;
use msatpg_analog::params::ParameterSpec;
use msatpg_analog::signal::{output_amplitude, SineStimulus};
use msatpg_analog::ElementId;
use msatpg_digital::logic::Logic;
use msatpg_digital::netlist::SignalId;
use msatpg_exec::WorkerPool;

use crate::activation::{select_stimulus, DeviationSign};
use crate::mixed_circuit::MixedCircuit;
use crate::propagation::PropagationEngine;
use crate::CoreError;

/// One element-test request for the batched entry point
/// [`AnalogAtpg::test_elements_on`]: the element, the injected deviation and
/// the parameter ranking to try (most sensitive first).
#[derive(Clone, Debug)]
pub struct ElementTestRequest {
    /// The analog element under test.
    pub element: ElementId,
    /// Signed relative deviation to inject (fraction).
    pub deviation: f64,
    /// Parameters to try, in ranking order.
    pub ranking: Vec<ParameterSpec>,
}

/// A complete test for an analog fault: the stimulus, the digital side
/// conditions and where the effect is observed.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalogTestVector {
    /// Sine stimulus applied at the analog primary input.
    pub stimulus: SineStimulus,
    /// Converter output (0-based) that carries the composite value.
    pub comparator: usize,
    /// The composite value on that line (`D` or `D̄`).
    pub composite: Logic,
    /// Values of the other constrained digital inputs under this stimulus
    /// (converter output order, the flipped line included with its
    /// fault-free value).
    pub constrained_code: Vec<bool>,
    /// Required values of the external digital inputs (`None` =
    /// don't-care).
    pub external_assignment: Vec<(SignalId, Option<bool>)>,
    /// Primary output (index) at which the effect is observed.
    pub observed_output: usize,
}

/// Why an analog fault could not be tested through the mixed circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalogTestFailure {
    /// No stimulus flips any conversion-block output for this deviation.
    ActivationFailed,
    /// A comparator flips but the effect cannot reach a primary output under
    /// the constraints.
    PropagationFailed,
}

/// The outcome of testing one analog element deviation.
#[derive(Clone, Debug, PartialEq)]
pub enum AnalogTestOutcome {
    /// A full test exists.
    Tested(AnalogTestVector),
    /// The deviation cannot be tested through the mixed circuit.
    Failed(AnalogTestFailure),
}

impl AnalogTestOutcome {
    /// Returns `true` when a test was found.
    pub fn is_tested(&self) -> bool {
        matches!(self, AnalogTestOutcome::Tested(_))
    }
}

/// One row of the analog test plan: an element, the parameter through which
/// it is tested and the result.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalogTestEntry {
    /// Name of the analog element.
    pub element: String,
    /// Name of the measured parameter.
    pub parameter: String,
    /// Relative deviation injected for the check (fraction).
    pub deviation: f64,
    /// Direction of the deviation.
    pub direction: DeviationSign,
    /// The outcome.
    pub outcome: AnalogTestOutcome,
}

/// The analog-fault test generator for one mixed circuit.
pub struct AnalogAtpg<'a> {
    circuit: &'a MixedCircuit,
    tolerance: f64,
}

impl<'a> AnalogAtpg<'a> {
    /// Creates the generator with the paper's ±5 % parameter tolerance.
    pub fn new(circuit: &'a MixedCircuit) -> Self {
        AnalogAtpg {
            circuit,
            tolerance: 0.05,
        }
    }

    /// Sets the parameter tolerance (fraction).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Attempts to generate a test for a deviation of `deviation` (signed
    /// fraction) on `element`, observed through `parameter`.
    ///
    /// The procedure follows the paper: choose a stimulus per Table 1 for
    /// each conversion-block output in turn, check that the output actually
    /// differs between the fault-free and the faulty circuit, then search for
    /// an external-input assignment that propagates the composite value to a
    /// primary output.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; "no test exists" is reported through
    /// [`AnalogTestOutcome::Failed`], not as an error.
    pub fn test_element_deviation(
        &self,
        element: ElementId,
        deviation: f64,
        parameter: &ParameterSpec,
    ) -> Result<AnalogTestOutcome, CoreError> {
        // The sign of the element deviation does not determine the sign of
        // the parameter deviation (it depends on the sensitivity), so both
        // tolerance bounds are tried, exactly as the paper tests the upper
        // and the lower bound of every parameter.
        let preferred = if deviation >= 0.0 {
            DeviationSign::Above
        } else {
            DeviationSign::Below
        };
        let other = match preferred {
            DeviationSign::Above => DeviationSign::Below,
            DeviationSign::Below => DeviationSign::Above,
        };
        let filter = self.circuit.analog();
        let fault = AnalogFault::deviation(element, deviation);
        let faulty_circuit = fault.apply(filter.circuit());
        let output_node = filter.output_node();
        let mut any_activation = false;

        for (converter_output, line) in self.circuit.connections() {
            let Some(threshold) = self.circuit.converter().threshold(converter_output) else {
                continue;
            };
            for direction in [preferred, other] {
                // Table-1 stimulus selection for this comparator's reference.
                let plan = match select_stimulus(
                    filter,
                    parameter,
                    direction,
                    self.tolerance,
                    threshold,
                ) {
                    Ok(plan) => plan,
                    Err(_) => continue,
                };
                // Numeric activation check: does this comparator really see
                // different values in the fault-free and the faulty circuit?
                let amp_good = output_amplitude(
                    filter.circuit(),
                    filter.input_source(),
                    output_node,
                    &plan.stimulus,
                )
                .map_err(|e| CoreError::Analog(e.to_string()))?;
                let amp_faulty = output_amplitude(
                    &faulty_circuit,
                    filter.input_source(),
                    output_node,
                    &plan.stimulus,
                )
                .map_err(|e| CoreError::Analog(e.to_string()))?;
                let code_good = self.circuit.converter().convert(amp_good);
                let code_faulty = self.circuit.converter().convert(amp_faulty);
                if code_good[converter_output] == code_faulty[converter_output] {
                    continue;
                }
                any_activation = true;
                let composite =
                    Logic::from_pair(code_good[converter_output], code_faulty[converter_output]);
                // Fix the other constrained lines to their fault-free values.
                let mut fixed: HashMap<SignalId, bool> = HashMap::new();
                for (other_output, other_line) in self.circuit.connections() {
                    if other_output != converter_output {
                        fixed.insert(other_line, code_good[other_output]);
                    }
                }
                let engine = PropagationEngine::new(self.circuit.digital());
                if let Some(prop) = engine.find_propagating_assignment(&fixed, line, composite)? {
                    return Ok(AnalogTestOutcome::Tested(AnalogTestVector {
                        stimulus: plan.stimulus,
                        comparator: converter_output,
                        composite,
                        constrained_code: code_good,
                        external_assignment: prop.external_assignment,
                        observed_output: prop.observed_output,
                    }));
                }
            }
        }
        Ok(AnalogTestOutcome::Failed(if any_activation {
            AnalogTestFailure::PropagationFailed
        } else {
            AnalogTestFailure::ActivationFailed
        }))
    }

    /// Tests an element deviation through every parameter of the analog
    /// block (most-sensitive first according to `ranking`), returning the
    /// first parameter that yields a test, or the last failure.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn test_element(
        &self,
        element: ElementId,
        deviation: f64,
        ranking: &[ParameterSpec],
    ) -> Result<AnalogTestEntry, CoreError> {
        let element_name = self
            .circuit
            .analog()
            .circuit()
            .element(element)
            .name
            .clone();
        let direction = if deviation >= 0.0 {
            DeviationSign::Above
        } else {
            DeviationSign::Below
        };
        let mut last_failure = AnalogTestOutcome::Failed(AnalogTestFailure::ActivationFailed);
        for parameter in ranking {
            let outcome = self.test_element_deviation(element, deviation, parameter)?;
            if outcome.is_tested() {
                return Ok(AnalogTestEntry {
                    element: element_name,
                    parameter: parameter.name.clone(),
                    deviation: deviation.abs(),
                    direction,
                    outcome,
                });
            }
            last_failure = outcome;
        }
        Ok(AnalogTestEntry {
            element: element_name,
            parameter: ranking
                .last()
                .map(|p| p.name.clone())
                .unwrap_or_else(|| "-".to_owned()),
            deviation: deviation.abs(),
            direction,
            outcome: last_failure,
        })
    }

    /// Tests a batch of element deviations on a worker pool, one element per
    /// work unit (elements are independent:
    /// [`AnalogAtpg::test_element_deviation`] builds its own faulty circuit
    /// and propagation engine per attempt).  Entries — and the first error,
    /// if any — come back **in request order**, so the result is
    /// byte-identical to calling [`AnalogAtpg::test_element`] in a serial
    /// loop under any [`msatpg_exec::ExecPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error in request order.
    pub fn test_elements_on(
        &self,
        pool: &WorkerPool,
        requests: &[ElementTestRequest],
    ) -> Result<Vec<AnalogTestEntry>, CoreError> {
        pool.run_chunks(
            requests,
            1,
            || (),
            |(), _ci, _offset, chunk| {
                let request = &chunk[0];
                self.test_element(request.element, request.deviation, &request.ranking)
            },
        )
        .into_iter()
        .collect()
    }

    /// The Table-5 study: for each conversion-block output, can a composite
    /// value on that line (other lines held at the adjacent thermometer
    /// code) be propagated to a primary output?  Returns, for each output,
    /// `(propagates_d, propagates_dbar)` — `D` corresponds to an amplitude
    /// deviation below the reference (`deviation less than x%` in the
    /// paper), `D̄` to one above it.
    ///
    /// # Errors
    ///
    /// Propagates propagation-engine errors.
    pub fn comparator_propagation_study(&self) -> Result<Vec<(bool, bool)>, CoreError> {
        let connections = self.circuit.connections();
        let engine = PropagationEngine::new(self.circuit.digital());
        (0..connections.len())
            .map(|idx| self.connection_study(&engine, &connections, idx))
            .collect()
    }

    /// [`AnalogAtpg::comparator_propagation_study`] on a worker pool:
    /// comparators are independent (the propagation engine builds a fresh
    /// OBDD per query), so each connection is one work unit; results merge
    /// in connection order, byte-identical to the serial study.
    ///
    /// # Errors
    ///
    /// Propagates the first propagation-engine error in connection order.
    pub fn comparator_propagation_study_on(
        &self,
        pool: &WorkerPool,
    ) -> Result<Vec<(bool, bool)>, CoreError> {
        let connections = self.circuit.connections();
        pool.run_chunks(
            &connections,
            1,
            || PropagationEngine::new(self.circuit.digital()),
            |engine, _ci, offset, _chunk| self.connection_study(engine, &connections, offset),
        )
        .into_iter()
        .collect()
    }

    /// One row of the Table-5 study: can comparator `idx`'s flip be
    /// propagated, with the other lines held at the adjacent thermometer
    /// code?
    fn connection_study(
        &self,
        engine: &PropagationEngine<'_>,
        connections: &[(usize, SignalId)],
        idx: usize,
    ) -> Result<(bool, bool), CoreError> {
        let line = connections[idx].1;
        // Fault-free code: thermometer with `idx + 1` ones (the input
        // amplitude sits just above this comparator's reference).
        let mut fixed: HashMap<SignalId, bool> = HashMap::new();
        for (j, &(_, other_line)) in connections.iter().enumerate() {
            if j == idx {
                continue;
            }
            // Lines below the flipped comparator are 1, above are 0, for
            // both composite polarities.
            fixed.insert(other_line, j < idx);
        }
        let d_ok = engine
            .find_propagating_assignment(&fixed, line, Logic::D)?
            .is_some();
        let dbar_ok = engine
            .find_propagating_assignment(&fixed, line, Logic::Dbar)?
            .is_some();
        Ok((d_ok, dbar_ok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_analog::filters;
    use msatpg_conversion::FlashAdc;
    use msatpg_digital::circuits;

    use crate::mixed_circuit::ConverterBlock;

    /// The Figure-4 mixed circuit: band-pass filter, 2-comparator conversion
    /// block, Figure-3 digital circuit.
    fn figure4() -> MixedCircuit {
        let analog = filters::second_order_band_pass();
        // Thresholds inside the reachable output range of the filter
        // (center gain ≈ 3.2, so a 1 V input can reach ≈ 3.2 V).
        let adc = FlashAdc::uniform(2, 3.0).unwrap();
        let digital = circuits::figure3_circuit();
        let mut mixed = MixedCircuit::new("figure4", analog, ConverterBlock::Flash(adc), digital);
        mixed.connect_in_order(&["l0", "l2"]).unwrap();
        mixed
    }

    #[test]
    fn rd_deviation_is_testable_through_the_mixed_circuit() {
        // The paper's walk-through: a deviation on Rd changes the
        // center-frequency gain A1; a sine at the center frequency with a
        // suitable amplitude flips a comparator, and setting l1 (or l1 and
        // l4) propagates the effect to the outputs.
        let mixed = figure4();
        let atpg = AnalogAtpg::new(&mixed);
        let rd = mixed.analog().circuit().find_element("Rd").unwrap();
        let a1 = mixed.analog().parameters()[0].clone(); // A1 = MaxGain
        let outcome = atpg
            .test_element_deviation(rd, -0.15, &a1)
            .expect("simulation succeeds");
        match outcome {
            AnalogTestOutcome::Tested(vector) => {
                assert!(vector.stimulus.amplitude > 0.0);
                assert!(vector.composite.is_fault_effect());
                assert!(vector.constrained_code.len() == 2);
                assert!(vector.observed_output < 2);
            }
            other => panic!("expected a test, got {other:?}"),
        }
    }

    #[test]
    fn tiny_deviation_cannot_be_activated() {
        // A deviation far below the detectable threshold does not flip any
        // comparator: activation fails.
        let mixed = figure4();
        let atpg = AnalogAtpg::new(&mixed);
        let rd = mixed.analog().circuit().find_element("Rd").unwrap();
        let a1 = mixed.analog().parameters()[0].clone();
        let outcome = atpg.test_element_deviation(rd, 0.001, &a1).unwrap();
        assert_eq!(
            outcome,
            AnalogTestOutcome::Failed(AnalogTestFailure::ActivationFailed)
        );
        assert!(!outcome.is_tested());
    }

    #[test]
    fn test_element_tries_parameters_in_order() {
        let mixed = figure4();
        let atpg = AnalogAtpg::new(&mixed);
        let rg = mixed.analog().circuit().find_element("Rg").unwrap();
        let params = mixed.analog().parameters().to_vec();
        let entry = atpg.test_element(rg, -0.2, &params).unwrap();
        assert_eq!(entry.element, "Rg");
        assert!(entry.deviation > 0.19);
        assert_eq!(entry.direction, DeviationSign::Below);
        assert!(entry.outcome.is_tested(), "Rg deviation of 20% is testable");
    }

    #[test]
    fn comparator_propagation_study_covers_all_connections() {
        let mixed = figure4();
        let atpg = AnalogAtpg::new(&mixed);
        let study = atpg.comparator_propagation_study().unwrap();
        assert_eq!(study.len(), 2);
        // In the Figure-3 circuit every constrained line reaches an output
        // for at least one polarity.
        assert!(study.iter().any(|&(d, dbar)| d || dbar));
    }
}
