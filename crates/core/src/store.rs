//! Crash-consistent persistence for the durable ATPG artifacts.
//!
//! Three artifact kinds are stored — netlists (`.bench` text), digital
//! [`AtpgReport`]s, and BDDs (the dddmp-style codec of
//! [`msatpg_bdd::store`]) — plus campaign [`Checkpoint`]s, the snapshots
//! behind [`DigitalAtpg::with_checkpoint`](crate::DigitalAtpg::with_checkpoint)
//! / [`DigitalAtpg::with_resume`](crate::DigitalAtpg::with_resume).
//!
//! # Envelope
//!
//! Every file is a one-line header followed by a UTF-8 text payload:
//!
//! ```text
//! msatpg-store 1 <kind> <payload-bytes> <fnv1a64-checksum>
//! <payload...>
//! ```
//!
//! The header carries the format version (see [`FORMAT_VERSION`]), the
//! artifact kind (`netlist` / `report` / `bdd` / `checkpoint`) and an
//! FNV-1a 64 checksum of the payload.  Readers verify all of it **before**
//! touching the payload, so any malformed byte — a short file, a flipped
//! bit, a future version, the wrong artifact kind — surfaces as a
//! structured [`StoreError`], never a panic and never a silently wrong
//! value.
//!
//! # Atomic writes
//!
//! Writers never touch the destination in place: the bytes go to a
//! sibling `<path>.tmp`, are `fsync`ed, and are renamed over the
//! destination (plus a best-effort directory sync).  A crash at any point
//! leaves either the old file or the new file, both intact — the property
//! the [`ChaosEvent::Crash`] / [`ChaosEvent::TornWrite`] /
//! [`ChaosEvent::BitFlip`] injection sites exist to demonstrate.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use msatpg_bdd::store as bdd_store;
use msatpg_bdd::{Bdd, BddManager};
use msatpg_digital::bench_format;
use msatpg_digital::fault::StuckAtFault;
use msatpg_digital::netlist::Netlist;
use msatpg_exec::{ChaosEvent, ChaosInjector};

use crate::digital_atpg::{AbortReason, AtpgReport, TestOutcome, TestVector};

/// Version stamped into every envelope header; bump on incompatible layout
/// changes.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "msatpg-store";

/// A failure while persisting or loading a durable artifact.
///
/// All variants carry the offending path.  [`StoreError::source`] exposes
/// the underlying cause where one exists (an I/O error, a payload codec
/// error such as [`msatpg_bdd::BddStoreError`] or a `.bench` parse error).
#[derive(Debug)]
pub enum StoreError {
    /// The operating system refused the read or write.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file is a store file, but from an incompatible format version.
    VersionMismatch {
        /// File the operation targeted.
        path: PathBuf,
        /// The version this build reads and writes.
        expected: u32,
        /// The version the file declares.
        found: String,
    },
    /// The file ends before the declared payload does (torn write, crash
    /// mid-copy, manual truncation).
    Truncated {
        /// File the operation targeted.
        path: PathBuf,
        /// What was missing.
        reason: String,
    },
    /// The file is present and complete but its content is invalid — bad
    /// magic, checksum mismatch, malformed payload, wrong artifact kind.
    Corrupt {
        /// File the operation targeted.
        path: PathBuf,
        /// What was violated.
        reason: String,
        /// The payload codec's own error, when one exists.
        source: Option<Box<dyn Error + Send + Sync>>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            StoreError::VersionMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: store format version {found} (this build reads version {expected})",
                path.display()
            ),
            StoreError::Truncated { path, reason } => {
                write!(f, "{} is truncated: {reason}", path.display())
            }
            StoreError::Corrupt { path, reason, .. } => {
                write!(f, "{} is corrupt: {reason}", path.display())
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt {
                source: Some(inner),
                ..
            } => Some(inner.as_ref()),
            _ => None,
        }
    }
}

impl From<StoreError> for crate::CoreError {
    fn from(e: StoreError) -> Self {
        crate::CoreError::Store {
            reason: e.to_string(),
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_owned(),
        source,
    }
}

fn truncated(path: &Path, reason: impl Into<String>) -> StoreError {
    StoreError::Truncated {
        path: path.to_owned(),
        reason: reason.into(),
    }
}

fn corrupt(path: &Path, reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        path: path.to_owned(),
        reason: reason.into(),
        source: None,
    }
}

/// FNV-1a 64 over the payload bytes — cheap, dependency-free, and plenty to
/// catch torn writes and flipped bits (this is corruption *detection*, not
/// an integrity MAC).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds the full on-disk bytes for a payload: header line + payload.
fn envelope(kind: &str, payload: &str) -> Vec<u8> {
    let mut out = format!(
        "{MAGIC} {FORMAT_VERSION} {kind} {} {:016x}\n",
        payload.len(),
        fnv1a64(payload.as_bytes())
    )
    .into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Reads and fully validates an envelope, returning the payload text.
fn read_envelope(path: &Path, expected_kind: &str) -> Result<String, StoreError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| truncated(path, "no envelope header line"))?;
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| corrupt(path, "envelope header is not UTF-8"))?;
    let mut fields = header.split(' ');
    let (magic, version, kind, len, checksum) = match (
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
    ) {
        (Some(m), Some(v), Some(k), Some(l), Some(c)) => (m, v, k, l, c),
        _ => {
            return Err(corrupt(
                path,
                format!("malformed envelope header `{header}`"),
            ))
        }
    };
    if fields.next().is_some() {
        return Err(corrupt(path, "trailing fields in envelope header"));
    }
    if magic != MAGIC {
        return Err(corrupt(path, "not a msatpg store file (bad magic)"));
    }
    match version.parse::<u32>() {
        Ok(v) if v == FORMAT_VERSION => {}
        _ => {
            return Err(StoreError::VersionMismatch {
                path: path.to_owned(),
                expected: FORMAT_VERSION,
                found: version.to_owned(),
            })
        }
    }
    if kind != expected_kind {
        return Err(corrupt(
            path,
            format!("artifact kind `{kind}` (expected `{expected_kind}`)"),
        ));
    }
    let len: usize = len
        .parse()
        .map_err(|_| corrupt(path, format!("malformed payload length `{len}`")))?;
    let declared = u64::from_str_radix(checksum, 16)
        .map_err(|_| corrupt(path, format!("malformed checksum `{checksum}`")))?;
    let payload = &bytes[header_end + 1..];
    if payload.len() < len {
        return Err(truncated(
            path,
            format!("payload is {} of {len} declared bytes", payload.len()),
        ));
    }
    if payload.len() > len {
        return Err(corrupt(
            path,
            format!("{} trailing bytes after the payload", payload.len() - len),
        ));
    }
    let actual = fnv1a64(payload);
    if actual != declared {
        return Err(corrupt(
            path,
            format!("checksum mismatch (stored {declared:016x}, computed {actual:016x})"),
        ));
    }
    String::from_utf8(payload.to_vec()).map_err(|_| corrupt(path, "payload is not UTF-8"))
}

/// The sibling temporary path used by the atomic writer.
fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

fn write_synced(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut file = fs::File::create(path).map_err(|e| io_err(path, e))?;
    file.write_all(bytes).map_err(|e| io_err(path, e))?;
    file.sync_all().map_err(|e| io_err(path, e))?;
    Ok(())
}

/// Crash-consistent write: temp sibling, `fsync`, atomic rename, then a
/// best-effort sync of the containing directory (ignored where directories
/// cannot be opened for syncing).
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = tmp_path(path);
    write_synced(&tmp, bytes)?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if let Some(dir) = path.parent() {
        if let Ok(handle) = fs::File::open(dir) {
            let _ = handle.sync_all();
        }
    }
    Ok(())
}

/// [`atomic_write`] with the store-class chaos sites applied first.
///
/// * [`ChaosEvent::Crash`] — writes a partial temp file and returns without
///   renaming: the destination keeps its previous (intact) content;
/// * [`ChaosEvent::TornWrite`] — a strict prefix of the bytes reaches the
///   destination directly, simulating a non-atomic overwrite cut short;
/// * [`ChaosEvent::BitFlip`] — one payload bit is inverted, then the write
///   proceeds normally (the checksum catches it at load time).
///
/// All three leave a state `read_envelope` reports as a structured error
/// (or, for `Crash`, the previous valid file), which is exactly what the
/// recovery tests assert.
pub(crate) fn atomic_write_chaotic(
    path: &Path,
    bytes: &[u8],
    chaos: Option<(&ChaosInjector, u64)>,
) -> Result<(), StoreError> {
    if let Some((injector, site)) = chaos {
        match injector.fires_store(site) {
            Some(ChaosEvent::Crash) => {
                let keep = bytes.len() / 2;
                let tmp = tmp_path(path);
                write_synced(&tmp, bytes.get(..keep).unwrap_or(bytes))?;
                return Ok(());
            }
            Some(ChaosEvent::TornWrite) => {
                let keep = injector.store_draw(site, bytes.len() as u64) as usize;
                return write_synced(path, bytes.get(..keep).unwrap_or(bytes));
            }
            Some(ChaosEvent::BitFlip) => {
                let mut corrupted = bytes.to_vec();
                let payload_start = corrupted
                    .iter()
                    .position(|&b| b == b'\n')
                    .map(|p| p + 1)
                    .unwrap_or(0);
                let payload_bits = (corrupted.len() - payload_start) as u64 * 8;
                let draw = injector.store_draw(site, payload_bits) as usize;
                if let Some(byte) = corrupted.get_mut(payload_start + draw / 8) {
                    *byte ^= 1 << (draw % 8);
                }
                return atomic_write(path, &corrupted);
            }
            _ => {}
        }
    }
    atomic_write(path, bytes)
}

// ---------------------------------------------------------------------------
// Netlists
// ---------------------------------------------------------------------------

/// Persists a netlist (the `.bench` text plus its name) atomically.
pub fn save_netlist(path: &Path, netlist: &Netlist) -> Result<(), StoreError> {
    let mut payload = format!("name {}\n", netlist.name().replace(['\n', '\r'], " "));
    payload.push_str(&bench_format::write(netlist));
    atomic_write(path, &envelope("netlist", &payload))
}

/// Loads a netlist saved by [`save_netlist`].
///
/// Gates are emitted in dependency order, so reloading reproduces the
/// original signal numbering whenever the source netlist declared its
/// inputs first (every generator in this workspace does).
pub fn load_netlist(path: &Path) -> Result<Netlist, StoreError> {
    let payload = read_envelope(path, "netlist")?;
    let (first, rest) = payload
        .split_once('\n')
        .ok_or_else(|| corrupt(path, "missing netlist name line"))?;
    let name = first
        .strip_prefix("name ")
        .or_else(|| (first == "name").then_some(""))
        .ok_or_else(|| corrupt(path, format!("expected `name <circuit>`, got `{first}`")))?;
    bench_format::parse(name, rest).map_err(|e| StoreError::Corrupt {
        path: path.to_owned(),
        reason: format!("netlist payload rejected: {e}"),
        source: Some(Box::new(e)),
    })
}

// ---------------------------------------------------------------------------
// BDDs
// ---------------------------------------------------------------------------

/// Persists one BDD (with the manager's variable order) atomically, using
/// the dddmp-style codec of [`msatpg_bdd::store`].
pub fn save_bdd(path: &Path, manager: &BddManager, f: Bdd, name: &str) -> Result<(), StoreError> {
    let payload = bdd_store::export_bdd(manager, f, name);
    atomic_write(path, &envelope("bdd", &payload))
}

/// Loads a BDD saved by [`save_bdd`] into `manager`, returning the handle
/// and the stored name (see [`msatpg_bdd::store::import_bdd`] for the
/// variable-order contract).
pub fn load_bdd(path: &Path, manager: &mut BddManager) -> Result<(Bdd, String), StoreError> {
    let payload = read_envelope(path, "bdd")?;
    bdd_store::import_bdd(manager, &payload).map_err(|e| StoreError::Corrupt {
        path: path.to_owned(),
        reason: format!("BDD payload rejected: {e}"),
        source: Some(Box::new(e)),
    })
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

fn pattern_of(assignment: &[Option<bool>]) -> String {
    assignment
        .iter()
        .map(|v| match v {
            Some(true) => '1',
            Some(false) => '0',
            None => 'X',
        })
        .collect()
}

fn assignment_of(pattern: &str, width: usize) -> Result<Vec<Option<bool>>, String> {
    let assignment: Vec<Option<bool>> = pattern
        .chars()
        .map(|c| match c {
            '1' => Ok(Some(true)),
            '0' => Ok(Some(false)),
            'X' => Ok(None),
            other => Err(format!("invalid pattern character `{other}`")),
        })
        .collect::<Result<_, _>>()?;
    if assignment.len() != width {
        return Err(format!(
            "pattern is {} bits wide, circuit has {width} primary inputs",
            assignment.len()
        ));
    }
    Ok(assignment)
}

fn abort_code(reason: AbortReason) -> char {
    match reason {
        AbortReason::Budget => 'b',
        AbortReason::Deadline => 'd',
        AbortReason::Panic => 'p',
    }
}

fn abort_of(code: &str) -> Result<AbortReason, String> {
    match code {
        "b" => Ok(AbortReason::Budget),
        "d" => Ok(AbortReason::Deadline),
        "p" => Ok(AbortReason::Panic),
        other => Err(format!("unknown abort reason `{other}`")),
    }
}

/// Renders one fault as `<stuck> <signal name>` (name last: it may contain
/// spaces).
fn fault_fields(netlist: &Netlist, fault: StuckAtFault) -> String {
    format!(
        "{} {}",
        u8::from(fault.stuck_at),
        netlist.signal_name(fault.signal)
    )
}

fn parse_stuck(token: &str) -> Result<bool, String> {
    match token {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("invalid stuck-at value `{other}`")),
    }
}

fn resolve_fault(netlist: &Netlist, stuck: &str, name: &str) -> Result<StuckAtFault, String> {
    let stuck_at = parse_stuck(stuck)?;
    let signal = netlist
        .find_signal(name)
        .ok_or_else(|| format!("unknown signal `{name}`"))?;
    Ok(StuckAtFault { signal, stuck_at })
}

/// Persists a digital [`AtpgReport`] atomically.  Faults and vectors are
/// stored by signal *name*, so the report can be reloaded against any
/// equivalently-named netlist (e.g. one reloaded via [`load_netlist`]).
pub fn save_report(path: &Path, netlist: &Netlist, report: &AtpgReport) -> Result<(), StoreError> {
    atomic_write(path, &envelope("report", &report_payload(netlist, report)))
}

fn report_payload(netlist: &Netlist, report: &AtpgReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "circuit {}\n",
        report.circuit.replace(['\n', '\r'], " ")
    ));
    out.push_str(&format!("total_faults {}\n", report.total_faults));
    out.push_str(&format!("detected {}\n", report.detected));
    out.push_str(&format!("constrained {}\n", u8::from(report.constrained)));
    out.push_str(&format!("cpu_ns {}\n", report.cpu.as_nanos()));
    out.push_str(&format!("untestable {}\n", report.untestable.len()));
    for &fault in &report.untestable {
        out.push_str(&format!("u {}\n", fault_fields(netlist, fault)));
    }
    out.push_str(&format!("degraded {}\n", report.degraded.len()));
    for &fault in &report.degraded {
        out.push_str(&format!("g {}\n", fault_fields(netlist, fault)));
    }
    out.push_str(&format!("aborted {}\n", report.aborted.len()));
    for &(fault, reason) in &report.aborted {
        out.push_str(&format!(
            "a {} {}\n",
            abort_code(reason),
            fault_fields(netlist, fault)
        ));
    }
    out.push_str(&format!("vectors {}\n", report.vectors.len()));
    for vector in &report.vectors {
        out.push_str(&format!(
            "v {} {} {} {}\n",
            u8::from(vector.fault.stuck_at),
            vector.observed_output,
            pattern_of(&vector.assignment),
            netlist.signal_name(vector.fault.signal)
        ));
    }
    out
}

/// A line-oriented payload reader shared by the report and checkpoint
/// parsers: every extraction returns a `String` reason on failure, which the
/// callers wrap into [`StoreError::Corrupt`] with the file path attached.
struct LineReader<'a> {
    lines: std::str::Lines<'a>,
    lineno: usize,
}

impl<'a> LineReader<'a> {
    fn new(payload: &'a str) -> Self {
        LineReader {
            lines: payload.lines(),
            lineno: 0,
        }
    }

    fn next_line(&mut self) -> Result<&'a str, String> {
        self.lineno += 1;
        self.lines
            .next()
            .ok_or_else(|| format!("payload ends early (expected line {})", self.lineno))
    }

    /// Reads a `<keyword> <rest>` line, returning the rest.
    fn keyword(&mut self, keyword: &str) -> Result<&'a str, String> {
        let line = self.next_line()?;
        match line.split_once(' ') {
            Some((k, rest)) if k == keyword => Ok(rest),
            _ if line == keyword => Ok(""),
            _ => Err(format!("expected `{keyword} ...`, got `{line}`")),
        }
    }

    fn count(&mut self, keyword: &str) -> Result<usize, String> {
        let value = self.keyword(keyword)?;
        value
            .parse()
            .map_err(|_| format!("malformed `{keyword}` count `{value}`"))
    }

    fn done(mut self) -> Result<(), String> {
        match self.lines.next() {
            None => Ok(()),
            Some(extra) => Err(format!("trailing content `{extra}`")),
        }
    }
}

/// Loads a report saved by [`save_report`], resolving signal names against
/// `netlist`.
pub fn load_report(path: &Path, netlist: &Netlist) -> Result<AtpgReport, StoreError> {
    let payload = read_envelope(path, "report")?;
    parse_report(&payload, netlist).map_err(|reason| corrupt(path, reason))
}

fn parse_report(payload: &str, netlist: &Netlist) -> Result<AtpgReport, String> {
    let width = netlist.primary_inputs().len();
    let outputs = netlist.primary_outputs().len();
    let mut reader = LineReader::new(payload);
    let circuit = reader.keyword("circuit")?.to_owned();
    let total_faults = reader.count("total_faults")?;
    let detected = reader.count("detected")?;
    let constrained = match reader.keyword("constrained")? {
        "0" => false,
        "1" => true,
        other => return Err(format!("invalid constrained flag `{other}`")),
    };
    let cpu_raw = reader.keyword("cpu_ns")?;
    let cpu_ns: u128 = cpu_raw
        .parse()
        .map_err(|_| format!("malformed cpu_ns `{cpu_raw}`"))?;
    let cpu = Duration::new(
        (cpu_ns / 1_000_000_000) as u64,
        (cpu_ns % 1_000_000_000) as u32,
    );

    let untestable_count = reader.count("untestable")?;
    let mut untestable = Vec::with_capacity(untestable_count);
    for _ in 0..untestable_count {
        let rest = reader.keyword("u")?;
        let (stuck, name) = rest
            .split_once(' ')
            .ok_or_else(|| format!("malformed untestable record `u {rest}`"))?;
        untestable.push(resolve_fault(netlist, stuck, name)?);
    }
    let degraded_count = reader.count("degraded")?;
    let mut degraded = Vec::with_capacity(degraded_count);
    for _ in 0..degraded_count {
        let rest = reader.keyword("g")?;
        let (stuck, name) = rest
            .split_once(' ')
            .ok_or_else(|| format!("malformed degraded record `g {rest}`"))?;
        degraded.push(resolve_fault(netlist, stuck, name)?);
    }
    let aborted_count = reader.count("aborted")?;
    let mut aborted = Vec::with_capacity(aborted_count);
    for _ in 0..aborted_count {
        let rest = reader.keyword("a")?;
        let mut fields = rest.splitn(3, ' ');
        match (fields.next(), fields.next(), fields.next()) {
            (Some(code), Some(stuck), Some(name)) => {
                let reason = abort_of(code)?;
                aborted.push((resolve_fault(netlist, stuck, name)?, reason));
            }
            _ => return Err(format!("malformed aborted record `a {rest}`")),
        }
    }
    let vector_count = reader.count("vectors")?;
    let mut vectors = Vec::with_capacity(vector_count);
    for _ in 0..vector_count {
        let rest = reader.keyword("v")?;
        let mut fields = rest.splitn(4, ' ');
        match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(stuck), Some(observed), Some(pattern), Some(name)) => {
                let fault = resolve_fault(netlist, stuck, name)?;
                let observed_output: usize = observed
                    .parse()
                    .map_err(|_| format!("malformed observed-output index `{observed}`"))?;
                if observed_output >= outputs {
                    return Err(format!(
                        "observed-output index {observed_output} outside 0..{outputs}"
                    ));
                }
                vectors.push(TestVector {
                    assignment: assignment_of(pattern, width)?,
                    fault,
                    observed_output,
                });
            }
            _ => return Err(format!("malformed vector record `v {rest}`")),
        }
    }
    reader.done()?;
    Ok(AtpgReport {
        circuit,
        total_faults,
        detected,
        untestable,
        degraded,
        aborted,
        vectors,
        cpu,
        constrained,
    })
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// When a checkpoint-armed campaign flushes its journal to disk.
///
/// Regardless of the knobs below, an armed campaign always writes one final
/// checkpoint when it completes, so a finished run can always be reloaded
/// (e.g. to re-attempt its aborted faults with a bigger budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Flush after every `every` decided fault targets (`0` disables the
    /// periodic flushes).
    pub every: usize,
    /// Flush immediately when a fault is abandoned over a budget or an
    /// isolated panic.
    pub on_abort: bool,
    /// Flush when the governing cancel token first fires (deadline or step
    /// quota) — the moment an interrupted campaign starts producing
    /// `Aborted(Deadline)` tails.
    pub on_cancel: bool,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every: 64,
            on_abort: true,
            on_cancel: true,
        }
    }
}

/// Digest of a fault list, stored in every checkpoint so a snapshot can
/// never be replayed against a different fault universe.
pub fn faults_digest(faults: &[StuckAtFault]) -> u64 {
    let mut bytes = Vec::with_capacity(faults.len() * 9);
    for fault in faults {
        bytes.extend_from_slice(&(fault.signal.index() as u64).to_le_bytes());
        bytes.push(u8::from(fault.stuck_at));
    }
    fnv1a64(&bytes)
}

/// A campaign snapshot: the per-fault outcomes of a contiguous prefix of
/// the fault list, in fault-list order.
///
/// Outcomes are journaled at the governed gc+reset boundaries, where each
/// one is a pure function of its fault — which is why resuming from a
/// checkpoint reproduces the uninterrupted report byte-for-byte (see
/// [`DigitalAtpg::with_resume`](crate::DigitalAtpg::with_resume)).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Circuit the campaign ran on.
    pub circuit: String,
    /// Length of the full fault list.
    pub total_faults: usize,
    /// [`faults_digest`] of the full fault list.
    pub faults_digest: u64,
    /// Outcomes of fault-list entries `0..outcomes.len()`.
    pub outcomes: Vec<TestOutcome>,
}

/// Persists a checkpoint atomically.
pub fn save_checkpoint(path: &Path, checkpoint: &Checkpoint) -> Result<(), StoreError> {
    save_checkpoint_chaotic(path, checkpoint, None)
}

/// [`save_checkpoint`] with a chaos site attached (the engine passes its
/// injector and the index of the outcome that triggered the flush).
pub(crate) fn save_checkpoint_chaotic(
    path: &Path,
    checkpoint: &Checkpoint,
    chaos: Option<(&ChaosInjector, u64)>,
) -> Result<(), StoreError> {
    atomic_write_chaotic(
        path,
        &envelope("checkpoint", &checkpoint_payload(checkpoint)),
        chaos,
    )
}

fn checkpoint_payload(checkpoint: &Checkpoint) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "circuit {}\n",
        checkpoint.circuit.replace(['\n', '\r'], " ")
    ));
    out.push_str(&format!("total_faults {}\n", checkpoint.total_faults));
    out.push_str(&format!(
        "faults_digest {:016x}\n",
        checkpoint.faults_digest
    ));
    out.push_str(&format!("outcomes {}\n", checkpoint.outcomes.len()));
    for outcome in &checkpoint.outcomes {
        match outcome {
            TestOutcome::Detected(v) => out.push_str(&format!(
                "d {} {}\n",
                v.observed_output,
                pattern_of(&v.assignment)
            )),
            TestOutcome::PreviouslyDetected => out.push_str("p\n"),
            TestOutcome::Untestable => out.push_str("x\n"),
            TestOutcome::Degraded(v) => out.push_str(&format!(
                "g {} {}\n",
                v.observed_output,
                pattern_of(&v.assignment)
            )),
            TestOutcome::Aborted(reason) => out.push_str(&format!("a {}\n", abort_code(*reason))),
        }
    }
    out
}

/// Loads and validates a checkpoint against the campaign it will resume.
///
/// The snapshot must name the same circuit, declare the same fault-list
/// length and digest, and every stored vector must fit the circuit's
/// primary-input/-output counts; each outcome's fault is re-bound to the
/// corresponding `faults` entry.  Any disagreement is
/// [`StoreError::Corrupt`].
pub fn load_checkpoint(
    path: &Path,
    netlist: &Netlist,
    faults: &[StuckAtFault],
) -> Result<Checkpoint, StoreError> {
    let payload = read_envelope(path, "checkpoint")?;
    parse_checkpoint(&payload, netlist, faults).map_err(|reason| corrupt(path, reason))
}

fn parse_checkpoint(
    payload: &str,
    netlist: &Netlist,
    faults: &[StuckAtFault],
) -> Result<Checkpoint, String> {
    let width = netlist.primary_inputs().len();
    let outputs = netlist.primary_outputs().len();
    let mut reader = LineReader::new(payload);
    let circuit = reader.keyword("circuit")?.to_owned();
    if circuit != netlist.name() {
        return Err(format!(
            "checkpoint is for circuit `{circuit}`, campaign runs on `{}`",
            netlist.name()
        ));
    }
    let total_faults = reader.count("total_faults")?;
    if total_faults != faults.len() {
        return Err(format!(
            "checkpoint covers a {total_faults}-fault list, campaign has {}",
            faults.len()
        ));
    }
    let digest_raw = reader.keyword("faults_digest")?;
    let digest = u64::from_str_radix(digest_raw, 16)
        .map_err(|_| format!("malformed faults digest `{digest_raw}`"))?;
    let expected_digest = faults_digest(faults);
    if digest != expected_digest {
        return Err(format!(
            "fault-list digest mismatch (stored {digest:016x}, campaign {expected_digest:016x})"
        ));
    }
    let outcome_count = reader.count("outcomes")?;
    if outcome_count > faults.len() {
        return Err(format!(
            "{outcome_count} outcomes recorded for a {}-fault list",
            faults.len()
        ));
    }
    let mut outcomes = Vec::with_capacity(outcome_count);
    let vector = |rest: &str, index: usize| -> Result<TestVector, String> {
        let (observed, pattern) = rest
            .split_once(' ')
            .ok_or_else(|| format!("malformed vector record `{rest}`"))?;
        let observed_output: usize = observed
            .parse()
            .map_err(|_| format!("malformed observed-output index `{observed}`"))?;
        if observed_output >= outputs {
            return Err(format!(
                "observed-output index {observed_output} outside 0..{outputs}"
            ));
        }
        let fault = *faults
            .get(index)
            .ok_or_else(|| format!("outcome {index} beyond the fault list"))?;
        Ok(TestVector {
            assignment: assignment_of(pattern, width)?,
            fault,
            observed_output,
        })
    };
    for index in 0..outcome_count {
        let line = reader.next_line()?;
        let (code, rest) = match line.split_once(' ') {
            Some((c, r)) => (c, r),
            None => (line, ""),
        };
        let outcome = match code {
            "d" => TestOutcome::Detected(vector(rest, index)?),
            "g" => TestOutcome::Degraded(vector(rest, index)?),
            "p" if rest.is_empty() => TestOutcome::PreviouslyDetected,
            "x" if rest.is_empty() => TestOutcome::Untestable,
            "a" => TestOutcome::Aborted(abort_of(rest)?),
            _ => return Err(format!("malformed outcome record `{line}`")),
        };
        outcomes.push(outcome);
    }
    reader.done()?;
    Ok(Checkpoint {
        circuit,
        total_faults,
        faults_digest: digest,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_digital::circuits;
    use msatpg_digital::fault::FaultList;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test (no timestamps: pid + counter).
    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("msatpg-store-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn netlist_roundtrip_preserves_structure_and_behavior() {
        let dir = scratch("netlist");
        let path = dir.join("adder4.netlist");
        let original = circuits::adder4();
        save_netlist(&path, &original).unwrap();
        let loaded = load_netlist(&path).unwrap();
        assert_eq!(loaded.name(), original.name());
        assert_eq!(
            loaded.primary_inputs().len(),
            original.primary_inputs().len()
        );
        assert_eq!(
            loaded.primary_outputs().len(),
            original.primary_outputs().len()
        );
        assert_eq!(loaded.gate_count(), original.gate_count());
        for i in 0..32u32 {
            let pattern: Vec<bool> = (0..9).map(|b| (i >> (b % 5)) & 1 == 1).collect();
            assert_eq!(
                original.evaluate(&pattern).unwrap(),
                loaded.evaluate(&pattern).unwrap()
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn envelope_rejects_every_corruption_structurally() {
        let dir = scratch("envelope");
        let path = dir.join("x.netlist");
        save_netlist(&path, &circuits::figure3_circuit()).unwrap();
        let good = fs::read(&path).unwrap();

        // Missing file -> Io.
        let missing = load_netlist(&dir.join("nope.netlist")).unwrap_err();
        assert!(matches!(missing, StoreError::Io { .. }), "{missing}");

        // Truncations at every byte length never panic; short payloads are
        // Truncated, a cut inside the header is Truncated/Corrupt.
        for keep in 0..good.len() {
            fs::write(&path, &good[..keep]).unwrap();
            let err = load_netlist(&path).unwrap_err();
            assert!(
                !matches!(err, StoreError::Io { .. }),
                "cut at {keep}: expected a structural error, got {err}"
            );
        }

        // Every single-bit flip is caught.
        for byte in [0, 5, 20, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            assert!(load_netlist(&path).is_err(), "flip at byte {byte}");
        }

        // Wrong version -> VersionMismatch.
        let text = String::from_utf8(good.clone()).unwrap();
        let wrong = text.replacen("msatpg-store 1 ", "msatpg-store 999 ", 1);
        fs::write(&path, wrong).unwrap();
        let err = load_netlist(&path).unwrap_err();
        assert!(
            matches!(
                &err,
                StoreError::VersionMismatch { expected: 1, found, .. } if found == "999"
            ),
            "{err}"
        );

        // Wrong artifact kind -> Corrupt (with the right checksum, even).
        let report_bytes = envelope("report", "not a netlist");
        fs::write(&path, report_bytes).unwrap();
        let err = load_netlist(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");

        // Garbage -> Corrupt, never a panic.
        fs::write(&path, b"complete garbage\nwith lines\n").unwrap();
        assert!(load_netlist(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_payload_chains_its_source() {
        let dir = scratch("source");
        let path = dir.join("x.netlist");
        // Valid envelope around an invalid .bench payload: the DigitalError
        // must be reachable through source().
        let payload = "name broken\nINPUT(a)\nINPUT(a)\n";
        fs::write(&path, envelope("netlist", payload)).unwrap();
        let err = load_netlist(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        let source = err.source().expect("source chained");
        assert!(format!("{source}").contains("duplicate"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bdd_roundtrip_through_the_envelope() {
        let dir = scratch("bdd");
        let path = dir.join("f.bdd");
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let c = m.var("c");
        let ab = m.and(a, b);
        let f = m.xor(ab, c);
        save_bdd(&path, &m, f, "f").unwrap();
        let mut m2 = BddManager::new();
        let (g, name) = load_bdd(&path, &mut m2).unwrap();
        assert_eq!(name, "f");
        assert_eq!(m.sat_count(f), m2.sat_count(g));
        assert_eq!(
            m.cubes(f).collect::<Vec<_>>(),
            m2.cubes(g).collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_roundtrip_and_validation() {
        let dir = scratch("ckpt");
        let path = dir.join("run.ckpt");
        let netlist = circuits::figure3_circuit();
        let faults = FaultList::collapsed(&netlist);
        let width = netlist.primary_inputs().len();
        let outcomes = vec![
            TestOutcome::Detected(TestVector {
                assignment: vec![Some(true); width],
                fault: faults.faults()[0],
                observed_output: 0,
            }),
            TestOutcome::PreviouslyDetected,
            TestOutcome::Untestable,
            TestOutcome::Aborted(AbortReason::Deadline),
        ];
        let checkpoint = Checkpoint {
            circuit: netlist.name().to_owned(),
            total_faults: faults.len(),
            faults_digest: faults_digest(faults.faults()),
            outcomes,
        };
        save_checkpoint(&path, &checkpoint).unwrap();
        let loaded = load_checkpoint(&path, &netlist, faults.faults()).unwrap();
        assert_eq!(loaded, checkpoint);

        // A checkpoint never resumes a different fault universe.
        let other = circuits::adder4();
        let other_faults = FaultList::collapsed(&other);
        let err = load_checkpoint(&path, &other, other_faults.faults()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        let trimmed = &faults.faults()[..faults.len() - 1];
        let err = load_checkpoint(&path, &netlist, trimmed).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_writer_survives_injected_store_failures() {
        let dir = scratch("chaos");
        let path = dir.join("victim.ckpt");
        let netlist = circuits::figure3_circuit();
        let faults = FaultList::collapsed(&netlist);
        let checkpoint = Checkpoint {
            circuit: netlist.name().to_owned(),
            total_faults: faults.len(),
            faults_digest: faults_digest(faults.faults()),
            outcomes: vec![TestOutcome::Untestable; 3],
        };
        // Seed a valid previous checkpoint.
        save_checkpoint(&path, &checkpoint).unwrap();

        // Crash mid-write: the destination keeps the previous valid bytes.
        let crash = ChaosInjector::new(7).with_crash_rate(1);
        let newer = Checkpoint {
            outcomes: vec![TestOutcome::Untestable; 4],
            ..checkpoint.clone()
        };
        save_checkpoint_chaotic(&path, &newer, Some((&crash, 0))).unwrap();
        let survived = load_checkpoint(&path, &netlist, faults.faults()).unwrap();
        assert_eq!(survived, checkpoint, "crash must not clobber the old file");

        // Torn write: the destination is now detectably truncated.
        let torn = ChaosInjector::new(7).with_torn_write_rate(1);
        save_checkpoint_chaotic(&path, &newer, Some((&torn, 1))).unwrap();
        let err = load_checkpoint(&path, &netlist, faults.faults()).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::Corrupt { .. }
            ),
            "{err}"
        );

        // Bit flip: the checksum catches it.
        let flip = ChaosInjector::new(7).with_bit_flip_rate(1);
        save_checkpoint_chaotic(&path, &newer, Some((&flip, 2))).unwrap();
        let err = load_checkpoint(&path, &netlist, faults.faults()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");

        // A clean rewrite recovers.
        save_checkpoint(&path, &newer).unwrap();
        assert_eq!(
            load_checkpoint(&path, &netlist, faults.faults()).unwrap(),
            newer
        );
        fs::remove_dir_all(&dir).ok();
    }
}
