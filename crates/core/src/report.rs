//! Plain-text table rendering for experiment reports.
//!
//! The benchmark binaries use these helpers to print tables in the same
//! layout as the paper (Tables 3–8).

use std::fmt;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TextTable {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn add_row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        while cells.len() < self.headers.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("{}\n", self.title));
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}  ", width = w));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a fractional deviation as a percentage with one decimal, or a
/// dash when absent (the paper's dashed cells).
pub fn percent_or_dash(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{:.1}", v * 100.0),
        None => "-".to_owned(),
    }
}

/// Formats a duration in seconds with two decimals.
pub fn seconds(duration: std::time::Duration) -> String {
    format!("{:.2}", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new("Table X", &["circuit", "#PI", "#PO"]);
        t.add_row(vec!["c432".into(), "36".into(), "7".into()]);
        t.add_row(vec!["c1908".into(), "33".into(), "25".into()]);
        let s = t.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("c432"));
        assert!(s.contains("c1908"));
        assert_eq!(t.row_count(), 2);
        // Header columns aligned: each row has the same prefix width before
        // the second column.
        let lines: Vec<&str> = s.lines().collect();
        let pos_header = lines[1].find("#PI").unwrap();
        let pos_row = lines[3].find("36").unwrap();
        assert_eq!(pos_header, pos_row);
        assert_eq!(format!("{t}"), s);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new("", &["a", "b", "c"]);
        t.add_row(vec!["only".into()]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent_or_dash(Some(0.113)), "11.3");
        assert_eq!(percent_or_dash(None), "-");
        assert_eq!(seconds(std::time::Duration::from_millis(1500)), "1.50");
    }
}
