//! Variable-ordering policy for the digital OBDD engines: static
//! construction orders computed from the netlist, and the dynamic
//! reordering (sifting) knob threaded through [`DigitalAtpg`] and
//! [`PropagationEngine`].
//!
//! OBDD size is notoriously order-sensitive — the paper's backtrack-free
//! generator inherits whatever order the primary inputs were declared in,
//! which is fine for the hand-ordered benchmark netlists but pathological
//! when a netlist arrives with an adversarial input order.  Two
//! complementary defenses live here:
//!
//! * **static orders** ([`StaticOrder`], [`pi_order`]): a one-shot
//!   pre-construction pass that permutes the *declaration* order of the
//!   primary inputs.  `FaninDfs` clusters inputs that feed the same output
//!   cone (the classic fan-in heuristic); `Force` runs the
//!   hypergraph-span-minimizing FORCE iteration of Aloul/Markov/Sakallah
//!   with each gate as one hyperedge.  `Reversed` exists for benchmarks
//!   and tests that need a deliberately bad seed order;
//! * **dynamic reordering** ([`DvoMode`]): Rudell sifting on the live
//!   arena (see `msatpg_bdd::reorder`), applied at deterministic
//!   construction-time safe points so that reports stay byte-identical
//!   across thread counts.  The default honors the [`DVO_ENV_VAR`]
//!   environment variable, mirroring the `MSATPG_WORD_WIDTH` knob.
//!
//! Both defenses preserve the paper's contract that the composite variable
//! `D` sits *last* in the order: static orders only permute the external
//! primary inputs (declared before `D`), and sifting happens before any
//! per-fault work consumes the order.
//!
//! [`DigitalAtpg`]: crate::DigitalAtpg
//! [`PropagationEngine`]: crate::PropagationEngine

use msatpg_digital::netlist::{Netlist, SignalId};

/// Environment variable consulted by [`DvoMode::Auto`]; accepts `never`
/// (the default) or `until-convergence`.  Any other value is ignored.
pub const DVO_ENV_VAR: &str = "MSATPG_DVO";

/// Upper bound on FORCE iterations; the iteration stops earlier as soon as
/// the total hyperedge span stops improving.
const FORCE_ITERATIONS: usize = 16;

/// Dynamic-variable-ordering knob of the digital OBDD engines.
///
/// When active, the engine runs sifting-until-convergence on its manager at
/// a deterministic construction-time safe point (after the signal functions
/// and the constraint BDD are built and protected).  Reordering never
/// renumbers handles or `VarId`s — only the var↔level permutation moves —
/// so everything downstream (cube extraction, PPSFP cross-checks, reports)
/// is unaffected except for memory footprint.  Results are *equivalent*
/// across modes (same coverage, same outcome taxonomy) but not
/// byte-identical: a different order yields different satisfying cubes.
/// Within one mode, reports remain byte-identical across thread counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DvoMode {
    /// Honor [`DVO_ENV_VAR`] (`MSATPG_DVO=never/until-convergence`); never
    /// reorder when unset or malformed.  This is the default.
    #[default]
    Auto,
    /// Keep the declaration order — the pre-reordering behavior.
    Never,
    /// Sift to convergence at the construction-time safe point.
    UntilConvergence,
}

impl DvoMode {
    /// Resolves [`DvoMode::Auto`] against the environment; `Never` and
    /// `UntilConvergence` pass through unchanged.
    pub fn resolve(self) -> DvoMode {
        match self {
            DvoMode::Auto => match std::env::var(DVO_ENV_VAR) {
                Ok(v) if v.eq_ignore_ascii_case("until-convergence") => DvoMode::UntilConvergence,
                _ => DvoMode::Never,
            },
            other => other,
        }
    }

    /// Whether the resolved mode asks for reordering.
    pub fn is_active(self) -> bool {
        self.resolve() == DvoMode::UntilConvergence
    }
}

/// Static primary-input ordering heuristics (see [`pi_order`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StaticOrder {
    /// Netlist declaration order — the paper's order, and the default.
    #[default]
    Declaration,
    /// Depth-first preorder over the output cones: walk each primary
    /// output's fan-in cone depth-first and list the primary inputs in
    /// first-visit order.  Inputs feeding the same cone end up adjacent,
    /// which is the classic fan-in ordering heuristic for circuit BDDs.
    FaninDfs,
    /// FORCE (Aloul/Markov/Sakallah): iterative center-of-gravity placement
    /// over the gate hypergraph, minimizing the total span of gate
    /// hyperedges.  Span-minimal orders keep connected signals at nearby
    /// levels, which bounds the width of the intermediate BDDs.
    Force,
    /// Declaration order reversed — a deliberately bad seed order used by
    /// the `bdd_reorder` benchmarks and the reordering tests.
    Reversed,
}

/// Computes the declaration order of the primary inputs under `order`.
///
/// The result is a permutation of `netlist.primary_inputs()`, deterministic
/// for a given netlist (ties always break toward declaration order).
pub fn pi_order(netlist: &Netlist, order: StaticOrder) -> Vec<SignalId> {
    match order {
        StaticOrder::Declaration => netlist.primary_inputs().to_vec(),
        StaticOrder::Reversed => {
            let mut pis = netlist.primary_inputs().to_vec();
            pis.reverse();
            pis
        }
        StaticOrder::FaninDfs => fanin_dfs_order(netlist),
        StaticOrder::Force => force_order(netlist),
    }
}

/// Depth-first preorder over the output cones; unreached inputs (not in any
/// output cone) are appended in declaration order.
fn fanin_dfs_order(netlist: &Netlist) -> Vec<SignalId> {
    let mut visited = vec![false; netlist.signal_count()];
    let mut pis = Vec::new();
    let mut stack: Vec<SignalId> = Vec::new();
    for &po in netlist.primary_outputs() {
        stack.push(po);
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut visited[s.index()], true) {
                continue;
            }
            match netlist.driver(s) {
                Some(gate) => {
                    // Push in reverse so the gate's first input is visited
                    // first (left-to-right preorder).
                    for &input in gate.inputs.iter().rev() {
                        stack.push(input);
                    }
                }
                None => pis.push(s),
            }
        }
    }
    for &pi in netlist.primary_inputs() {
        if !visited[pi.index()] {
            pis.push(pi);
        }
    }
    // Non-input sources (e.g. constant drivers) are not primary inputs;
    // keep only genuine PIs, preserving first-visit order.
    pis.retain(|&s| netlist.is_primary_input(s));
    pis
}

/// Total span of the gate hyperedges under the placement `pos`: for each
/// gate, `max(pos of pins) - min(pos of pins)`, summed over all gates.
fn total_span(netlist: &Netlist, pos: &[f64]) -> f64 {
    let mut span = 0.0;
    for gate in netlist.gates() {
        let mut lo = pos[gate.output.index()];
        let mut hi = lo;
        for &input in &gate.inputs {
            let p = pos[input.index()];
            lo = lo.min(p);
            hi = hi.max(p);
        }
        span += hi - lo;
    }
    span
}

/// FORCE placement: every signal is a vertex, every gate (inputs ∪ output)
/// a hyperedge.  Each iteration moves every vertex to the mean
/// center-of-gravity of its incident hyperedges, then re-ranks positions to
/// integers; the iteration keeps the best placement seen and stops when the
/// total span stops improving.
fn force_order(netlist: &Netlist) -> Vec<SignalId> {
    let n = netlist.signal_count();
    let mut pos: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut best_pos = pos.clone();
    let mut best_span = total_span(netlist, &pos);
    for _ in 0..FORCE_ITERATIONS {
        let mut sum = vec![0.0f64; n];
        let mut degree = vec![0u32; n];
        for gate in netlist.gates() {
            let pins = gate.inputs.len() + 1;
            let mut cog = pos[gate.output.index()];
            for &input in &gate.inputs {
                cog += pos[input.index()];
            }
            cog /= pins as f64;
            sum[gate.output.index()] += cog;
            degree[gate.output.index()] += 1;
            for &input in &gate.inputs {
                sum[input.index()] += cog;
                degree[input.index()] += 1;
            }
        }
        for i in 0..n {
            if degree[i] > 0 {
                pos[i] = sum[i] / f64::from(degree[i]);
            }
        }
        // Re-rank to integer positions (ties break toward signal index, so
        // the placement — and the induced input order — is deterministic).
        let mut ranked: Vec<usize> = (0..n).collect();
        ranked.sort_by(|&a, &b| pos[a].total_cmp(&pos[b]).then(a.cmp(&b)));
        for (rank, &i) in ranked.iter().enumerate() {
            pos[i] = rank as f64;
        }
        let span = total_span(netlist, &pos);
        if span < best_span {
            best_span = span;
            best_pos = pos.clone();
        } else {
            break;
        }
    }
    let mut pis = netlist.primary_inputs().to_vec();
    pis.sort_by(|&a, &b| {
        best_pos[a.index()]
            .total_cmp(&best_pos[b.index()])
            .then(a.index().cmp(&b.index()))
    });
    pis
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_digital::{benchmarks, circuits};

    fn is_permutation_of_pis(netlist: &Netlist, order: &[SignalId]) -> bool {
        let mut sorted: Vec<_> = order.iter().map(|s| s.index()).collect();
        sorted.sort_unstable();
        let mut expected: Vec<_> = netlist.primary_inputs().iter().map(|s| s.index()).collect();
        expected.sort_unstable();
        sorted == expected
    }

    #[test]
    fn every_heuristic_permutes_the_inputs() {
        for netlist in [
            circuits::figure3_circuit(),
            benchmarks::c432(),
            circuits::adder4(),
        ] {
            for order in [
                StaticOrder::Declaration,
                StaticOrder::FaninDfs,
                StaticOrder::Force,
                StaticOrder::Reversed,
            ] {
                let pis = pi_order(&netlist, order);
                assert!(
                    is_permutation_of_pis(&netlist, &pis),
                    "{order:?} must permute the PIs of {}",
                    netlist.name()
                );
            }
        }
    }

    #[test]
    fn declaration_and_reversed_are_mirror_images() {
        let netlist = benchmarks::c432();
        let mut fwd = pi_order(&netlist, StaticOrder::Declaration);
        let rev = pi_order(&netlist, StaticOrder::Reversed);
        fwd.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn force_improves_reversed_adder_span() {
        // On the ripple-carry adder the declaration order is near-optimal;
        // FORCE must at least recover a span no worse than the reversed
        // (pathological) placement.
        let netlist = circuits::adder4();
        let n = netlist.signal_count();
        let placement_span = |order: &[SignalId]| {
            // Extend the PI placement to all signals by declaration index so
            // spans are comparable.
            let mut pos: Vec<f64> = (0..n).map(|i| i as f64).collect();
            for (rank, &pi) in order.iter().enumerate() {
                pos[pi.index()] = rank as f64 - n as f64; // PIs first
            }
            total_span(&netlist, &pos)
        };
        let force = pi_order(&netlist, StaticOrder::Force);
        let reversed = pi_order(&netlist, StaticOrder::Reversed);
        assert!(placement_span(&force) <= placement_span(&reversed));
    }

    #[test]
    fn fanin_dfs_clusters_cone_inputs() {
        // figure3: Vo1's cone is walked first, so its inputs lead the order.
        let netlist = circuits::figure3_circuit();
        let pis = pi_order(&netlist, StaticOrder::FaninDfs);
        assert!(is_permutation_of_pis(&netlist, &pis));
        let first_po_cone = netlist.fanin_support(netlist.primary_outputs()[0]);
        let lead = pis[0];
        assert!(
            first_po_cone.contains(&lead),
            "first-listed input must belong to the first output cone"
        );
    }

    #[test]
    fn dvo_mode_resolution() {
        assert_eq!(DvoMode::Never.resolve(), DvoMode::Never);
        assert_eq!(
            DvoMode::UntilConvergence.resolve(),
            DvoMode::UntilConvergence
        );
        assert!(!DvoMode::Never.is_active());
        assert!(DvoMode::UntilConvergence.is_active());
        // Auto resolves to one of the two concrete modes.
        assert_ne!(DvoMode::Auto.resolve(), DvoMode::Auto);
    }
}
