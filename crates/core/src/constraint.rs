//! Construction of the constraint function `Fc` as an OBDD.
//!
//! `Fc` is a sum of product terms, one per assignment the conversion block
//! can actually produce on the digital lines it drives (§2.2.1 of the
//! paper).  Any test vector generated for the digital block must satisfy
//! `Fc = 1`.
//!
//! The build is negation-heavy — every `0` bit of an allowed code becomes a
//! complemented literal — so it benefits directly from the engine's
//! complement edges: negative literals share the positive literal's node
//! and each product term stores only one polarity.  `Fc` itself is
//! long-lived (it conjoins into every per-fault test set), so
//! [`DigitalAtpg`](crate::digital_atpg::DigitalAtpg) registers it as a GC
//! root via [`BddManager::protect`] right after this module builds it; the
//! intermediate product terms are swept at the next per-fault safe point.

use msatpg_bdd::{Bdd, BddManager, VarId};
use msatpg_conversion::constraints::AllowedCodes;
use msatpg_digital::netlist::{Netlist, SignalId};

/// Declares one BDD variable per primary input of the netlist, in input
/// order, named after the signal names; returns the positive literals in
/// the same order.
///
/// The ATPG and the constraint builder must use the same manager so that the
/// variable ordering is consistent.
pub fn declare_input_variables(manager: &mut BddManager, netlist: &Netlist) -> Vec<Bdd> {
    netlist
        .primary_inputs()
        .iter()
        .map(|&pi| {
            let name = netlist.signal_name(pi).to_owned();
            manager.var(&name)
        })
        .collect()
}

/// The variable id used for a primary-input signal (the signal's name).
///
/// # Panics
///
/// Panics if the variable has not been declared yet (call
/// [`declare_input_variables`] first).
pub fn input_variable(manager: &BddManager, netlist: &Netlist, signal: SignalId) -> VarId {
    manager
        .var_index(netlist.signal_name(signal))
        .expect("input variable must be declared before use")
}

/// Builds the constraint function `Fc` over the constrained input lines.
///
/// `constrained_lines[i]` is the digital input driven by converter output
/// `i`; `codes` lists the assignments the converter can produce on those
/// lines (in the same order).  When `codes` is unconstrained the result is
/// the constant `1` — "no constraint to satisfy", as the paper puts it.
pub fn constraint_bdd(
    manager: &mut BddManager,
    netlist: &Netlist,
    constrained_lines: &[SignalId],
    codes: &AllowedCodes,
) -> Bdd {
    if codes.is_unconstrained() {
        return manager.one();
    }
    assert_eq!(
        codes.width(),
        constrained_lines.len(),
        "allowed-code width must match the number of constrained lines"
    );
    let mut fc = manager.zero();
    for code in codes.codes() {
        let mut term = manager.one();
        for (line, &value) in constrained_lines.iter().zip(code) {
            let var = input_variable(manager, netlist, *line);
            let literal = manager.literal(var, value);
            term = manager.and(term, literal);
        }
        fc = manager.or(fc, term);
    }
    fc
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_bdd::Assignment;
    use msatpg_digital::circuits;

    #[test]
    fn example2_constraint_is_l0_or_l2() {
        // The paper's Example 2: Fc = l0 + l2 (the code 00 is impossible).
        let netlist = circuits::figure3_circuit();
        let mut m = BddManager::new();
        declare_input_variables(&mut m, &netlist);
        let l0 = netlist.find_signal("l0").unwrap();
        let l2 = netlist.find_signal("l2").unwrap();
        let codes = AllowedCodes::new(2, vec![vec![true, false], vec![true, true]]);
        let fc = constraint_bdd(&mut m, &netlist, &[l0, l2], &codes);
        // Note: the code list above only contains l0=1 codes, so Fc = l0.
        let l0_var = m.var("l0");
        assert_eq!(fc, l0_var);

        // With the full thermometer-code set minus (0,0): Fc = l0 + l2... for
        // a thermometer code on (l0, l2) the possibilities are 10 and 11 and
        // 01 is impossible; the paper's Fc = l0 + l2 admits 01 as well, which
        // corresponds to codes observed in either order.  Model it directly:
        let codes2 = AllowedCodes::new(
            2,
            vec![vec![true, false], vec![false, true], vec![true, true]],
        );
        let fc2 = constraint_bdd(&mut m, &netlist, &[l0, l2], &codes2);
        let l2_var = m.var("l2");
        let expected = m.or(l0_var, l2_var);
        assert_eq!(fc2, expected);
    }

    #[test]
    fn unconstrained_codes_give_constant_one() {
        let netlist = circuits::figure3_circuit();
        let mut m = BddManager::new();
        declare_input_variables(&mut m, &netlist);
        let fc = constraint_bdd(&mut m, &netlist, &[], &AllowedCodes::unconstrained(0));
        assert!(fc.is_one());
    }

    #[test]
    fn thermometer_constraint_counts_assignments() {
        // 4 constrained lines with thermometer codes: exactly 5 of the 16
        // assignments satisfy Fc.
        let netlist = circuits::adder4();
        let mut m = BddManager::new();
        declare_input_variables(&mut m, &netlist);
        let lines: Vec<SignalId> = ["a0", "a1", "a2", "a3"]
            .iter()
            .map(|n| netlist.find_signal(n).unwrap())
            .collect();
        let codes = msatpg_conversion::constraints::thermometer_codes(4);
        let fc = constraint_bdd(&mut m, &netlist, &lines, &codes);
        // sat_count is over all 9 declared input variables: 5 codes × 2^5
        // free assignments of the other inputs.
        assert_eq!(m.sat_count(fc), 5 * 32);
        // Spot-check evaluation.
        let mut asg = Assignment::new();
        for (i, name) in ["a0", "a1", "a2", "a3"].iter().enumerate() {
            let var = m.var_index(name).unwrap();
            asg.set(var, i < 2); // 1100 thermometer code
        }
        assert!(m.eval(fc, &asg));
        let bad_var = m.var_index("a0").unwrap();
        asg.set(bad_var, false); // 0100 is not a thermometer code
        assert!(!m.eval(fc, &asg));
    }

    #[test]
    fn declared_variables_follow_input_order() {
        let netlist = circuits::figure3_circuit();
        let mut m = BddManager::new();
        let vars = declare_input_variables(&mut m, &netlist);
        assert_eq!(vars.len(), 4);
        assert_eq!(m.var_names(), &["l0", "l1", "l2", "l4"]);
        let l2 = netlist.find_signal("l2").unwrap();
        assert_eq!(input_variable(&m, &netlist, l2), 2);
    }
}
