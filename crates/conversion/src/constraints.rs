//! Allowed digital-input codes imposed by the conversion block.
//!
//! The digital-circuit inputs connected to the conversion block cannot be set
//! to arbitrary values: a flash converter can only produce *thermometer*
//! codes, and a binary converter only produces the codes of a single output
//! bus value.  These allowed assignments form the paper's constraint function
//! `Fc`; this module enumerates them so that the ATPG layer can turn them
//! into an OBDD.

use crate::flash::FlashAdc;
use crate::sar::SarAdc;

/// A set of allowed assignments to the digital lines driven by a conversion
/// block (the ON-set of `Fc`, one cube per assignment).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AllowedCodes {
    width: usize,
    codes: Vec<Vec<bool>>,
}

impl AllowedCodes {
    /// Creates a set of allowed codes.
    ///
    /// # Panics
    ///
    /// Panics if a code's width differs from `width`.
    pub fn new(width: usize, codes: Vec<Vec<bool>>) -> Self {
        for code in &codes {
            assert_eq!(code.len(), width, "code width mismatch");
        }
        AllowedCodes { width, codes }
    }

    /// A set that allows every assignment (no constraint, `Fc = 1`).
    pub fn unconstrained(width: usize) -> Self {
        AllowedCodes {
            width,
            codes: Vec::new(),
        }
    }

    /// Number of constrained lines.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns `true` when every assignment is allowed.
    pub fn is_unconstrained(&self) -> bool {
        self.codes.is_empty()
    }

    /// The allowed codes (empty when unconstrained).
    pub fn codes(&self) -> &[Vec<bool>] {
        &self.codes
    }

    /// Checks whether a concrete assignment is allowed.
    pub fn allows(&self, assignment: &[bool]) -> bool {
        if self.is_unconstrained() {
            return true;
        }
        self.codes.iter().any(|c| c == assignment)
    }

    /// Fraction of the full assignment space that is allowed (1.0 when
    /// unconstrained) — a measure of how strongly the conversion block
    /// constrains the digital block.
    pub fn density(&self) -> f64 {
        if self.is_unconstrained() {
            return 1.0;
        }
        let total = 2f64.powi(self.width as i32);
        self.codes.len() as f64 / total
    }
}

/// The thermometer codes a flash converter with `comparators` outputs can
/// produce (`comparators + 1` codes, from all-zeros to all-ones).
pub fn thermometer_codes(comparators: usize) -> AllowedCodes {
    let codes = (0..=comparators)
        .map(|count| (0..comparators).map(|i| i < count).collect())
        .collect();
    AllowedCodes::new(comparators, codes)
}

/// The allowed codes of a [`FlashAdc`] (its thermometer codes).
pub fn flash_codes(adc: &FlashAdc) -> AllowedCodes {
    thermometer_codes(adc.comparator_count())
}

/// The allowed codes of the low `lines` bits of a binary converter output.
///
/// Every binary value of `lines` bits is producible by sweeping the input
/// voltage, so the result is unconstrained unless fewer lines than the full
/// bus are connected in a correlated way; the function exists so that
/// mixed-circuit construction is explicit about binary converters.
pub fn binary_codes(adc: &SarAdc, lines: usize) -> AllowedCodes {
    let lines = lines.min(adc.bits() as usize);
    AllowedCodes::unconstrained(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermometer_codes_enumerate_correctly() {
        let codes = thermometer_codes(15);
        assert_eq!(codes.width(), 15);
        assert_eq!(codes.codes().len(), 16);
        assert!(!codes.is_unconstrained());
        // The all-zeros and all-ones codes are allowed; a broken code is not.
        assert!(codes.allows(&vec![false; 15]));
        assert!(codes.allows(&vec![true; 15]));
        let mut broken = vec![false; 15];
        broken[3] = true; // 1 after a 0 → not a thermometer code
        assert!(!codes.allows(&broken));
        // Density: 16 / 2^15.
        assert!((codes.density() - 16.0 / 32768.0).abs() < 1e-12);
    }

    #[test]
    fn two_line_case_matches_the_paper_example() {
        // Example 2 of the paper: two lines driven by one comparator pair
        // such that (l0, l2) = (0, 0) cannot be produced.  A 2-comparator
        // flash block produces exactly the codes 00 is *possible* for a
        // thermometer code, so the paper's Fc = l0 + l2 corresponds to a
        // conversion block whose input range never drops below Vt1; we model
        // that by filtering the code set.
        let full = thermometer_codes(2);
        let filtered = AllowedCodes::new(
            2,
            full.codes()
                .iter()
                .filter(|c| c.iter().any(|&b| b))
                .cloned()
                .collect(),
        );
        assert_eq!(filtered.codes().len(), 2);
        assert!(filtered.allows(&[true, false]));
        assert!(filtered.allows(&[true, true]));
        assert!(!filtered.allows(&[false, false]));
    }

    #[test]
    fn unconstrained_allows_everything() {
        let codes = AllowedCodes::unconstrained(4);
        assert!(codes.is_unconstrained());
        assert!(codes.allows(&[true, false, true, false]));
        assert_eq!(codes.density(), 1.0);
    }

    #[test]
    fn flash_and_binary_helpers() {
        let adc = FlashAdc::uniform(7, 4.0).unwrap();
        let codes = flash_codes(&adc);
        assert_eq!(codes.width(), 7);
        assert_eq!(codes.codes().len(), 8);
        let sar = SarAdc::ad7820();
        let bc = binary_codes(&sar, 4);
        assert!(bc.is_unconstrained());
        assert_eq!(bc.width(), 4);
        let bc_wide = binary_codes(&sar, 12);
        assert_eq!(bc_wide.width(), 8, "clamped to the converter resolution");
    }

    #[test]
    #[should_panic(expected = "code width mismatch")]
    fn mismatched_code_width_panics() {
        AllowedCodes::new(3, vec![vec![true, false]]);
    }
}
