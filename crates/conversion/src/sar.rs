//! An 8-bit A/D converter model (the AD7820-class half-flash converter of the
//! validation board, Figure 8).
//!
//! The converter is modelled behaviourally as an ideal uniform quantizer with
//! an optional gain/offset error, which is what the board-level experiment of
//! the paper observes through the digital block.

use crate::ConversionError;

/// A behavioural `bits`-bit A/D converter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SarAdc {
    bits: u32,
    v_ref: f64,
    gain_error: f64,
    offset_volts: f64,
}

impl SarAdc {
    /// Creates an ideal `bits`-bit converter with full-scale `v_ref`.
    ///
    /// # Errors
    ///
    /// Returns an error when `bits` is zero or larger than 16, or `v_ref` is
    /// not positive.
    pub fn new(bits: u32, v_ref: f64) -> Result<Self, ConversionError> {
        if bits == 0 || bits > 16 {
            return Err(ConversionError::InvalidAdc {
                reason: format!("unsupported resolution: {bits} bits"),
            });
        }
        if !(v_ref > 0.0) {
            return Err(ConversionError::InvalidAdc {
                reason: "reference voltage must be positive".to_owned(),
            });
        }
        Ok(SarAdc {
            bits,
            v_ref,
            gain_error: 0.0,
            offset_volts: 0.0,
        })
    }

    /// The paper's board converter: 8 bits, 5 V full scale.
    pub fn ad7820() -> Self {
        Self::new(8, 5.0).expect("fixed parameters are valid")
    }

    /// Adds a relative gain error (`0.01` = +1 %).
    pub fn with_gain_error(mut self, relative: f64) -> Self {
        self.gain_error = relative;
        self
    }

    /// Adds an input-referred offset in volts.
    pub fn with_offset(mut self, volts: f64) -> Self {
        self.offset_volts = volts;
        self
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale reference voltage.
    pub fn v_ref(&self) -> f64 {
        self.v_ref
    }

    /// Number of codes (`2^bits`).
    pub fn code_count(&self) -> u32 {
        1 << self.bits
    }

    /// Size of one LSB in volts.
    pub fn lsb(&self) -> f64 {
        self.v_ref / self.code_count() as f64
    }

    /// Converts an input voltage to an output code (clamped to the code
    /// range).
    pub fn convert(&self, vin: f64) -> u32 {
        let effective = (vin + self.offset_volts) * (1.0 + self.gain_error);
        let code = (effective / self.lsb()).floor();
        code.clamp(0.0, (self.code_count() - 1) as f64) as u32
    }

    /// Converts an input voltage to its output bits, LSB first.
    pub fn convert_to_bits(&self, vin: f64) -> Vec<bool> {
        let code = self.convert(vin);
        (0..self.bits).map(|b| (code >> b) & 1 == 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_conversion_quantizes_uniformly() {
        let adc = SarAdc::new(8, 5.0).unwrap();
        assert_eq!(adc.bits(), 8);
        assert_eq!(adc.code_count(), 256);
        assert!((adc.lsb() - 5.0 / 256.0).abs() < 1e-12);
        assert_eq!(adc.convert(0.0), 0);
        assert_eq!(adc.convert(2.5), 128);
        assert_eq!(adc.convert(5.1), 255, "clamped at full scale");
        assert_eq!(adc.convert(-1.0), 0, "clamped at zero");
    }

    #[test]
    fn bits_round_trip_the_code() {
        let adc = SarAdc::ad7820();
        let bits = adc.convert_to_bits(3.3);
        let mut code = 0u32;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                code |= 1 << i;
            }
        }
        assert_eq!(code, adc.convert(3.3));
        assert_eq!(bits.len(), 8);
    }

    #[test]
    fn gain_and_offset_errors_shift_codes() {
        let ideal = SarAdc::new(8, 5.0).unwrap();
        let gained = SarAdc::new(8, 5.0).unwrap().with_gain_error(0.10);
        let offset = SarAdc::new(8, 5.0).unwrap().with_offset(0.1);
        assert!(gained.convert(2.5) > ideal.convert(2.5));
        assert!(offset.convert(2.5) > ideal.convert(2.5));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(SarAdc::new(0, 5.0).is_err());
        assert!(SarAdc::new(20, 5.0).is_err());
        assert!(SarAdc::new(8, 0.0).is_err());
        assert!(SarAdc::new(8, -1.0).is_err());
        assert_eq!(SarAdc::ad7820().v_ref(), 5.0);
    }
}
