//! Conversion-block fault coverage: which ladder-resistor deviation can be
//! detected at which comparator (Tables 6 and 7 of the paper).
//!
//! A ladder resistor is tested by verifying the reference voltage of a
//! comparator: the deviation is detectable at tap `k` when it moves `Vtk` by
//! more than the tolerance, measured relative to the tap's distance from the
//! *nearest rail* (ground for the lower taps, `Vref` for the upper taps) —
//! the accuracy criterion that reproduces the paper's ∧-shaped coverage
//! profile, where the mid-ladder resistors are the hardest to test.

use crate::ladder::ResistorLadder;
use crate::ConversionError;

/// Detectability of one ladder resistor at one comparator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LadderDeviationCell {
    /// Resistor index (1-based, bottom first).
    pub resistor: usize,
    /// Comparator / tap index (1-based).
    pub comparator: usize,
    /// Smallest detectable relative deviation (fraction), or `None` when no
    /// deviation up to the search cap is detectable at this comparator.
    pub detectable_deviation: Option<f64>,
}

/// The complete resistor × comparator detectability matrix of a ladder.
#[derive(Clone, Debug, Default)]
pub struct LadderCoverage {
    cells: Vec<LadderDeviationCell>,
    resistors: usize,
    comparators: usize,
}

impl LadderCoverage {
    /// All matrix cells.
    pub fn cells(&self) -> &[LadderDeviationCell] {
        &self.cells
    }

    /// Number of ladder resistors.
    pub fn resistor_count(&self) -> usize {
        self.resistors
    }

    /// Number of comparators (taps).
    pub fn comparator_count(&self) -> usize {
        self.comparators
    }

    /// Detectable deviation of `resistor` at `comparator` (both 1-based).
    pub fn deviation(&self, resistor: usize, comparator: usize) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.resistor == resistor && c.comparator == comparator)
            .and_then(|c| c.detectable_deviation)
    }

    /// For each resistor, the best comparator restricted to `usable`
    /// comparators (1-based indices) and the deviation achieved there.
    /// `None` when the resistor cannot be tested through any usable
    /// comparator — the dashed cells of Table 7.
    ///
    /// Numerically tied comparators (within 1 %) are broken in favour of the
    /// comparator closest to the resistor, which is also how the paper
    /// associates each reference voltage with "its" ladder resistor.
    pub fn best_assignment(&self, usable: &[usize]) -> Vec<(usize, Option<(usize, f64)>)> {
        (1..=self.resistors)
            .map(|r| {
                let candidates: Vec<(usize, f64)> = self
                    .cells
                    .iter()
                    .filter(|c| {
                        c.resistor == r
                            && usable.contains(&c.comparator)
                            && c.detectable_deviation.is_some()
                    })
                    .map(|c| {
                        (
                            c.comparator,
                            c.detectable_deviation.unwrap_or(f64::INFINITY),
                        )
                    })
                    .collect();
                let best = candidates
                    .iter()
                    .map(|&(_, d)| d)
                    .fold(f64::INFINITY, f64::min);
                let chosen = candidates
                    .into_iter()
                    .filter(|&(_, d)| d <= best * 1.01)
                    .min_by_key(|&(k, _)| (k as isize - r as isize).unsigned_abs());
                (r, chosen)
            })
            .collect()
    }

    /// For each comparator, the resistors for which it is the best detector,
    /// together with the deviation — the layout of Table 6 of the paper.
    pub fn table_by_comparator(&self, usable: &[usize]) -> Vec<(usize, Vec<usize>, Option<f64>)> {
        let assignment = self.best_assignment(usable);
        (1..=self.comparators)
            .map(|k| {
                let resistors: Vec<usize> = assignment
                    .iter()
                    .filter(|(_, best)| matches!(best, Some((bk, _)) if *bk == k))
                    .map(|(r, _)| *r)
                    .collect();
                let deviation = assignment
                    .iter()
                    .filter(|(_, best)| matches!(best, Some((bk, _)) if *bk == k))
                    .filter_map(|(_, best)| best.map(|(_, d)| d))
                    .fold(None::<f64>, |acc, d| Some(acc.map_or(d, |a| a.max(d))));
                (k, resistors, deviation)
            })
            .collect()
    }
}

/// Computes the ladder coverage matrix.
///
/// `tolerance` is the relative accuracy required of each reference voltage
/// (fraction, the paper uses 5 %); deviations are searched up to
/// `max_deviation` (fraction, e.g. `20.0` = 2000 %).
///
/// # Errors
///
/// Propagates ladder errors (cannot occur for a well-formed ladder).
pub fn ladder_coverage(
    ladder: &ResistorLadder,
    tolerance: f64,
    max_deviation: f64,
) -> Result<LadderCoverage, ConversionError> {
    let nominal_taps = ladder.tap_voltages();
    let v_ref = ladder.v_ref();
    let mut cells = Vec::new();
    for resistor in 1..=ladder.resistor_count() {
        for comparator in 1..=ladder.tap_count() {
            let nominal = nominal_taps[comparator - 1];
            // Accuracy requirement relative to the nearest rail.
            let scale = nominal.min(v_ref - nominal).max(1e-12);
            let threshold = tolerance * scale;
            let detectable = minimum_detectable(
                ladder,
                resistor,
                comparator,
                nominal,
                threshold,
                max_deviation,
            )?;
            cells.push(LadderDeviationCell {
                resistor,
                comparator,
                detectable_deviation: detectable,
            });
        }
    }
    Ok(LadderCoverage {
        cells,
        resistors: ladder.resistor_count(),
        comparators: ladder.tap_count(),
    })
}

fn minimum_detectable(
    ladder: &ResistorLadder,
    resistor: usize,
    comparator: usize,
    nominal: f64,
    threshold: f64,
    max_deviation: f64,
) -> Result<Option<f64>, ConversionError> {
    let shift = |x: f64| -> Result<f64, ConversionError> {
        let faulty = ladder.with_deviation(resistor, x)?;
        Ok((faulty.tap_voltage(comparator)? - nominal).abs())
    };
    let mut result: Option<f64> = None;
    for sign in [1.0, -1.0] {
        let mut lo = 0.0f64;
        let mut hi = 0.01f64;
        let mut found = false;
        while hi <= max_deviation {
            let mut probe = hi;
            if sign < 0.0 && probe >= 0.999 {
                probe = 0.999;
            }
            if shift(sign * probe)? > threshold {
                hi = probe;
                found = true;
                break;
            }
            if sign < 0.0 && probe >= 0.999 {
                break;
            }
            lo = hi;
            hi *= 1.5;
        }
        if !found {
            return Ok(None);
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if shift(sign * mid)? > threshold {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        result = Some(match result {
            None => hi,
            Some(prev) => prev.max(hi),
        });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_ladder() -> ResistorLadder {
        ResistorLadder::uniform(16, 4.0).unwrap()
    }

    #[test]
    fn coverage_profile_peaks_in_the_middle() {
        let coverage = ladder_coverage(&paper_ladder(), 0.05, 50.0).unwrap();
        let all = (1..=15usize).collect::<Vec<_>>();
        let assignment = coverage.best_assignment(&all);
        // Every resistor is testable through some comparator.
        assert!(assignment.iter().all(|(_, best)| best.is_some()));
        let deviations: Vec<f64> = assignment.iter().map(|(_, best)| best.unwrap().1).collect();
        // ∧-shaped: the end resistors are easiest, the middle hardest —
        // the shape of Table 6 in the paper.
        let first = deviations[0];
        let mid = deviations[7];
        let last = deviations[15];
        assert!(mid > first * 3.0, "middle {mid} vs first {first}");
        assert!(mid > last * 3.0, "middle {mid} vs last {last}");
        assert!(first < 0.2, "first resistor detectable below 20% ({first})");
        assert!(last < 0.2, "last resistor detectable below 20% ({last})");
    }

    #[test]
    fn each_resistor_prefers_a_nearby_comparator() {
        let coverage = ladder_coverage(&paper_ladder(), 0.05, 50.0).unwrap();
        let all = (1..=15usize).collect::<Vec<_>>();
        for (r, best) in coverage.best_assignment(&all) {
            let (k, _) = best.unwrap();
            // The best comparator is adjacent to the resistor.
            assert!(
                (k as isize - r as isize).abs() <= 1,
                "resistor {r} best tested at comparator {k}"
            );
        }
    }

    #[test]
    fn removing_comparators_degrades_or_removes_coverage() {
        let coverage = ladder_coverage(&paper_ladder(), 0.05, 50.0).unwrap();
        let all = (1..=15usize).collect::<Vec<_>>();
        // Only the upper half of the comparators are usable.
        let upper: Vec<usize> = (8..=15).collect();
        let full = coverage.best_assignment(&all);
        let restricted = coverage.best_assignment(&upper);
        for ((r, best_full), (_, best_restricted)) in full.iter().zip(&restricted) {
            match (best_full, best_restricted) {
                (Some((_, d_full)), Some((_, d_restricted))) => {
                    assert!(
                        d_restricted >= d_full,
                        "resistor {r}: restricting comparators cannot improve coverage"
                    );
                }
                (Some(_), None) => {} // lost coverage entirely — allowed
                (None, Some(_)) => panic!("coverage appeared from nowhere"),
                (None, None) => {}
            }
        }
    }

    #[test]
    fn table_layout_groups_resistors_by_comparator() {
        let coverage = ladder_coverage(&paper_ladder(), 0.05, 50.0).unwrap();
        let all = (1..=15usize).collect::<Vec<_>>();
        let table = coverage.table_by_comparator(&all);
        assert_eq!(table.len(), 15);
        let assigned: usize = table.iter().map(|(_, rs, _)| rs.len()).sum();
        assert_eq!(assigned, 16, "all 16 resistors are assigned to some tap");
        // A mid-ladder tap covers two resistors (the paper's Vt8 ↔ R8,R9).
        assert!(table.iter().any(|(_, rs, _)| rs.len() == 2));
    }

    #[test]
    fn matrix_lookup_is_consistent() {
        let ladder = ResistorLadder::uniform(4, 4.0).unwrap();
        let coverage = ladder_coverage(&ladder, 0.05, 50.0).unwrap();
        assert_eq!(coverage.resistor_count(), 4);
        assert_eq!(coverage.comparator_count(), 3);
        assert_eq!(coverage.cells().len(), 12);
        // Deviation of resistor 1 at comparator 1 exists and is small.
        let d = coverage.deviation(1, 1).unwrap();
        assert!(d > 0.0 && d < 0.5);
    }
}
