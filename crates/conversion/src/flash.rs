//! Flash (parallel) A/D converter: a resistor ladder plus one comparator per
//! tap, producing a thermometer code.
//!
//! This is the 15-comparator / 16-resistor conversion block of Example 3 in
//! the paper.

use crate::comparator::Comparator;
use crate::ladder::ResistorLadder;
use crate::ConversionError;

/// A flash ADC built from a [`ResistorLadder`] and one [`Comparator`] per
/// tap.
#[derive(Clone, Debug, PartialEq)]
pub struct FlashAdc {
    ladder: ResistorLadder,
    comparators: Vec<Comparator>,
}

impl FlashAdc {
    /// Builds a flash converter from a ladder (one comparator per tap, with
    /// the tap voltage as threshold).
    pub fn from_ladder(ladder: ResistorLadder) -> Self {
        let comparators = ladder
            .tap_voltages()
            .into_iter()
            .map(Comparator::new)
            .collect();
        FlashAdc {
            ladder,
            comparators,
        }
    }

    /// Builds the paper's conversion block: `comparators + 1` equal
    /// resistors between `v_ref` and ground (15 comparators ⇒ 16 resistors).
    ///
    /// # Errors
    ///
    /// Returns an error when `comparators` is zero.
    pub fn uniform(comparators: usize, v_ref: f64) -> Result<Self, ConversionError> {
        let ladder = ResistorLadder::uniform(comparators + 1, v_ref)?;
        Ok(Self::from_ladder(ladder))
    }

    /// The underlying resistor ladder.
    pub fn ladder(&self) -> &ResistorLadder {
        &self.ladder
    }

    /// Number of comparators (output lines).
    pub fn comparator_count(&self) -> usize {
        self.comparators.len()
    }

    /// The comparators in tap order (lowest threshold first).
    pub fn comparators(&self) -> &[Comparator] {
        &self.comparators
    }

    /// Converts an input voltage into the thermometer code
    /// `[c1, c2, …]` where `ck = (vin ≥ Vtk)`.
    pub fn convert(&self, vin: f64) -> Vec<bool> {
        self.comparators.iter().map(|c| c.output(vin)).collect()
    }

    /// Converts an input voltage into the equivalent binary count (number of
    /// comparators that trip).
    pub fn convert_to_count(&self, vin: f64) -> usize {
        self.convert(vin).iter().filter(|&&b| b).count()
    }

    /// Returns a copy of the converter with ladder resistor `index` (1-based)
    /// deviated by `relative`; comparator thresholds are re-derived from the
    /// faulty ladder.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range resistor index.
    pub fn with_resistor_deviation(
        &self,
        index: usize,
        relative: f64,
    ) -> Result<FlashAdc, ConversionError> {
        Ok(Self::from_ladder(
            self.ladder.with_deviation(index, relative)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermometer_code_is_monotone() {
        let adc = FlashAdc::uniform(15, 4.0).unwrap();
        assert_eq!(adc.comparator_count(), 15);
        let code = adc.convert(1.3);
        // Thermometer property: once false, stays false.
        let mut seen_false = false;
        for &bit in &code {
            if !bit {
                seen_false = true;
            }
            if seen_false {
                assert!(!bit);
            }
        }
        assert_eq!(adc.convert_to_count(1.3), 5); // 1.3 / 0.25 = 5.2 → 5 taps below
        assert_eq!(adc.convert_to_count(0.0), 0);
        assert_eq!(adc.convert_to_count(4.0), 15);
    }

    #[test]
    fn count_increases_with_input() {
        let adc = FlashAdc::uniform(15, 4.0).unwrap();
        let mut prev = 0;
        for step in 0..=40 {
            let vin = 4.0 * step as f64 / 40.0;
            let count = adc.convert_to_count(vin);
            assert!(count >= prev);
            prev = count;
        }
        assert_eq!(prev, 15);
    }

    #[test]
    fn resistor_deviation_moves_a_threshold() {
        let adc = FlashAdc::uniform(15, 4.0).unwrap();
        // An input just below Vt8 = 2.0 V trips 7 comparators nominally.
        let vin = 1.99;
        assert_eq!(adc.convert_to_count(vin), 7);
        // Shrinking a bottom resistor lowers Vt8 below the input.
        let faulty = adc.with_resistor_deviation(1, -0.5).unwrap();
        assert!(faulty.convert_to_count(vin) >= 8);
        assert!(adc.with_resistor_deviation(99, 0.1).is_err());
    }

    #[test]
    fn from_ladder_uses_tap_thresholds() {
        let ladder = ResistorLadder::uniform(4, 3.0).unwrap();
        let adc = FlashAdc::from_ladder(ladder.clone());
        assert_eq!(adc.comparator_count(), 3);
        for (c, t) in adc.comparators().iter().zip(ladder.tap_voltages()) {
            assert!((c.threshold() - t).abs() < 1e-12);
        }
        assert_eq!(adc.ladder().resistor_count(), 4);
    }
}
