//! Voltage comparators — the analog/digital boundary of the conversion block.

/// A voltage comparator with a reference threshold.
///
/// The output is logic `1` when the input voltage is greater than or equal to
/// the threshold (plus an optional input-referred offset fault).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Comparator {
    threshold: f64,
    offset: f64,
}

impl Comparator {
    /// Creates a comparator with the given reference threshold (volts).
    pub fn new(threshold: f64) -> Self {
        Comparator {
            threshold,
            offset: 0.0,
        }
    }

    /// Adds an input-referred offset (volts) modelling a comparator fault.
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }

    /// The nominal threshold voltage.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The effective switching voltage (threshold plus offset).
    pub fn switching_voltage(&self) -> f64 {
        self.threshold + self.offset
    }

    /// Evaluates the comparator on an input voltage.
    pub fn output(&self, input: f64) -> bool {
        input >= self.switching_voltage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_at_threshold() {
        let c = Comparator::new(2.5);
        assert!(!c.output(2.4));
        assert!(c.output(2.5));
        assert!(c.output(3.0));
        assert_eq!(c.threshold(), 2.5);
        assert_eq!(c.switching_voltage(), 2.5);
    }

    #[test]
    fn offset_shifts_the_switching_point() {
        let c = Comparator::new(2.5).with_offset(0.2);
        assert!(!c.output(2.6));
        assert!(c.output(2.7));
        assert_eq!(c.switching_voltage(), 2.7);
    }
}
