//! Thermometer-to-binary encoders as gate-level netlists.
//!
//! Useful when the conversion block's outputs need to be fed to a digital
//! block that expects a binary code (the 8-bit converter of the validation
//! board drives the 4-bit adder through such logic).

use msatpg_digital::gate::GateKind;
use msatpg_digital::netlist::{Netlist, SignalId};

/// Builds a gate-level encoder converting an `n`-bit thermometer code
/// (`t1..tn`, lowest threshold first) into a `ceil(log2(n+1))`-bit binary
/// count, LSB first.
///
/// The construction is a tree of half/full adders over the thermometer bits
/// (a population counter), which is correct for arbitrary input codes and in
/// particular for true thermometer codes.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn thermometer_to_binary(n: usize) -> Netlist {
    assert!(n > 0, "encoder needs at least one thermometer bit");
    let mut netlist = Netlist::new(&format!("thermo{n}_encoder"));
    let inputs: Vec<SignalId> = (1..=n).map(|i| netlist.input(&format!("t{i}"))).collect();
    let mut counter = 0usize;
    // Represent each intermediate value as a little-endian vector of signal
    // bits; add the thermometer bits one by one with ripple-carry adders.
    let mut acc: Vec<SignalId> = vec![inputs[0]];
    for &bit in &inputs[1..] {
        // acc = acc + bit
        let mut next = Vec::with_capacity(acc.len() + 1);
        let mut carry = bit;
        for &a in &acc {
            let sum = netlist.gate(GateKind::Xor, &format!("s{counter}"), &[a, carry]);
            let new_carry = netlist.gate(GateKind::And, &format!("c{counter}"), &[a, carry]);
            counter += 1;
            next.push(sum);
            carry = new_carry;
        }
        next.push(carry);
        // Trim leading bits that can never be set (value ≤ number of inputs
        // consumed so far); keeping them is harmless, so only trim when the
        // width exceeds what is needed for `n`.
        let needed = usize::BITS as usize - n.leading_zeros() as usize;
        if next.len() > needed {
            next.truncate(needed);
        }
        acc = next;
    }
    for &bit in &acc {
        netlist.mark_output(bit);
    }
    netlist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thermometer_pattern(n: usize, count: usize) -> Vec<bool> {
        (0..n).map(|i| i < count).collect()
    }

    #[test]
    fn encodes_all_thermometer_codes_for_15_inputs() {
        let enc = thermometer_to_binary(15);
        assert!(enc.validate().is_ok());
        assert_eq!(enc.primary_inputs().len(), 15);
        assert_eq!(enc.primary_outputs().len(), 4);
        for count in 0..=15usize {
            let pattern = thermometer_pattern(15, count);
            let out = enc.evaluate(&pattern).unwrap();
            let mut value = 0usize;
            for (i, &b) in out.iter().enumerate() {
                if b {
                    value |= 1 << i;
                }
            }
            assert_eq!(value, count, "thermometer code with {count} ones");
        }
    }

    #[test]
    fn works_as_a_population_counter_on_arbitrary_codes() {
        let enc = thermometer_to_binary(7);
        for code in 0..128u32 {
            let pattern: Vec<bool> = (0..7).map(|b| (code >> b) & 1 == 1).collect();
            let expected = code.count_ones() as usize;
            let out = enc.evaluate(&pattern).unwrap();
            let mut value = 0usize;
            for (i, &b) in out.iter().enumerate() {
                if b {
                    value |= 1 << i;
                }
            }
            assert_eq!(value, expected);
        }
    }

    #[test]
    fn single_bit_encoder_is_a_wire() {
        let enc = thermometer_to_binary(1);
        assert_eq!(enc.primary_outputs().len(), 1);
        assert_eq!(enc.evaluate(&[true]).unwrap(), vec![true]);
        assert_eq!(enc.evaluate(&[false]).unwrap(), vec![false]);
    }
}
