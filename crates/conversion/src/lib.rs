//! A/D conversion block models for the mixed-signal ATPG.
//!
//! The conversion block sits between the analog block and the digital block
//! of the mixed circuit (Figure 1 of the paper).  This crate provides:
//!
//! * [`comparator`] / [`ladder`] / [`flash`] — the 15-comparator /
//!   16-resistor flash conversion block of Example 3;
//! * [`sar`] — the behavioural 8-bit converter of the validation board
//!   (Figure 8);
//! * [`encoder`] — thermometer-to-binary encoding logic as a gate-level
//!   netlist;
//! * [`fault`] — the ladder-resistor coverage analysis behind Tables 6 and 7;
//! * [`constraints`] — the allowed digital-input codes that become the
//!   constraint function `Fc`.
//!
//! # Example
//!
//! ```
//! use msatpg_conversion::flash::FlashAdc;
//! use msatpg_conversion::constraints::flash_codes;
//!
//! let adc = FlashAdc::uniform(15, 4.0)?;
//! assert_eq!(adc.convert_to_count(2.0), 8);
//! let fc = flash_codes(&adc);
//! assert_eq!(fc.codes().len(), 16); // only thermometer codes are producible
//! # Ok::<(), msatpg_conversion::ConversionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparator;
pub mod constraints;
pub mod encoder;
pub mod fault;
pub mod flash;
pub mod ladder;
pub mod sar;

pub use comparator::Comparator;
pub use constraints::AllowedCodes;
pub use fault::{ladder_coverage, LadderCoverage};
pub use flash::FlashAdc;
pub use ladder::ResistorLadder;
pub use sar::SarAdc;

use std::fmt;

/// Errors produced by the conversion-block models.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConversionError {
    /// A resistor ladder was constructed with invalid values.
    InvalidLadder {
        /// Explanation of the problem.
        reason: String,
    },
    /// A converter was constructed with invalid parameters.
    InvalidAdc {
        /// Explanation of the problem.
        reason: String,
    },
    /// A tap index was out of range.
    TapOutOfRange {
        /// The requested 1-based tap index.
        index: usize,
        /// Number of taps available.
        taps: usize,
    },
    /// A resistor index was out of range.
    ResistorOutOfRange {
        /// The requested 1-based resistor index.
        index: usize,
        /// Number of resistors available.
        resistors: usize,
    },
}

impl fmt::Display for ConversionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConversionError::InvalidLadder { reason } => write!(f, "invalid ladder: {reason}"),
            ConversionError::InvalidAdc { reason } => write!(f, "invalid converter: {reason}"),
            ConversionError::TapOutOfRange { index, taps } => {
                write!(f, "tap {index} out of range (ladder has {taps} taps)")
            }
            ConversionError::ResistorOutOfRange { index, resistors } => write!(
                f,
                "resistor {index} out of range (ladder has {resistors} resistors)"
            ),
        }
    }
}

impl std::error::Error for ConversionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_variants() {
        let variants = vec![
            ConversionError::InvalidLadder { reason: "x".into() },
            ConversionError::InvalidAdc { reason: "y".into() },
            ConversionError::TapOutOfRange { index: 9, taps: 3 },
            ConversionError::ResistorOutOfRange {
                index: 9,
                resistors: 4,
            },
        ];
        for v in variants {
            assert!(!format!("{v}").is_empty());
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConversionError>();
    }
}
