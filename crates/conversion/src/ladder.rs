//! Resistor ladders generating the reference voltages of the conversion
//! block (the `Rc1..Rc3` / `R1..R16` elements of the paper).

use crate::ConversionError;

/// A series resistor ladder between a reference voltage and ground.
///
/// With `n` resistors the ladder produces `n − 1` tap voltages
/// `Vt1 < Vt2 < … < Vt(n−1)`, counted from the ground end.
#[derive(Clone, Debug, PartialEq)]
pub struct ResistorLadder {
    resistors: Vec<f64>,
    v_ref: f64,
}

impl ResistorLadder {
    /// Creates a ladder with explicit resistor values (bottom first).
    ///
    /// # Errors
    ///
    /// Returns [`ConversionError::InvalidLadder`] when fewer than two
    /// resistors are supplied or any value is not positive.
    pub fn new(resistors: Vec<f64>, v_ref: f64) -> Result<Self, ConversionError> {
        if resistors.len() < 2 {
            return Err(ConversionError::InvalidLadder {
                reason: "a ladder needs at least two resistors".to_owned(),
            });
        }
        if resistors.iter().any(|&r| r <= 0.0 || !r.is_finite()) {
            return Err(ConversionError::InvalidLadder {
                reason: "resistor values must be positive and finite".to_owned(),
            });
        }
        Ok(ResistorLadder { resistors, v_ref })
    }

    /// Creates a ladder of `count` equal resistors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResistorLadder::new`].
    pub fn uniform(count: usize, v_ref: f64) -> Result<Self, ConversionError> {
        Self::new(vec![1.0e3; count], v_ref)
    }

    /// The reference (top-rail) voltage.
    pub fn v_ref(&self) -> f64 {
        self.v_ref
    }

    /// Number of resistors.
    pub fn resistor_count(&self) -> usize {
        self.resistors.len()
    }

    /// Number of taps (reference voltages).
    pub fn tap_count(&self) -> usize {
        self.resistors.len() - 1
    }

    /// Resistor values, bottom (ground side) first.
    pub fn resistors(&self) -> &[f64] {
        &self.resistors
    }

    /// The tap voltages `Vt1..Vt(n−1)`, counted from the ground end.
    pub fn tap_voltages(&self) -> Vec<f64> {
        let total: f64 = self.resistors.iter().sum();
        let mut taps = Vec::with_capacity(self.tap_count());
        let mut acc = 0.0;
        for &r in &self.resistors[..self.resistors.len() - 1] {
            acc += r;
            taps.push(self.v_ref * acc / total);
        }
        taps
    }

    /// The voltage of tap `index` (1-based, like the paper's `Vt1..Vt15`).
    ///
    /// # Errors
    ///
    /// Returns [`ConversionError::TapOutOfRange`] when `index` is 0 or larger
    /// than the number of taps.
    pub fn tap_voltage(&self, index: usize) -> Result<f64, ConversionError> {
        if index == 0 || index > self.tap_count() {
            return Err(ConversionError::TapOutOfRange {
                index,
                taps: self.tap_count(),
            });
        }
        Ok(self.tap_voltages()[index - 1])
    }

    /// Returns a copy of the ladder with resistor `index` (1-based, bottom
    /// first) deviated by the relative amount `relative`.
    ///
    /// # Errors
    ///
    /// Returns [`ConversionError::ResistorOutOfRange`] for a bad index.
    pub fn with_deviation(
        &self,
        index: usize,
        relative: f64,
    ) -> Result<ResistorLadder, ConversionError> {
        if index == 0 || index > self.resistors.len() {
            return Err(ConversionError::ResistorOutOfRange {
                index,
                resistors: self.resistors.len(),
            });
        }
        let mut resistors = self.resistors.clone();
        resistors[index - 1] *= 1.0 + relative;
        ResistorLadder::new(resistors, self.v_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ladder_taps_are_evenly_spaced() {
        let l = ResistorLadder::uniform(16, 4.0).unwrap();
        assert_eq!(l.resistor_count(), 16);
        assert_eq!(l.tap_count(), 15);
        let taps = l.tap_voltages();
        for (i, &v) in taps.iter().enumerate() {
            let expected = 4.0 * (i + 1) as f64 / 16.0;
            assert!((v - expected).abs() < 1e-12, "tap {} = {v}", i + 1);
        }
        assert!((l.tap_voltage(8).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(l.v_ref(), 4.0);
    }

    #[test]
    fn deviation_shifts_taps_monotonically() {
        let l = ResistorLadder::uniform(16, 4.0).unwrap();
        // Increasing a bottom resistor raises every tap above it.
        let faulty = l.with_deviation(1, 0.5).unwrap();
        for k in 1..=15 {
            assert!(faulty.tap_voltage(k).unwrap() > l.tap_voltage(k).unwrap());
        }
        // Increasing the top resistor lowers every tap.
        let faulty_top = l.with_deviation(16, 0.5).unwrap();
        for k in 1..=15 {
            assert!(faulty_top.tap_voltage(k).unwrap() < l.tap_voltage(k).unwrap());
        }
        // The original ladder is untouched.
        assert!((l.tap_voltage(1).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_constructions_are_rejected() {
        assert!(matches!(
            ResistorLadder::new(vec![1.0], 4.0),
            Err(ConversionError::InvalidLadder { .. })
        ));
        assert!(matches!(
            ResistorLadder::new(vec![1.0, -1.0], 4.0),
            Err(ConversionError::InvalidLadder { .. })
        ));
        let l = ResistorLadder::uniform(4, 4.0).unwrap();
        assert!(matches!(
            l.tap_voltage(0),
            Err(ConversionError::TapOutOfRange { .. })
        ));
        assert!(matches!(
            l.tap_voltage(4),
            Err(ConversionError::TapOutOfRange { .. })
        ));
        assert!(matches!(
            l.with_deviation(0, 0.1),
            Err(ConversionError::ResistorOutOfRange { .. })
        ));
        assert!(matches!(
            l.with_deviation(5, 0.1),
            Err(ConversionError::ResistorOutOfRange { .. })
        ));
    }
}
