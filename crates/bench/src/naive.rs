//! Naive reference implementations of the three hot kernels, kept solely so
//! benchmarks can measure the optimized engines against their pre-overhaul
//! counterparts inside the same build.
//!
//! * [`NaiveBddManager`] — the previous BDD engine shape: `HashMap<Node,
//!   Bdd>` unique table (SipHash) plus unbounded `HashMap` apply/ite caches.
//! * [`naive_sweep`] — a frequency sweep that rebuilds the full MNA engine
//!   (stamping, allocation, factorization) at every sweep point, the cost
//!   profile of the pre-overhaul per-solve path.
//! * The serial fault-simulation baseline needs no copy here: the optimized
//!   crate still ships it as
//!   [`msatpg_digital::fault_sim::FaultSimulator::run_serial`].
//!
//! None of this module is used by the production flow.

use std::collections::HashMap;

use msatpg_analog::mna::Mna;
use msatpg_analog::netlist::{Circuit, NodeId};
use msatpg_analog::AnalogError;

/// Node reference of the naive BDD manager (index into its node vector).
pub type NaiveBdd = u32;

const NAIVE_ZERO: NaiveBdd = 0;
const NAIVE_ONE: NaiveBdd = 1;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct NaiveNode {
    var: u32,
    low: NaiveBdd,
    high: NaiveBdd,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum NaiveOp {
    And,
    Or,
    Xor,
}

/// Hash-consed BDD store with SipHash `HashMap` unique table and unbounded
/// `HashMap` operation caches — the layout the arena engine replaced.
#[derive(Default)]
pub struct NaiveBddManager {
    nodes: Vec<NaiveNode>,
    unique: HashMap<NaiveNode, NaiveBdd>,
    apply_cache: HashMap<(NaiveOp, NaiveBdd, NaiveBdd), NaiveBdd>,
    ite_cache: HashMap<(NaiveBdd, NaiveBdd, NaiveBdd), NaiveBdd>,
    var_count: u32,
}

impl NaiveBddManager {
    /// Creates an empty manager containing only the two terminals.
    pub fn new() -> Self {
        let terminal = NaiveNode {
            var: u32::MAX,
            low: NAIVE_ZERO,
            high: NAIVE_ONE,
        };
        NaiveBddManager {
            nodes: vec![terminal, terminal],
            ..Default::default()
        }
    }

    /// The constant-false terminal.
    pub fn zero(&self) -> NaiveBdd {
        NAIVE_ZERO
    }

    /// Declares the next variable and returns its positive literal.
    pub fn new_var(&mut self) -> NaiveBdd {
        let var = self.var_count;
        self.var_count += 1;
        self.mk_node(var, NAIVE_ZERO, NAIVE_ONE)
    }

    /// Number of internal nodes created so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 2
    }

    fn root_var(&self, f: NaiveBdd) -> u32 {
        if f <= 1 {
            u32::MAX
        } else {
            self.nodes[f as usize].var
        }
    }

    fn cofactors_at(&self, f: NaiveBdd, var: u32) -> (NaiveBdd, NaiveBdd) {
        if f <= 1 || self.root_var(f) != var {
            (f, f)
        } else {
            let n = self.nodes[f as usize];
            (n.low, n.high)
        }
    }

    fn mk_node(&mut self, var: u32, low: NaiveBdd, high: NaiveBdd) -> NaiveBdd {
        if low == high {
            return low;
        }
        let node = NaiveNode { var, low, high };
        if let Some(&existing) = self.unique.get(&node) {
            return existing;
        }
        let id = self.nodes.len() as NaiveBdd;
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    /// Logical negation (recursive — the naive engine has no complement
    /// edges, so `!f` materializes a full second copy of the function).
    pub fn not(&mut self, f: NaiveBdd) -> NaiveBdd {
        self.ite(f, NAIVE_ZERO, NAIVE_ONE)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: NaiveBdd, g: NaiveBdd) -> NaiveBdd {
        self.apply(NaiveOp::And, f, g)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: NaiveBdd, g: NaiveBdd) -> NaiveBdd {
        self.apply(NaiveOp::Or, f, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NaiveBdd, g: NaiveBdd) -> NaiveBdd {
        self.apply(NaiveOp::Xor, f, g)
    }

    /// If-then-else with an unbounded memo table.
    pub fn ite(&mut self, f: NaiveBdd, g: NaiveBdd, h: NaiveBdd) -> NaiveBdd {
        if f == NAIVE_ONE {
            return g;
        }
        if f == NAIVE_ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == NAIVE_ONE && h == NAIVE_ZERO {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.root_var(f).min(self.root_var(g)).min(self.root_var(h));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let result = self.mk_node(top, low, high);
        self.ite_cache.insert((f, g, h), result);
        result
    }

    fn apply(&mut self, op: NaiveOp, f: NaiveBdd, g: NaiveBdd) -> NaiveBdd {
        match op {
            NaiveOp::And => {
                if f == NAIVE_ZERO || g == NAIVE_ZERO {
                    return NAIVE_ZERO;
                }
                if f == NAIVE_ONE {
                    return g;
                }
                if g == NAIVE_ONE {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            NaiveOp::Or => {
                if f == NAIVE_ONE || g == NAIVE_ONE {
                    return NAIVE_ONE;
                }
                if f == NAIVE_ZERO {
                    return g;
                }
                if g == NAIVE_ZERO {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            NaiveOp::Xor => {
                if f == g {
                    return NAIVE_ZERO;
                }
                if f == NAIVE_ZERO {
                    return g;
                }
                if g == NAIVE_ZERO {
                    return f;
                }
            }
        }
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = self.apply_cache.get(&(op, f, g)) {
            return r;
        }
        let top = self.root_var(f).min(self.root_var(g));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let low = self.apply(op, f0, g0);
        let high = self.apply(op, f1, g1);
        let result = self.mk_node(top, low, high);
        self.apply_cache.insert((op, f, g), result);
        result
    }
}

/// Builds the carry-out of an n-bit adder in a naive manager (same function
/// as the `bdd_ops` bench builds in the optimized one).
pub fn naive_carry_chain(manager: &mut NaiveBddManager, bits: usize) -> NaiveBdd {
    let mut carry = manager.zero();
    for _ in 0..bits {
        let a = manager.new_var();
        let b = manager.new_var();
        let ab = manager.and(a, b);
        let axb = manager.xor(a, b);
        let ac = manager.and(axb, carry);
        carry = manager.or(ab, ac);
    }
    carry
}

/// The `bdd_memory` carry workload on the naive engine: the n-bit carry
/// chain plus **both stuck-at activation conditions** of every stage's
/// carry line (a fault *l* s-a-1 activates with `NOT f_l`, s-a-0 with
/// `f_l` — exactly what BDD_FTEST materializes per fault target).  Without
/// complement edges every negation stores a full second copy of the
/// function.
pub fn naive_carry_chain_with_activations(manager: &mut NaiveBddManager, bits: usize) -> NaiveBdd {
    let mut carry = manager.zero();
    let mut lines = Vec::with_capacity(bits);
    for _ in 0..bits {
        let a = manager.new_var();
        let b = manager.new_var();
        let ab = manager.and(a, b);
        let axb = manager.xor(a, b);
        let ac = manager.and(axb, carry);
        carry = manager.or(ab, ac);
        lines.push(carry);
    }
    for &line in &lines {
        let _ = manager.not(line);
    }
    carry
}

/// Builds the fault-free function of every signal of `netlist` over its
/// primary inputs on the naive engine — the `DigitalAtpg::new` workload of
/// the Example-3 constrained runs.  The ISCAS-style benchmarks are
/// NAND/NOR-heavy, so the naive engine materializes the negation of almost
/// every gate output.  Returns the total node population of the build.
pub fn naive_signal_functions(netlist: &msatpg_digital::netlist::Netlist) -> usize {
    use msatpg_digital::gate::GateKind;
    let mut m = NaiveBddManager::new();
    let mut values: Vec<Option<NaiveBdd>> = vec![None; netlist.signal_count()];
    for &pi in netlist.primary_inputs() {
        values[pi.index()] = Some(m.new_var());
    }
    for gate in netlist.gates() {
        let ins: Vec<NaiveBdd> = gate
            .inputs
            .iter()
            .map(|i| values[i.index()].expect("topological order"))
            .collect();
        let fold_and =
            |m: &mut NaiveBddManager| ins.iter().skip(1).fold(ins[0], |a, &b| m.and(a, b));
        let fold_or = |m: &mut NaiveBddManager| ins.iter().skip(1).fold(ins[0], |a, &b| m.or(a, b));
        let fold_xor =
            |m: &mut NaiveBddManager| ins.iter().skip(1).fold(ins[0], |a, &b| m.xor(a, b));
        let out = match gate.kind {
            GateKind::Buf => ins[0],
            GateKind::Not => m.not(ins[0]),
            GateKind::And => fold_and(&mut m),
            GateKind::Nand => {
                let t = fold_and(&mut m);
                m.not(t)
            }
            GateKind::Or => fold_or(&mut m),
            GateKind::Nor => {
                let t = fold_or(&mut m);
                m.not(t)
            }
            GateKind::Xor => fold_xor(&mut m),
            GateKind::Xnor => {
                let t = fold_xor(&mut m);
                m.not(t)
            }
        };
        values[gate.output.index()] = Some(out);
    }
    m.node_count()
}

/// Frequency sweep that pays the full pre-overhaul cost per point: a fresh
/// MNA engine (stamping + allocation + factorization) for every frequency.
///
/// # Errors
///
/// Propagates solver errors.
pub fn naive_sweep(
    circuit: &Circuit,
    source: &str,
    output: NodeId,
    frequencies: &[f64],
) -> Result<Vec<(f64, f64)>, AnalogError> {
    frequencies
        .iter()
        .map(|&f| {
            let mna = Mna::new(circuit);
            mna.gain(source, output, f).map(|g| (f, g))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msatpg_analog::filters;
    use msatpg_analog::response::{FrequencyResponse, SweepConfig};
    use msatpg_bdd::BddManager;

    #[test]
    fn complement_engine_stores_fewer_nodes_than_naive() {
        let mut naive = NaiveBddManager::new();
        let naive_carry = naive_carry_chain(&mut naive, 8);
        let mut arena = BddManager::new();
        let carry = crate::adder_carry_chain(&mut arena, 8);
        // Same function under the same variable order, but the complement
        // engine stores only one polarity of every subfunction: its total
        // population is strictly smaller than the naive engine's.
        assert!(
            arena.stats().node_count < naive.node_count(),
            "complement edges must shrink the unique table: {} vs naive {}",
            arena.stats().node_count,
            naive.node_count()
        );
        assert!(naive_carry > 1);
        assert!(!carry.is_terminal());
    }

    #[test]
    fn naive_sweep_matches_optimized_sweep() {
        let filter = filters::second_order_band_pass();
        let config = SweepConfig {
            start_hz: 10.0,
            stop_hz: 100.0e3,
            points_per_decade: 5,
        };
        let freqs = config.frequencies();
        let naive = naive_sweep(filter.circuit(), "Vin", filter.output_node(), &freqs).unwrap();
        let fast = FrequencyResponse::sweep(filter.circuit(), "Vin", filter.output_node(), &config)
            .unwrap();
        assert_eq!(naive.len(), fast.points().len());
        for ((f1, g1), (f2, g2)) in naive.iter().zip(fast.points()) {
            assert_eq!(f1, f2);
            assert!((g1 - g2).abs() < 1e-12);
        }
    }
}
