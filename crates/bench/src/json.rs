//! A minimal JSON reader for the benchmark harness.
//!
//! The container builds offline (no `serde`), but the perf-regression smoke
//! job must read the committed `BENCH_kernels.json` baseline back.  This is
//! a small recursive-descent parser covering exactly the JSON this
//! workspace writes: objects, arrays, strings (with the common escapes),
//! numbers, booleans and `null`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// benchmark harness writes).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.  Key order is not preserved (sorted map) — irrelevant for
    /// baseline lookups.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Element of an array by index.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(value) => Some(value),
            _ => None,
        }
    }

    /// Walks a dotted path of object keys (`"bdd.speedup"`).
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |node, key| node.get(key))
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the first
/// syntax error, or on trailing non-whitespace input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected '{literal}' at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid UTF-8")?,
                );
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(parse("-3.25e2").unwrap(), Json::Number(-325.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u00e9\"").unwrap(),
            Json::String("a\n\"b\u{e9}".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, 2, {"b": true}], "c": {"d": "x"}}"#).unwrap();
        assert_eq!(doc.path("c.d").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("a").and_then(|a| a.at(1)).and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            doc.get("a")
                .and_then(|a| a.at(2))
                .and_then(|o| o.get("b"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err(), "trailing input");
    }

    #[test]
    fn round_trips_the_committed_baseline_shape() {
        // The exact shape `bench_kernels` writes.
        let doc = parse(
            r#"{
  "fault_sim": [
    {"circuit": "c1355", "speedup": 21.13, "ppsfp_patterns_per_sec": 143217.2}
  ],
  "ppsfp_thread_scaling": {"host_cpus": 1, "floor_enforced": false,
    "rows": [{"workers": 1, "seconds": 0.001707, "speedup": 1.00}]},
  "bdd": {"speedup": 1.27},
  "analog": {"naive_speedup": 6.18}
}"#,
        )
        .unwrap();
        assert_eq!(doc.path("bdd.speedup").and_then(Json::as_f64), Some(1.27));
        assert_eq!(
            doc.path("ppsfp_thread_scaling.floor_enforced")
                .and_then(Json::as_bool),
            Some(false)
        );
        let rows = doc
            .path("ppsfp_thread_scaling.rows")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(rows[0].get("workers").and_then(Json::as_f64), Some(1.0));
    }
}
