//! Kernel throughput benchmark: measures the three hot kernels of the
//! test-generation loop (PPSFP fault simulation, arena-BDD construction,
//! factorization-reusing analog sweeps) against their naive counterparts and
//! writes a machine-readable `BENCH_kernels.json` so future PRs can track
//! the performance trajectory.
//!
//! Run with `cargo run --release -p msatpg-bench --bin bench_kernels`.
//!
//! With `-- --check` the binary becomes the CI perf-regression smoke job:
//! it re-measures the kernels, compares the speedups against the committed
//! `BENCH_kernels.json` baseline with a generous tolerance (shared CI
//! runners are noisy), leaves the baseline file untouched, and exits
//! non-zero on a regression.  Multi-core scaling floors stay gated on the
//! host CPU count, exactly as in record mode.

use std::fmt::Write as _;
use std::time::Instant;

use msatpg_analog::filters;
use msatpg_analog::mna::Mna;
use msatpg_analog::response::{FrequencyResponse, SweepConfig};
use msatpg_bdd::{Bdd, BddBudget, BddManager};
use msatpg_bench::json::{self, Json};
use msatpg_bench::naive::{
    naive_carry_chain, naive_carry_chain_with_activations, naive_signal_functions, naive_sweep,
    NaiveBddManager,
};
use msatpg_bench::{
    adder_carry_chain, adder_carry_chain_with_activations, mux_tree, signal_functions,
};
use msatpg_conversion::constraints::thermometer_codes;
use msatpg_core::constraint::{constraint_bdd, declare_input_variables};
use msatpg_core::{pi_order, DigitalAtpg, StaticOrder};
use msatpg_digital::benchmarks;
use msatpg_digital::fault::FaultList;
use msatpg_digital::fault_sim::{FaultCones, FaultSimulator, WordWidth};
use msatpg_digital::prng::SplitMix64;
use msatpg_exec::ExecPolicy;

/// Times one closure, running it `reps` times and returning seconds/run.
fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One warm-up run.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

struct FaultSimReport {
    circuit: String,
    gates: usize,
    faults: usize,
    patterns: usize,
    serial_seconds: f64,
    ppsfp_seconds: f64,
    speedup: f64,
    ppsfp_patterns_per_sec: f64,
}

fn bench_fault_sim(name: &str, pattern_count: usize) -> FaultSimReport {
    let netlist = benchmarks::by_name(name).expect("known benchmark");
    let faults = FaultList::collapsed(&netlist);
    let mut rng = SplitMix64::new(0xBE7C);
    let width = netlist.primary_inputs().len();
    let patterns: Vec<Vec<bool>> = (0..pattern_count)
        .map(|_| (0..width).map(|_| rng.bool()).collect())
        .collect();
    let sim = FaultSimulator::new(&netlist);
    // Sanity: the engines must agree before we time them.
    let fast = sim.run(&faults, &patterns).expect("ppsfp run");
    let slow = sim.run_serial(&faults, &patterns).expect("serial run");
    assert_eq!(
        fast.detected().len(),
        slow.detected().len(),
        "engines disagree on {name}"
    );
    let serial_seconds = time(3, || {
        std::hint::black_box(sim.run_serial(&faults, &patterns).unwrap());
    });
    let ppsfp_seconds = time(5, || {
        std::hint::black_box(sim.run(&faults, &patterns).unwrap());
    });
    FaultSimReport {
        circuit: name.to_owned(),
        gates: netlist.gate_count(),
        faults: faults.len(),
        patterns: pattern_count,
        serial_seconds,
        ppsfp_seconds,
        speedup: serial_seconds / ppsfp_seconds,
        ppsfp_patterns_per_sec: pattern_count as f64 / ppsfp_seconds,
    }
}

struct WideRow {
    lanes: usize,
    seconds: f64,
    patterns_per_sec: f64,
    speedup_vs_w1: f64,
}

struct WideFaultSimReport {
    circuit: String,
    faults: usize,
    patterns: usize,
    rows: Vec<WideRow>,
}

/// Deterministic (same-host, same-build) floor on the W = 8 patterns/sec
/// over the one-lane engine.  Only meaningful at `--release`, where the
/// explicit lane loops vectorize; a debug build records the rows but skips
/// the floor.
const WIDE_SPEEDUP_FLOOR: f64 = 2.0;

/// Throughput of the widened PPSFP blocks: the same campaign at W = 1, 4
/// and 8 lanes (64/256/512 patterns per cone walk).  Fault dropping is
/// disabled so every width performs the identical maximal propagation work
/// and the rows isolate the widening, not drop timing.
fn bench_fault_sim_wide(name: &str, pattern_count: usize) -> WideFaultSimReport {
    let netlist = benchmarks::by_name(name).expect("known benchmark");
    let faults = FaultList::collapsed(&netlist);
    let mut rng = SplitMix64::new(0x51BD);
    let width = netlist.primary_inputs().len();
    let patterns: Vec<Vec<bool>> = (0..pattern_count)
        .map(|_| (0..width).map(|_| rng.bool()).collect())
        .collect();
    let widths = [
        (WordWidth::W1, 1usize),
        (WordWidth::W4, 4),
        (WordWidth::W8, 8),
    ];
    // Cones are a per-campaign precomputation (width-invariant, reused
    // across every block and restart — see `FaultSimulator::run_with_cones`),
    // so they stay outside the timed region: the row measures pattern
    // throughput of the propagation engine itself.
    let cones = FaultCones::build(&netlist, faults.faults().iter().map(|f| f.signal));
    // Determinism sanity before timing: the wide engines must reproduce the
    // one-lane detected vector exactly.
    let reference = FaultSimulator::new(&netlist)
        .with_fault_dropping(false)
        .with_word_width(WordWidth::W1)
        .run_with_cones(&faults, &patterns, &cones)
        .expect("one-lane run");
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for (word_width, lanes) in widths {
        let sim = FaultSimulator::new(&netlist)
            .with_fault_dropping(false)
            .with_word_width(word_width);
        let check = sim
            .run_with_cones(&faults, &patterns, &cones)
            .expect("wide run");
        assert_eq!(
            check.detected(),
            reference.detected(),
            "{name}: {lanes}-lane run must be byte-identical to one lane"
        );
        let seconds = time(5, || {
            std::hint::black_box(sim.run_with_cones(&faults, &patterns, &cones).unwrap());
        });
        if lanes == 1 {
            baseline = seconds;
        }
        rows.push(WideRow {
            lanes,
            seconds,
            patterns_per_sec: pattern_count as f64 / seconds,
            speedup_vs_w1: baseline / seconds,
        });
    }
    WideFaultSimReport {
        circuit: name.to_owned(),
        faults: faults.len(),
        patterns: pattern_count,
        rows,
    }
}

struct ScalingRow {
    workers: usize,
    seconds: f64,
    speedup: f64,
}

struct ThreadScalingReport {
    circuit: String,
    faults: usize,
    patterns: usize,
    host_cpus: usize,
    /// Whether the ≥1.5× floor at 4 workers is enforced on this host (it
    /// requires ≥4 hardware threads; a 1-CPU container records the rows but
    /// cannot physically speed up).
    floor_enforced: bool,
    rows: Vec<ScalingRow>,
}

/// Thread-scaling of the PPSFP engine: the same fault universe and pattern
/// set timed at 1, 2, 4 and `available_parallelism` workers.  Fault dropping
/// is disabled so every worker count performs the identical (maximal) amount
/// of cone propagation and the rows measure pool scaling, not drop timing.
fn bench_ppsfp_scaling(name: &str, pattern_count: usize) -> ThreadScalingReport {
    let netlist = benchmarks::by_name(name).expect("known benchmark");
    let faults = FaultList::collapsed(&netlist);
    let cones = FaultCones::build(&netlist, faults.faults().iter().map(|f| f.signal));
    let mut rng = SplitMix64::new(0x5CA1E);
    let width = netlist.primary_inputs().len();
    let patterns: Vec<Vec<bool>> = (0..pattern_count)
        .map(|_| (0..width).map(|_| rng.bool()).collect())
        .collect();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut worker_counts = vec![1usize, 2, 4];
    if !worker_counts.contains(&host_cpus) {
        worker_counts.push(host_cpus);
    }
    // Determinism sanity before timing: every worker count must reproduce
    // the serial detected vector exactly.
    let reference = FaultSimulator::new(&netlist)
        .with_fault_dropping(false)
        .run_with_cones(&faults, &patterns, &cones)
        .expect("serial scaling run");
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for &workers in &worker_counts {
        let sim = FaultSimulator::new(&netlist)
            .with_fault_dropping(false)
            .with_policy(ExecPolicy::Threads(workers));
        let check = sim
            .run_with_cones(&faults, &patterns, &cones)
            .expect("scaling run");
        assert_eq!(
            check.detected(),
            reference.detected(),
            "{name}: {workers}-worker run must be byte-identical to serial"
        );
        let seconds = time(5, || {
            std::hint::black_box(sim.run_with_cones(&faults, &patterns, &cones).unwrap());
        });
        if workers == 1 {
            baseline = seconds;
        }
        rows.push(ScalingRow {
            workers,
            seconds,
            speedup: baseline / seconds,
        });
    }
    ThreadScalingReport {
        circuit: name.to_owned(),
        faults: faults.len(),
        patterns: pattern_count,
        host_cpus,
        floor_enforced: host_cpus >= 4,
        rows,
    }
}

struct PipelinedScalingReport {
    circuit: String,
    faults: usize,
    host_cpus: usize,
    /// Whether any multi-core floor could be enforced on this host (needs
    /// ≥4 hardware threads; a 1-CPU container records the rows but cannot
    /// physically speed up).
    floor_enforced: bool,
    rows: Vec<ScalingRow>,
}

/// Thread-scaling of the whole pipelined ATPG campaign driver (covered-fault
/// pre-screen, generation, PPSFP verification) at 1, 2 and 4 workers — the
/// end-to-end counterpart of `ppsfp_thread_scaling`'s kernel rows.
fn bench_pipelined_scaling(name: &str) -> PipelinedScalingReport {
    let netlist = benchmarks::by_name(name).expect("known benchmark");
    let faults = FaultList::collapsed(&netlist);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Determinism sanity before timing: the pipelined driver must report
    // byte-identically at every worker count.
    let reference = DigitalAtpg::new(&netlist).run(&faults).expect("campaign");
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for workers in [1usize, 2, 4] {
        let build = || DigitalAtpg::new(&netlist).with_policy(ExecPolicy::Threads(workers));
        let check = build().run(&faults).expect("campaign");
        assert_eq!(
            check.detected, reference.detected,
            "{name} at {workers} workers"
        );
        assert_eq!(
            check.vectors, reference.vectors,
            "{name} at {workers} workers"
        );
        let seconds = time(3, || {
            std::hint::black_box(build().run(&faults).unwrap());
        });
        if workers == 1 {
            baseline = seconds;
        }
        rows.push(ScalingRow {
            workers,
            seconds,
            speedup: baseline / seconds,
        });
    }
    PipelinedScalingReport {
        circuit: name.to_owned(),
        faults: faults.len(),
        host_cpus,
        floor_enforced: host_cpus >= 4,
        rows,
    }
}

struct BddReport {
    carry_bits: usize,
    naive_seconds: f64,
    arena_seconds: f64,
    speedup: f64,
    arena_ops_per_sec: f64,
    apply_hit_rate: f64,
    mux_selects: usize,
    ite_hit_rate: f64,
}

fn bench_bdd(bits: usize) -> BddReport {
    // Each adder stage performs 4 manager operations (and, xor, and, or).
    let ops = 4 * bits;
    let naive_seconds = time(10, || {
        let mut m = NaiveBddManager::new();
        std::hint::black_box(naive_carry_chain(&mut m, bits));
    });
    let arena_seconds = time(10, || {
        let mut m = BddManager::new();
        std::hint::black_box(adder_carry_chain(&mut m, bits));
    });
    // Hit rates from one representative build each.  The carry chain
    // lowers to and/xor/or and never calls `ite`, so its ITE hit rate is a
    // meaningless 0.0000 (the 0 recorded by earlier baselines); the ITE
    // cache is measured on the mux-tree workload, whose sibling sub-trees
    // re-ask the same (f, g, h) triples at every level.
    let mut m = BddManager::new();
    let _ = adder_carry_chain(&mut m, bits);
    let stats = m.stats();
    const MUX_SELECTS: usize = 10;
    let mut mux = BddManager::new();
    let _ = mux_tree(&mut mux, MUX_SELECTS);
    BddReport {
        carry_bits: bits,
        naive_seconds,
        arena_seconds,
        speedup: naive_seconds / arena_seconds,
        arena_ops_per_sec: ops as f64 / arena_seconds,
        apply_hit_rate: stats.apply_cache.hit_rate(),
        mux_selects: MUX_SELECTS,
        ite_hit_rate: mux.stats().ite_cache.hit_rate(),
    }
}

/// Memory profile of the complement-edged, garbage-collected BDD engine
/// against the naive (no-complement, no-GC) reference on the two builds the
/// paper's flow leans on.  All numbers are node counts — deterministic, so
/// `--check` enforces the floors exactly (no timing tolerance needed).
struct BddMemoryReport {
    /// Bits of the carry-chain workload (chain + both stuck-at activation
    /// polarities per stage line).
    carry_bits: usize,
    /// Peak unique-table population of the naive engine on the carry
    /// workload.
    carry_naive_nodes: usize,
    /// Peak unique-table population of the complement-edged engine.
    carry_complement_nodes: usize,
    /// naive / complement (the acceptance floor is 1.5).
    carry_reduction: f64,
    /// Digital block of the Example-3 measurement.
    example3_circuit: String,
    /// Naive population of the Example-3 signal-function build.
    example3_naive_nodes: usize,
    /// Complement-edged population of the same build.
    example3_complement_nodes: usize,
    /// naive / complement (floor 1.5).
    example3_reduction: f64,
    /// Live nodes before the GC demo pass (carry workload, every handle
    /// dropped except the final carry-out).
    gc_live_before: usize,
    /// Live nodes after the pass (= the protected function's size).
    gc_live_after: usize,
    /// Nodes swept onto the free list.
    gc_reclaimed: usize,
    /// Dead nodes at sweep time (`gc_live_before` minus the protected
    /// function's reachable size) — the reclaim fraction's denominator.
    gc_dead: usize,
    /// reclaimed / dead (floor 0.9; mark-and-sweep reclaims 100 %).
    gc_reclaim_fraction: f64,
}

/// Deterministic floor on the population reduction complement edges must
/// deliver on both `bdd_memory` workloads.
const BDD_MEMORY_REDUCTION_FLOOR: f64 = 1.5;
/// Deterministic floor on the GC reclaim fraction after dropping all but
/// one handle.
const BDD_MEMORY_RECLAIM_FLOOR: f64 = 0.9;

fn bench_bdd_memory(bits: usize, example3_circuit: &str) -> BddMemoryReport {
    // Carry workload: chain + activation conditions of both polarities.
    let mut naive = NaiveBddManager::new();
    let _ = naive_carry_chain_with_activations(&mut naive, bits);
    let carry_naive_nodes = naive.node_count();
    let mut m = BddManager::new();
    let carry = adder_carry_chain_with_activations(&mut m, bits);
    let carry_complement_nodes = m.stats().peak_live_nodes;
    // GC demo on the same manager: drop every handle except the final
    // carry-out, collect, and measure the reclaim rate over the dead set.
    let gc_live_before = m.live_node_count();
    m.protect(carry);
    let reachable = m.size(carry);
    let report = m.gc();
    let dead = gc_live_before - reachable;
    let gc_reclaim_fraction = if dead == 0 {
        1.0
    } else {
        report.reclaimed as f64 / dead as f64
    };
    // Example-3 workload: the constrained ATPG's symbolic netlist build
    // (NAND/NOR-heavy, so the naive engine stores both polarities of almost
    // every gate function).
    let netlist = benchmarks::by_name(example3_circuit).expect("known benchmark");
    let example3_naive_nodes = naive_signal_functions(&netlist);
    let mut m3 = BddManager::new();
    let _ = signal_functions(&mut m3, &netlist);
    let example3_complement_nodes = m3.stats().peak_live_nodes;
    BddMemoryReport {
        carry_bits: bits,
        carry_naive_nodes,
        carry_complement_nodes,
        carry_reduction: carry_naive_nodes as f64 / carry_complement_nodes as f64,
        example3_circuit: example3_circuit.to_owned(),
        example3_naive_nodes,
        example3_complement_nodes,
        example3_reduction: example3_naive_nodes as f64 / example3_complement_nodes as f64,
        gc_live_before,
        gc_live_after: report.live_after,
        gc_reclaimed: report.reclaimed,
        gc_dead: dead,
        gc_reclaim_fraction,
    }
}

/// The `bdd_memory` floors are exact node-count arithmetic, so they are
/// enforced identically in record mode and under `--check`.
fn check_bdd_memory(memory: &BddMemoryReport) -> Vec<String> {
    let mut violations = Vec::new();
    if memory.carry_reduction < BDD_MEMORY_REDUCTION_FLOOR {
        violations.push(format!(
            "bdd_memory carry-chain reduction {:.2}x < {BDD_MEMORY_REDUCTION_FLOOR}x \
             ({} naive vs {} complement nodes)",
            memory.carry_reduction, memory.carry_naive_nodes, memory.carry_complement_nodes
        ));
    }
    if memory.example3_reduction < BDD_MEMORY_REDUCTION_FLOOR {
        violations.push(format!(
            "bdd_memory {} reduction {:.2}x < {BDD_MEMORY_REDUCTION_FLOOR}x \
             ({} naive vs {} complement nodes)",
            memory.example3_circuit,
            memory.example3_reduction,
            memory.example3_naive_nodes,
            memory.example3_complement_nodes
        ));
    }
    if memory.gc_reclaim_fraction < BDD_MEMORY_RECLAIM_FLOOR {
        violations.push(format!(
            "bdd_memory gc reclaim fraction {:.2} < {BDD_MEMORY_RECLAIM_FLOOR} \
             ({} of {} dead nodes swept)",
            memory.gc_reclaim_fraction, memory.gc_reclaimed, memory.gc_dead
        ));
    }
    violations
}

/// Variable-ordering profile of the arena: each workload is built under a
/// deliberately bad static order inside a fixed [`BddBudget`] live-node cap
/// (an infallible build that would blow the cap panics, so merely finishing
/// *is* the enforcement), then sifted to convergence at a safe point with
/// every root protected.  All numbers are node counts — deterministic, so
/// `--check` compares them exactly against the committed baseline.
struct BddReorderReport {
    /// Bits of the order-sensitive pairs workload: `OR of (a_i AND b_i)`
    /// declared all-`a`s-then-all-`b`s.  The separated order is exponential
    /// in the pair count; the interleaved order sifting converges to is
    /// linear.
    pairs_bits: usize,
    /// Live nodes of the pairs function under the separated order.
    pairs_nodes_before: usize,
    /// Live nodes after sifting to convergence.
    pairs_nodes_after: usize,
    /// before / after (the acceptance floor is 1.5).
    pairs_reduction: f64,
    /// Adjacent-level swaps the sift spent converging.
    pairs_swaps: usize,
    /// Digital block of the reversed-order builds.
    example3_circuit: String,
    /// Live signal-function nodes under the declaration (netlist) order —
    /// the reference the static heuristics start from.
    example3_nodes_declared: usize,
    /// Live signal-function nodes under the reversed PI order, pre-sift.
    example3_nodes_reversed: usize,
    /// Live signal-function nodes after sifting the reversed build.
    example3_nodes_sifted: usize,
    /// reversed / sifted.
    example3_recovery: f64,
    /// c432 thermometer-code constraint BDD under the reversed order.
    c432_fc_nodes_reversed: usize,
    /// The same `Fc` after sifting.
    c432_fc_nodes_sifted: usize,
    /// reversed / sifted (thermometer `Fc` is near order-insensitive — the
    /// interesting datum is that it builds and sifts inside the cap).
    c432_fc_recovery: f64,
    /// c499 thermometer-code constraint BDD under the reversed order.
    c499_fc_nodes_reversed: usize,
    /// The same `Fc` after sifting.
    c499_fc_nodes_sifted: usize,
    /// reversed / sifted.
    c499_fc_recovery: f64,
    /// The armed live-node cap every reversed build ran under.
    node_cap: usize,
}

/// Deterministic floor on the node reduction sifting must recover on the
/// pairs workload (the ISSUE's "at least one workload" demonstration — the
/// separated-to-interleaved recovery is designed in, not incidental).
const BDD_REORDER_RECOVERY_FLOOR: f64 = 1.5;
/// Live-node cap armed for every reversed-order build.
const BDD_REORDER_NODE_CAP: usize = 1 << 20;

fn bench_bdd_reorder(pairs_bits: usize, example3_circuit: &str) -> BddReorderReport {
    // Pairs workload: the textbook order-sensitive function.  Declared
    // a0..a(n-1) then b0..b(n-1), `OR_i (a_i AND b_i)` needs ~2^n nodes;
    // sifting rediscovers the interleaved order where it needs ~3n.
    let n = pairs_bits / 2;
    let mut m = BddManager::new();
    m.set_budget(BddBudget::UNLIMITED.with_max_live_nodes(BDD_REORDER_NODE_CAP));
    let a: Vec<Bdd> = (0..n).map(|i| m.var(&format!("a{i}"))).collect();
    let b: Vec<Bdd> = (0..n).map(|i| m.var(&format!("b{i}"))).collect();
    let mut f = m.zero();
    for (&ai, &bi) in a.iter().zip(&b) {
        let pair = m.and(ai, bi);
        f = m.or(f, pair);
    }
    m.protect(f);
    m.gc();
    let pairs_nodes_before = m.live_node_count();
    let sift = m
        .try_sift_until_convergence()
        .expect("pairs sift stays within the node cap");
    let pairs_nodes_after = m.live_node_count();

    // Example-3 signal functions under the reversed PI order.  Pre-declaring
    // the variables pins the levels; `signal_functions`' own by-name
    // declarations become idempotent lookups, so the build is the real
    // generator's gate lowering under the bad order.
    let netlist = benchmarks::by_name(example3_circuit).expect("known benchmark");
    let mut reference = BddManager::new();
    let values = msatpg_bench::signal_functions(&mut reference, &netlist);
    for v in values.iter().flatten() {
        reference.protect(*v);
    }
    reference.gc();
    let example3_nodes_declared = reference.live_node_count();
    let mut m3 = BddManager::new();
    m3.set_budget(BddBudget::UNLIMITED.with_max_live_nodes(BDD_REORDER_NODE_CAP));
    for &pi in &pi_order(&netlist, StaticOrder::Reversed) {
        m3.var(netlist.signal_name(pi));
    }
    let values = msatpg_bench::signal_functions(&mut m3, &netlist);
    for v in values.iter().flatten() {
        m3.protect(*v);
    }
    m3.gc();
    let example3_nodes_reversed = m3.live_node_count();
    m3.try_sift_until_convergence()
        .expect("signal-function sift stays within the node cap");
    let example3_nodes_sifted = m3.live_node_count();

    // Table-4 constraint BDDs under the reversed order: thermometer codes
    // over the first 15 inputs, exactly the `Fc` the constrained campaigns
    // conjoin into every test cube.
    let fc_reversed = |name: &str| -> (usize, usize) {
        let netlist = benchmarks::by_name(name).expect("known benchmark");
        let mut m = BddManager::new();
        m.set_budget(BddBudget::UNLIMITED.with_max_live_nodes(BDD_REORDER_NODE_CAP));
        for &pi in &pi_order(&netlist, StaticOrder::Reversed) {
            m.var(netlist.signal_name(pi));
        }
        declare_input_variables(&mut m, &netlist);
        let lines = netlist.primary_inputs()[..15].to_vec();
        let fc = constraint_bdd(&mut m, &netlist, &lines, &thermometer_codes(15));
        m.protect(fc);
        m.gc();
        let reversed = m.live_node_count();
        m.try_sift_until_convergence()
            .expect("constraint sift stays within the node cap");
        (reversed, m.live_node_count())
    };
    let (c432_fc_nodes_reversed, c432_fc_nodes_sifted) = fc_reversed("c432");
    let (c499_fc_nodes_reversed, c499_fc_nodes_sifted) = fc_reversed("c499");

    BddReorderReport {
        pairs_bits,
        pairs_nodes_before,
        pairs_nodes_after,
        pairs_reduction: pairs_nodes_before as f64 / pairs_nodes_after as f64,
        pairs_swaps: sift.swaps,
        example3_circuit: example3_circuit.to_owned(),
        example3_nodes_declared,
        example3_nodes_reversed,
        example3_nodes_sifted,
        example3_recovery: example3_nodes_reversed as f64 / example3_nodes_sifted as f64,
        c432_fc_nodes_reversed,
        c432_fc_nodes_sifted,
        c432_fc_recovery: c432_fc_nodes_reversed as f64 / c432_fc_nodes_sifted as f64,
        c499_fc_nodes_reversed,
        c499_fc_nodes_sifted,
        c499_fc_recovery: c499_fc_nodes_reversed as f64 / c499_fc_nodes_sifted as f64,
        node_cap: BDD_REORDER_NODE_CAP,
    }
}

/// The `bdd_reorder` floors are exact node-count arithmetic, enforced
/// identically in record mode and under `--check`.
fn check_bdd_reorder(reorder: &BddReorderReport) -> Vec<String> {
    let mut violations = Vec::new();
    if reorder.pairs_reduction < BDD_REORDER_RECOVERY_FLOOR {
        violations.push(format!(
            "bdd_reorder pairs{}: sift recovered only {:.2}x ({} -> {} nodes; \
             floor {BDD_REORDER_RECOVERY_FLOOR}x)",
            reorder.pairs_bits,
            reorder.pairs_reduction,
            reorder.pairs_nodes_before,
            reorder.pairs_nodes_after
        ));
    }
    if reorder.pairs_swaps == 0 {
        violations.push("bdd_reorder pairs: sift converged without a single swap".to_owned());
    }
    if reorder.example3_nodes_sifted > reorder.example3_nodes_reversed {
        violations.push(format!(
            "bdd_reorder {}: sifting grew the reversed build ({} -> {} nodes)",
            reorder.example3_circuit,
            reorder.example3_nodes_reversed,
            reorder.example3_nodes_sifted
        ));
    }
    for (what, reversed) in [
        ("example3 signal functions", reorder.example3_nodes_reversed),
        ("c432 Fc", reorder.c432_fc_nodes_reversed),
        ("c499 Fc", reorder.c499_fc_nodes_reversed),
    ] {
        if reversed > reorder.node_cap {
            violations.push(format!(
                "bdd_reorder {what}: reversed build at {reversed} nodes exceeds the {} cap",
                reorder.node_cap
            ));
        }
    }
    violations
}

struct AnalogReport {
    filter: String,
    unknowns: usize,
    sweep_points: usize,
    naive_seconds: f64,
    cold_seconds: f64,
    warm_seconds: f64,
    naive_speedup: f64,
    warm_points_per_sec: f64,
}

fn bench_analog() -> AnalogReport {
    let filter = filters::fifth_order_chebyshev();
    let circuit = filter.circuit();
    let output = filter.output_node();
    let config = SweepConfig::default();
    let freqs = config.frequencies();
    // Naive: full engine rebuild per sweep point.
    let naive_seconds = time(3, || {
        std::hint::black_box(naive_sweep(circuit, "Vin", output, &freqs).unwrap());
    });
    // Cold: one engine, first pass assembles + factors every frequency.
    let cold_seconds = time(3, || {
        let mna = Mna::new(circuit);
        std::hint::black_box(
            FrequencyResponse::sweep_with_mna(&mna, "Vin", output, &config).unwrap(),
        );
    });
    // Warm: repeated sweeps over a live engine hit the factorization cache.
    let mna = Mna::new(circuit);
    let _ = FrequencyResponse::sweep_with_mna(&mna, "Vin", output, &config).unwrap();
    let warm_seconds = time(10, || {
        std::hint::black_box(
            FrequencyResponse::sweep_with_mna(&mna, "Vin", output, &config).unwrap(),
        );
    });
    AnalogReport {
        filter: filter.name().to_owned(),
        unknowns: Mna::new(circuit).unknown_count(),
        sweep_points: freqs.len(),
        naive_seconds,
        cold_seconds,
        warm_seconds,
        naive_speedup: naive_seconds / warm_seconds,
        warm_points_per_sec: freqs.len() as f64 / warm_seconds,
    }
}

/// A measured speedup may regress to this fraction of the committed
/// baseline before `--check` fails: shared CI runners easily jitter 2x, so
/// the smoke job catches structural regressions (a kernel falling back to
/// the naive path), not noise.
const CHECK_RATIO: f64 = 0.4;

/// Compares the freshly measured speedups against the committed baseline.
/// Returns the list of violations (empty = pass).
fn check_against_baseline(
    baseline: &Json,
    fault_sim: &[FaultSimReport],
    wide: &[WideFaultSimReport],
    scaling: &ThreadScalingReport,
    bdd: &BddReport,
    analog: &AnalogReport,
) -> Vec<String> {
    let mut violations = Vec::new();
    // The widened-block floor is absolute, not ratio-toleranced: the W = 8
    // engine must sustain at least `WIDE_SPEEDUP_FLOOR`x the *committed*
    // one-lane patterns/sec.  Both numbers come from the same host class,
    // and the floor only means something where the lane loops vectorize,
    // so a debug build skips it (and says so).
    for report in wide {
        let committed_w1 = baseline
            .get("fault_sim_wide")
            .and_then(Json::as_array)
            .and_then(|entries| {
                entries.iter().find(|entry| {
                    entry.get("circuit").and_then(Json::as_str) == Some(report.circuit.as_str())
                })
            })
            .and_then(|entry| entry.get("rows"))
            .and_then(Json::as_array)
            .and_then(|rows| {
                rows.iter()
                    .find(|row| row.get("lanes").and_then(Json::as_f64) == Some(1.0))
            })
            .and_then(|row| row.get("patterns_per_sec"))
            .and_then(Json::as_f64);
        let measured_w8 = report
            .rows
            .iter()
            .find(|row| row.lanes == 8)
            .map(|row| row.patterns_per_sec)
            .expect("8-lane row is always measured");
        match committed_w1 {
            Some(committed) if cfg!(debug_assertions) => {
                eprintln!(
                    "note: debug build; skipping the {WIDE_SPEEDUP_FLOOR}x wide-block floor on {} \
                     (measured {measured_w8:.1} patterns/sec at 8 lanes vs committed {committed:.1} at 1)",
                    report.circuit
                );
            }
            Some(committed) => {
                if measured_w8 < committed * WIDE_SPEEDUP_FLOOR {
                    violations.push(format!(
                        "fault_sim_wide {}: {measured_w8:.1} patterns/sec at 8 lanes < \
                         {WIDE_SPEEDUP_FLOOR}x the committed one-lane {committed:.1}",
                        report.circuit
                    ));
                }
            }
            None => violations.push(format!(
                "fault_sim_wide {}: one-lane row missing from the committed baseline",
                report.circuit
            )),
        }
    }
    let mut ratio_check = |what: &str, measured: f64, committed: Option<f64>| match committed {
        Some(committed) => {
            if measured < committed * CHECK_RATIO {
                violations.push(format!(
                    "{what}: measured {measured:.2}x < {:.2}x ({:.0}% of committed {committed:.2}x)",
                    committed * CHECK_RATIO,
                    CHECK_RATIO * 100.0
                ));
            }
        }
        None => violations.push(format!("{what}: missing from the committed baseline")),
    };
    for report in fault_sim {
        let committed = baseline
            .get("fault_sim")
            .and_then(Json::as_array)
            .and_then(|rows| {
                rows.iter().find(|row| {
                    row.get("circuit").and_then(Json::as_str) == Some(report.circuit.as_str())
                })
            })
            .and_then(|row| row.get("speedup"))
            .and_then(Json::as_f64);
        ratio_check(
            &format!("fault_sim {} PPSFP speedup", report.circuit),
            report.speedup,
            committed,
        );
    }
    ratio_check(
        "bdd arena speedup",
        bdd.speedup,
        baseline.path("bdd.speedup").and_then(Json::as_f64),
    );
    ratio_check(
        "analog warm-sweep speedup",
        analog.naive_speedup,
        baseline.path("analog.naive_speedup").and_then(Json::as_f64),
    );
    // Multi-core floors stay gated on the CPU count of the *current* host:
    // committed rows from a machine with a different core count are not
    // comparable (the seed container records 1 CPU), so thread-scaling is
    // checked against the absolute 1.5x floor in `main`, never against the
    // baseline rows.
    let baseline_cpus = baseline
        .path("ppsfp_thread_scaling.host_cpus")
        .and_then(Json::as_f64);
    if baseline_cpus != Some(scaling.host_cpus as f64) {
        eprintln!(
            "note: committed scaling rows were recorded on {} CPU(s), this host has {}; \
             skipping baseline-relative scaling comparison",
            baseline_cpus.unwrap_or(0.0),
            scaling.host_cpus
        );
    }
    violations
}

fn main() {
    let check_mode = std::env::args().any(|arg| arg == "--check");
    let fault_sim: Vec<FaultSimReport> = ["c1355", "c1908"]
        .iter()
        .map(|name| bench_fault_sim(name, 256))
        .collect();
    let wide: Vec<WideFaultSimReport> = ["c1355", "c1908"]
        .iter()
        .map(|name| bench_fault_sim_wide(name, 512))
        .collect();
    let scaling = bench_ppsfp_scaling("c1355", 256);
    let pipelined = bench_pipelined_scaling("c432");
    let bdd = bench_bdd(24);
    let memory = bench_bdd_memory(24, "c432");
    let reorder = bench_bdd_reorder(24, "c432");
    let analog = bench_analog();

    let mut json = String::new();
    json.push_str("{\n  \"fault_sim\": [\n");
    for (i, r) in fault_sim.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"circuit\": \"{}\", \"gates\": {}, \"faults\": {}, \"patterns\": {}, \
             \"serial_seconds\": {:.6}, \"ppsfp_seconds\": {:.6}, \"speedup\": {:.2}, \
             \"ppsfp_patterns_per_sec\": {:.1}}}{}\n",
            r.circuit,
            r.gates,
            r.faults,
            r.patterns,
            r.serial_seconds,
            r.ppsfp_seconds,
            r.speedup,
            r.ppsfp_patterns_per_sec,
            if i + 1 < fault_sim.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"fault_sim_wide\": [\n");
    for (i, report) in wide.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"circuit\": \"{}\", \"faults\": {}, \"patterns\": {}, \"rows\": [",
            report.circuit, report.faults, report.patterns,
        );
        for (j, row) in report.rows.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"lanes\": {}, \"seconds\": {:.6}, \"patterns_per_sec\": {:.1}, \
                 \"speedup_vs_w1\": {:.2}}}{}",
                row.lanes,
                row.seconds,
                row.patterns_per_sec,
                row.speedup_vs_w1,
                if j + 1 < report.rows.len() { ", " } else { "" },
            );
        }
        let _ = write!(json, "]}}{}\n", if i + 1 < wide.len() { "," } else { "" },);
    }
    json.push_str("  ],\n");
    let _ = write!(
        json,
        "  \"ppsfp_thread_scaling\": {{\"circuit\": \"{}\", \"faults\": {}, \"patterns\": {}, \
         \"host_cpus\": {}, \"floor_enforced\": {}, \"rows\": [",
        scaling.circuit,
        scaling.faults,
        scaling.patterns,
        scaling.host_cpus,
        scaling.floor_enforced,
    );
    for (i, row) in scaling.rows.iter().enumerate() {
        let _ = write!(
            json,
            "{{\"workers\": {}, \"seconds\": {:.6}, \"speedup\": {:.2}}}{}",
            row.workers,
            row.seconds,
            row.speedup,
            if i + 1 < scaling.rows.len() { ", " } else { "" },
        );
    }
    json.push_str("]},\n");
    let _ = write!(
        json,
        "  \"pipelined_scaling\": {{\"circuit\": \"{}\", \"faults\": {}, \"host_cpus\": {}, \
         \"floor_enforced\": {}, \"rows\": [",
        pipelined.circuit, pipelined.faults, pipelined.host_cpus, pipelined.floor_enforced,
    );
    for (i, row) in pipelined.rows.iter().enumerate() {
        let _ = write!(
            json,
            "{{\"workers\": {}, \"seconds\": {:.6}, \"speedup\": {:.2}}}{}",
            row.workers,
            row.seconds,
            row.speedup,
            if i + 1 < pipelined.rows.len() {
                ", "
            } else {
                ""
            },
        );
    }
    json.push_str("]},\n");
    let _ = write!(
        json,
        "  \"bdd\": {{\"carry_bits\": {}, \"naive_seconds\": {:.6}, \"arena_seconds\": {:.6}, \
         \"speedup\": {:.2}, \"arena_ops_per_sec\": {:.1}, \"apply_hit_rate\": {:.4}, \
         \"mux_selects\": {}, \"ite_hit_rate\": {:.4}}},\n",
        bdd.carry_bits,
        bdd.naive_seconds,
        bdd.arena_seconds,
        bdd.speedup,
        bdd.arena_ops_per_sec,
        bdd.apply_hit_rate,
        bdd.mux_selects,
        bdd.ite_hit_rate,
    );
    let _ = write!(
        json,
        "  \"bdd_memory\": {{\"carry_bits\": {}, \"carry_naive_nodes\": {}, \
         \"carry_complement_nodes\": {}, \"carry_reduction\": {:.2}, \
         \"example3_circuit\": \"{}\", \"example3_naive_nodes\": {}, \
         \"example3_complement_nodes\": {}, \"example3_reduction\": {:.2}, \
         \"gc_live_before\": {}, \"gc_live_after\": {}, \"gc_reclaimed\": {}, \
         \"gc_reclaim_fraction\": {:.4}}},\n",
        memory.carry_bits,
        memory.carry_naive_nodes,
        memory.carry_complement_nodes,
        memory.carry_reduction,
        memory.example3_circuit,
        memory.example3_naive_nodes,
        memory.example3_complement_nodes,
        memory.example3_reduction,
        memory.gc_live_before,
        memory.gc_live_after,
        memory.gc_reclaimed,
        memory.gc_reclaim_fraction,
    );
    let _ = write!(
        json,
        "  \"bdd_reorder\": {{\"pairs_bits\": {}, \"pairs_nodes_before\": {}, \
         \"pairs_nodes_after\": {}, \"pairs_reduction\": {:.2}, \"pairs_swaps\": {}, \
         \"example3_circuit\": \"{}\", \"example3_nodes_declared\": {}, \
         \"example3_nodes_reversed\": {}, \"example3_nodes_sifted\": {}, \
         \"example3_recovery\": {:.2}, \"c432_fc_nodes_reversed\": {}, \
         \"c432_fc_nodes_sifted\": {}, \"c432_fc_recovery\": {:.2}, \
         \"c499_fc_nodes_reversed\": {}, \"c499_fc_nodes_sifted\": {}, \
         \"c499_fc_recovery\": {:.2}, \"node_cap\": {}}},\n",
        reorder.pairs_bits,
        reorder.pairs_nodes_before,
        reorder.pairs_nodes_after,
        reorder.pairs_reduction,
        reorder.pairs_swaps,
        reorder.example3_circuit,
        reorder.example3_nodes_declared,
        reorder.example3_nodes_reversed,
        reorder.example3_nodes_sifted,
        reorder.example3_recovery,
        reorder.c432_fc_nodes_reversed,
        reorder.c432_fc_nodes_sifted,
        reorder.c432_fc_recovery,
        reorder.c499_fc_nodes_reversed,
        reorder.c499_fc_nodes_sifted,
        reorder.c499_fc_recovery,
        reorder.node_cap,
    );
    let _ = write!(
        json,
        "  \"analog\": {{\"filter\": \"{}\", \"unknowns\": {}, \"sweep_points\": {}, \
         \"naive_seconds\": {:.6}, \"cold_seconds\": {:.6}, \"warm_seconds\": {:.6}, \
         \"naive_speedup\": {:.2}, \"warm_points_per_sec\": {:.1}}}\n",
        analog.filter,
        analog.unknowns,
        analog.sweep_points,
        analog.naive_seconds,
        analog.cold_seconds,
        analog.warm_seconds,
        analog.naive_speedup,
        analog.warm_points_per_sec,
    );
    json.push_str("}\n");

    if check_mode {
        let committed = std::fs::read_to_string("BENCH_kernels.json")
            .expect("--check needs the committed BENCH_kernels.json baseline");
        let baseline = json::parse(&committed).expect("committed baseline parses");
        let mut violations =
            check_against_baseline(&baseline, &fault_sim, &wide, &scaling, &bdd, &analog);
        // Node counts are exact and deterministic: beyond the static
        // floors, the measured counts must equal the committed baseline —
        // any drift means the engines (not the runner) changed, and the
        // baseline must be consciously re-recorded.
        violations.extend(check_bdd_memory(&memory));
        violations.extend(check_bdd_reorder(&reorder));
        let reorder_exact = [
            ("pairs_nodes_before", reorder.pairs_nodes_before),
            ("pairs_nodes_after", reorder.pairs_nodes_after),
            ("pairs_swaps", reorder.pairs_swaps),
            ("example3_nodes_declared", reorder.example3_nodes_declared),
            ("example3_nodes_reversed", reorder.example3_nodes_reversed),
            ("example3_nodes_sifted", reorder.example3_nodes_sifted),
            ("c432_fc_nodes_reversed", reorder.c432_fc_nodes_reversed),
            ("c432_fc_nodes_sifted", reorder.c432_fc_nodes_sifted),
            ("c499_fc_nodes_reversed", reorder.c499_fc_nodes_reversed),
            ("c499_fc_nodes_sifted", reorder.c499_fc_nodes_sifted),
        ];
        for (key, measured) in reorder_exact {
            match baseline
                .path(&format!("bdd_reorder.{key}"))
                .and_then(Json::as_f64)
            {
                Some(committed) if committed == measured as f64 => {}
                Some(committed) => violations.push(format!(
                    "bdd_reorder {key}: measured {measured} != committed {committed:.0} \
                     (node counts are deterministic; re-record the baseline if intended)"
                )),
                None => violations.push(format!(
                    "bdd_reorder {key}: missing from the committed baseline"
                )),
            }
        }
        let exact = [
            ("carry_naive_nodes", memory.carry_naive_nodes),
            ("carry_complement_nodes", memory.carry_complement_nodes),
            ("example3_naive_nodes", memory.example3_naive_nodes),
            (
                "example3_complement_nodes",
                memory.example3_complement_nodes,
            ),
            ("gc_live_before", memory.gc_live_before),
            ("gc_live_after", memory.gc_live_after),
            ("gc_reclaimed", memory.gc_reclaimed),
        ];
        for (key, measured) in exact {
            match baseline
                .path(&format!("bdd_memory.{key}"))
                .and_then(Json::as_f64)
            {
                Some(committed) if committed == measured as f64 => {}
                Some(committed) => violations.push(format!(
                    "bdd_memory {key}: measured {measured} nodes != committed {committed:.0} \
                     (node counts are deterministic; re-record the baseline if intended)"
                )),
                None => violations.push(format!(
                    "bdd_memory {key}: missing from the committed baseline"
                )),
            }
        }
        print!("{json}");
        if violations.is_empty() {
            eprintln!("perf check passed against the committed BENCH_kernels.json");
        } else {
            for violation in &violations {
                eprintln!("perf regression: {violation}");
            }
            std::process::exit(1);
        }
    } else {
        std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
        print!("{json}");
        eprintln!("wrote BENCH_kernels.json");
    }

    // The absolute floors below guard deliberate baseline-recording runs.
    // Under `--check` they are skipped: the smoke job's contract is the
    // baseline-relative tolerance of `check_against_baseline` (0.4x of the
    // committed speedups), and a hard 10x assert would bypass it on a noisy
    // shared runner.
    if check_mode {
        if scaling.floor_enforced {
            if let Some(four) = scaling.rows.iter().find(|r| r.workers == 4) {
                if four.speedup < 1.5 {
                    eprintln!(
                        "warning: PPSFP at 4 workers measured only {:.2}x over 1 worker on {} \
                         (floor 1.5x is advisory under --check; shared runners are noisy)",
                        four.speedup, scaling.circuit
                    );
                }
            }
        } else {
            eprintln!(
                "note: host has {} hardware thread(s) (< 4); multi-core scaling floors skipped — \
                 the ppsfp_thread_scaling and pipelined_scaling rows are recorded for reference \
                 only, since extra workers cannot physically speed up on this host",
                scaling.host_cpus
            );
        }
        return;
    }
    // Wide-block floor in record mode: deliberate baseline recordings must
    // demonstrate the widening actually pays on this build.  The floor
    // only means something where the lane loops vectorize, so debug builds
    // record the rows and say why the floor is skipped.
    for report in &wide {
        let w8 = report
            .rows
            .iter()
            .find(|r| r.lanes == 8)
            .expect("8-lane row is always measured");
        if cfg!(debug_assertions) {
            eprintln!(
                "note: debug build; the {WIDE_SPEEDUP_FLOOR}x wide-block floor on {} is recorded \
                 ({:.2}x at 8 lanes) but not enforced",
                report.circuit, w8.speedup_vs_w1
            );
        } else {
            assert!(
                w8.speedup_vs_w1 >= WIDE_SPEEDUP_FLOOR,
                "wide PPSFP at 8 lanes is only {:.2}x over 1 lane on {} (floor: {WIDE_SPEEDUP_FLOOR}x)",
                w8.speedup_vs_w1,
                report.circuit
            );
        }
    }
    for r in &fault_sim {
        assert!(
            r.speedup >= 10.0,
            "PPSFP speedup on {} ({} gates) is only {:.1}x (acceptance floor: 10x)",
            r.circuit,
            r.gates,
            r.speedup
        );
    }
    // Serial path must not regress from threading support: the 1-worker row
    // runs the inline path over the same cones as the plain PPSFP run above.
    // The scaling run disables fault dropping (strictly more propagation
    // work, empirically ~2x on the ISCAS circuits), so the guard is a loose
    // 6x — it catches structural regressions, not jitter.
    let serial_row = &scaling.rows[0];
    let plain = fault_sim
        .iter()
        .find(|r| r.circuit == scaling.circuit)
        .expect("scaling circuit is benchmarked");
    assert!(
        serial_row.seconds <= plain.ppsfp_seconds * 6.0,
        "serial PPSFP path regressed: {:.6}s at 1 worker vs {:.6}s plain run",
        serial_row.seconds,
        plain.ppsfp_seconds
    );
    if scaling.floor_enforced {
        let four = scaling
            .rows
            .iter()
            .find(|r| r.workers == 4)
            .expect("4-worker row is always measured");
        assert!(
            four.speedup >= 1.5,
            "PPSFP at 4 workers is only {:.2}x over 1 worker on {} (floor: 1.5x)",
            four.speedup,
            scaling.circuit
        );
    } else {
        eprintln!(
            "note: host has {} hardware thread(s); the 1.5x @ 4 workers floor needs >= 4 and is recorded but not enforced",
            scaling.host_cpus
        );
    }
    assert!(
        bdd.speedup >= 1.0,
        "arena BDD engine regressed vs naive: {:.2}x",
        bdd.speedup
    );
    assert!(
        analog.naive_speedup >= 1.0,
        "analog sweep reuse regressed vs naive: {:.2}x",
        analog.naive_speedup
    );
    let memory_violations = check_bdd_memory(&memory);
    assert!(
        memory_violations.is_empty(),
        "bdd_memory floors violated: {}",
        memory_violations.join("; ")
    );
    let reorder_violations = check_bdd_reorder(&reorder);
    assert!(
        reorder_violations.is_empty(),
        "bdd_reorder floors violated: {}",
        reorder_violations.join("; ")
    );
}
