//! Regenerates Table 3 of the paper: element deviations (E.D.) of the
//! fifth-order Chebyshev low-pass filter, with the analog block accessed
//! directly (case 1) and as part of the mixed circuit (case 2).
//!
//! Run with `cargo run --release -p msatpg-bench --bin table3_chebyshev`.

use msatpg_analog::coverage::CoverageGraph;
use msatpg_analog::sensitivity::WorstCaseAnalysis;
use msatpg_bench::example3_mixed_circuit;
use msatpg_core::report::{percent_or_dash, TextTable};
use msatpg_core::MixedSignalAtpg;

fn main() {
    let mixed = example3_mixed_circuit("c432");
    let filter = mixed.analog();
    println!("Table 3: {} (case 2 digital block: c432)\n", filter.name());

    // Case 1: the analog block alone — worst-case element deviations.
    let report = WorstCaseAnalysis::new(filter.circuit(), filter.parameters())
        .with_parameter_tolerance(0.05)
        .with_element_tolerance(0.05)
        .with_worst_case(false)
        .run()
        .expect("deviation analysis succeeds");
    let graph = CoverageGraph::from_report(&report);

    // Case 2: the analog block inside the mixed circuit — the same element
    // deviations, but each one must also be activatable and propagatable
    // through the conversion and digital blocks.
    let atpg = MixedSignalAtpg::new(mixed);
    let analog_tests = atpg
        .analog_tests(&report)
        .expect("analog test generation succeeds");

    let mut table = TextTable::new(
        "Element deviation (E.D.) per element, case 1 vs case 2",
        &[
            "element",
            "best parameter",
            "E.D. case 1 [%]",
            "E.D. case 2 [%]",
            "case-2 status",
        ],
    );
    for (_, element) in report.elements() {
        let best = graph.best_deviation(element);
        let best_parameter = report
            .rows()
            .iter()
            .filter(|r| &r.element == element)
            .filter_map(|r| r.detectable_deviation.map(|d| (r.parameter.clone(), d)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(p, _)| p)
            .unwrap_or_else(|| "-".to_owned());
        let entry = analog_tests.iter().find(|e| &e.element == element);
        let (case2, status) = match entry {
            Some(e) if e.outcome.is_tested() => (best, "tested"),
            Some(_) => (None, "not propagatable"),
            None => (None, "-"),
        };
        table.add_row(vec![
            element.clone(),
            best_parameter,
            percent_or_dash(best),
            percent_or_dash(case2),
            status.to_owned(),
        ]);
    }
    println!("{table}");
    println!(
        "paper: the elements are tested with the same accuracy in case 1 and case 2\n\
         (the conversion block does not degrade the achievable element deviations)."
    );
}
