//! Regenerates Example 2 of the paper: fault coverage of the Figure-3
//! digital circuit with and without the constraint `Fc = l0 + l2`.
//!
//! Run with `cargo run --release -p msatpg-bench --bin table_example2`.

use msatpg_bench::figure4_mixed_circuit;
use msatpg_core::digital_atpg::DigitalAtpg;
use msatpg_core::report::TextTable;
use msatpg_digital::fault::FaultList;

fn main() {
    let mixed = figure4_mixed_circuit();
    let digital = mixed.digital().clone();
    let lines = mixed.constrained_inputs();
    let codes = mixed.allowed_codes();

    let mut table = TextTable::new(
        "Example 2: Figure-3 circuit, 18 uncollapsed stuck-at faults",
        &["case", "#faults", "#undetectable", "undetectable faults"],
    );

    for (label, constrained, fault_list) in [
        ("alone (no constraints)", false, FaultList::all(&digital)),
        ("mixed, uncollapsed", true, FaultList::all(&digital)),
        ("mixed, collapsed", true, FaultList::collapsed(&digital)),
    ] {
        let mut atpg = DigitalAtpg::new(&digital);
        if constrained {
            atpg = atpg
                .with_constraints(&lines, &codes)
                .expect("constrained lines are primary inputs");
        }
        let report = atpg.run(&fault_list).expect("ATPG succeeds");
        let undetectable: Vec<String> = report
            .untestable
            .iter()
            .map(|f| f.describe(&digital))
            .collect();
        table.add_row(vec![
            label.to_owned(),
            report.total_faults.to_string(),
            report.untestable_count().to_string(),
            undetectable.join(", "),
        ]);
    }
    println!("{table}");
    println!(
        "paper: fully testable alone; 2 of the 18 uncollapsed faults (l0 s-a-1, l3 s-a-1)\n\
         become undetectable in the mixed circuit.  Our gate-level realization adds the\n\
         structurally equivalent fault on the OR output to the same class, so the\n\
         uncollapsed count is 3 and the collapsed count is 2."
    );
}
