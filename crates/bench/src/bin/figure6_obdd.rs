//! Regenerates Figure 6 of the paper: the OBDDs of the Figure-3 outputs
//! `Vo1` and `Vo2` when the conversion-block lines carry composite values,
//! and the propagating assignments read off those OBDDs.
//!
//! Run with `cargo run --release -p msatpg-bench --bin figure6_obdd`.

use std::collections::HashMap;

use msatpg_bdd::{to_dot, to_text_tree, BddManager};
use msatpg_core::PropagationEngine;
use msatpg_digital::circuits;
use msatpg_digital::logic::Logic;

fn main() {
    let circuit = circuits::figure3_circuit();
    // Build the output OBDDs symbolically with l0 := D and l2 := D' (the
    // composite values of the paper's walk-through) and l1, l4 free.
    let mut m = BddManager::new();
    let l1 = m.var("l1");
    let l4 = m.var("l4");
    let d = m.var("D"); // last in the ordering, as in the paper
    let l0 = d;
    let l2 = m.not(d); // D'
    let l3 = l2;
    let l6 = m.or(l0, l3);
    let l7 = m.or(l1, l2);
    let vo1 = m.and(l6, l7);
    let vo2 = m.and(l6, l4);

    println!("Figure 6: OBDDs of Vo1 and Vo2 with l0 = D, l2 = D'\n");
    println!("Vo1 (text tree):\n{}", to_text_tree(&m, vo1));
    println!("Vo2 (text tree):\n{}", to_text_tree(&m, vo2));
    println!("Vo1 (graphviz):\n{}", to_dot(&m, vo1, "Vo1"));
    println!("Vo2 (graphviz):\n{}", to_dot(&m, vo2, "Vo2"));

    // Propagating assignments: the outputs depend on D exactly when the
    // Boolean difference with respect to D is satisfiable.
    let d_var = m.var_index("D").unwrap();
    for (name, f) in [("Vo1", vo1), ("Vo2", vo2)] {
        let diff = m.boolean_difference(f, d_var);
        match m.sat_one(diff) {
            Some(cube) => println!(
                "{name}: the fault effect is observable; one propagating assignment: {cube}"
            ),
            None => println!("{name}: the fault effect cannot reach this output"),
        }
    }

    // Cross-check with the propagation engine on the actual netlist, for the
    // single-composite case the engine supports (D on l2, l0 fixed to 1).
    let engine = PropagationEngine::new(&circuit);
    let l0_sig = circuit.find_signal("l0").unwrap();
    let l2_sig = circuit.find_signal("l2").unwrap();
    let mut fixed = HashMap::new();
    fixed.insert(l0_sig, true);
    match engine
        .find_propagating_assignment(&fixed, l2_sig, Logic::D)
        .expect("engine runs")
    {
        Some(result) => {
            println!(
                "\npropagation engine: D on l2 (l0 = 1) observed at output #{} with assignment {:?}",
                result.observed_output,
                result
                    .external_assignment
                    .iter()
                    .map(|(s, v)| (circuit.signal_name(*s).to_owned(), *v))
                    .collect::<Vec<_>>()
            );
        }
        None => println!("\npropagation engine: no propagating assignment found"),
    }
}
