//! Regenerates Table 7 of the paper: conversion-block ladder-resistor
//! coverage when the block is part of the mixed circuit (the comparator used
//! to test a resistor must be propagatable through the constrained digital
//! block).
//!
//! Run with `cargo run --release -p msatpg-bench --bin table7_ladder_mixed`.

use msatpg_bench::example3_mixed_circuit;
use msatpg_core::report::{percent_or_dash, TextTable};
use msatpg_core::MixedSignalAtpg;

fn main() {
    for name in ["c432", "c499", "c1355"] {
        let mixed = example3_mixed_circuit(name);
        let atpg = MixedSignalAtpg::new(mixed);
        let entries = atpg
            .conversion_tests()
            .expect("conversion-block analysis succeeds");
        let mut table = TextTable::new(
            &format!("Table 7: ladder coverage with the digital block {name}"),
            &["E (resistor)", "tested through", "E.D. [%]"],
        );
        let mut untestable = 0usize;
        for entry in &entries {
            let through = match entry.comparator {
                Some(k) => format!("Vt{k}"),
                None => {
                    untestable += 1;
                    "-".to_owned()
                }
            };
            table.add_row(vec![
                format!("R{}", entry.resistor),
                through,
                percent_or_dash(entry.detectable_deviation),
            ]);
        }
        println!("{table}");
        println!("untestable reference resistors: {untestable}\n");
        eprintln!("{name}: done");
    }
    println!(
        "expected shape (paper, Table 7): compared with Table 6, a few resistors lose\n\
         their best comparator (dashed cells) or are tested with a worse deviation,\n\
         because the corresponding comparator flip cannot be propagated through the\n\
         constrained digital block."
    );
}
