//! Prints Table 1 of the paper: the stimulus-selection rules for each analog
//! parameter class and deviation direction, plus a concrete instantiation on
//! the band-pass filter of Example 1.
//!
//! Run with `cargo run --release -p msatpg-bench --bin table1_rules`.

use msatpg_analog::filters;
use msatpg_core::activation::{select_stimulus, table1, DeviationSign};
use msatpg_core::report::TextTable;

fn main() {
    let mut table = TextTable::new(
        "Table 1: test set of the analog circuit parameters",
        &[
            "parameter",
            "test condition",
            "amplitude",
            "frequency",
            "Vd (fault-free)",
            "Vd (faulty)",
            "composite",
        ],
    );
    for row in table1() {
        table.add_row(vec![
            row.parameter.to_owned(),
            row.condition.to_owned(),
            row.amplitude.to_owned(),
            row.frequency.to_owned(),
            row.fault_free.to_string(),
            row.faulty.to_string(),
            row.composite.to_owned(),
        ]);
    }
    println!("{table}");

    // Concrete instantiation on the band-pass filter: amplitude/frequency
    // actually chosen for each parameter at a 2 V comparator reference.
    let filter = filters::second_order_band_pass();
    let mut concrete = TextTable::new(
        "Concrete stimuli for the Example-1 band-pass filter (Vref = 2 V, x = 5%)",
        &[
            "parameter",
            "direction",
            "amplitude [V]",
            "frequency [Hz]",
            "fault-free Vd",
        ],
    );
    for parameter in filter.parameters() {
        for direction in [DeviationSign::Above, DeviationSign::Below] {
            match select_stimulus(&filter, parameter, direction, 0.05, 2.0) {
                Ok(plan) => {
                    concrete.add_row(vec![
                        parameter.name.clone(),
                        direction.to_string(),
                        format!("{:.4}", plan.stimulus.amplitude),
                        format!("{:.1}", plan.stimulus.frequency_hz),
                        if plan.fault_free_value { "1" } else { "0" }.to_owned(),
                    ]);
                }
                Err(err) => {
                    concrete.add_row(vec![
                        parameter.name.clone(),
                        direction.to_string(),
                        "-".to_owned(),
                        "-".to_owned(),
                        format!("({err})"),
                    ]);
                }
            }
        }
    }
    println!("{concrete}");
}
