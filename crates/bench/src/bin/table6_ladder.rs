//! Regenerates Table 6 of the paper: conversion-block ladder-resistor
//! coverage when the block's input and outputs are directly accessible.
//!
//! Run with `cargo run --release -p msatpg-bench --bin table6_ladder`.

use msatpg_bench::{EXAMPLE3_COMPARATORS, EXAMPLE3_VREF};
use msatpg_conversion::fault::ladder_coverage;
use msatpg_conversion::ResistorLadder;
use msatpg_core::report::{percent_or_dash, TextTable};

fn main() {
    let ladder =
        ResistorLadder::uniform(EXAMPLE3_COMPARATORS + 1, EXAMPLE3_VREF).expect("valid ladder");
    let coverage = ladder_coverage(&ladder, 0.05, 50.0).expect("coverage analysis succeeds");
    let all: Vec<usize> = (1..=coverage.comparator_count()).collect();

    let mut table = TextTable::new(
        "Table 6: conversion-circuit element coverage (direct access)",
        &["T (reference)", "E (resistors)", "E.D. [%]"],
    );
    for (comparator, resistors, deviation) in coverage.table_by_comparator(&all) {
        if resistors.is_empty() {
            continue;
        }
        let elements: Vec<String> = resistors.iter().map(|r| format!("R{r}")).collect();
        table.add_row(vec![
            format!("Vt{comparator}"),
            elements.join(","),
            percent_or_dash(deviation),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape (paper, Table 6): the detectable deviation rises from the ends of\n\
         the ladder toward the middle (R8/R9 are the hardest resistors to test) and falls\n\
         again toward the reference rail."
    );
}
