//! Regenerates the Example-1 matrix (Equation 1 of the paper): worst-case
//! element deviations of the second-order band-pass filter and the selected
//! analog test set.
//!
//! Run with `cargo run --release -p msatpg-bench --bin table_example1`.

use msatpg_analog::coverage::CoverageGraph;
use msatpg_analog::filters;
use msatpg_analog::sensitivity::WorstCaseAnalysis;
use msatpg_core::report::{percent_or_dash, TextTable};

fn main() {
    let filter = filters::second_order_band_pass();
    println!("Example 1: {}", filter.name());
    println!("parameter tolerance ±5%, fault-free element tolerance ±5% (worst case)\n");

    let report = WorstCaseAnalysis::new(filter.circuit(), filter.parameters())
        .with_parameter_tolerance(0.05)
        .with_element_tolerance(0.05)
        .with_worst_case(true)
        .run()
        .expect("worst-case analysis succeeds");

    let mut headers: Vec<&str> = vec!["T \\ E"];
    let element_names: Vec<String> = report.elements().iter().map(|(_, n)| n.clone()).collect();
    for name in &element_names {
        headers.push(name);
    }
    let mut table = TextTable::new("Worst-case element deviation [%] (Equation 1)", &headers);
    for parameter in report.parameters() {
        let mut row = vec![parameter.clone()];
        for element in &element_names {
            row.push(percent_or_dash(report.deviation(parameter, element)));
        }
        table.add_row(row);
    }
    println!("{table}");

    let graph = CoverageGraph::from_report(&report);
    let selection = graph.select_test_set();
    println!(
        "selected analog test set: {{{}}}",
        selection.parameters.join(", ")
    );
    let mut coverage_table = TextTable::new(
        "Element coverage achieved by the selected test set",
        &["element", "detectable deviation [%]"],
    );
    for (element, deviation) in &selection.element_coverage {
        coverage_table.add_row(vec![element.clone(), percent_or_dash(*deviation)]);
    }
    println!("{coverage_table}");
    println!(
        "coverage: {:.0}% of elements ({} uncoverable)",
        selection.coverage_ratio() * 100.0,
        graph.uncoverable_elements().len()
    );
}
