//! Prints the frequency responses of the paper's three analog circuits
//! (Figures 2, 7 and 8) so the nominal designs can be inspected/plotted.
//!
//! Run with `cargo run --release -p msatpg-bench --bin figure_responses`.

use msatpg_analog::filters;
use msatpg_analog::response::{FrequencyResponse, SweepConfig};
use msatpg_core::report::TextTable;

fn main() {
    let sweep = SweepConfig {
        start_hz: 1.0,
        stop_hz: 100.0e3,
        points_per_decade: 4,
    };
    let circuits = vec![
        filters::second_order_band_pass(),
        filters::fifth_order_chebyshev(),
        filters::state_variable_filter(),
    ];
    for filter in circuits {
        let output = filter.output_node();
        let response =
            FrequencyResponse::sweep(filter.circuit(), filter.input_source(), output, &sweep)
                .expect("sweep succeeds");
        let mut table = TextTable::new(
            &format!(
                "{} — magnitude response at '{}'",
                filter.name(),
                filter.output()
            ),
            &["frequency [Hz]", "|H| [V/V]", "|H| [dB]"],
        );
        for &(freq, gain) in response.points() {
            let db = if gain > 0.0 {
                20.0 * gain.log10()
            } else {
                f64::NEG_INFINITY
            };
            table.add_row(vec![
                format!("{freq:.1}"),
                format!("{gain:.4}"),
                format!("{db:.1}"),
            ]);
        }
        println!("{table}");
        let (f_peak, g_peak) = response.peak();
        println!("peak gain {g_peak:.3} at {f_peak:.1} Hz\n");
    }
}
