//! Regenerates Table 5 of the paper: through how many conversion-block
//! comparators can an analog fault *not* be propagated to a primary output,
//! for amplitude deviations below and above the tolerance.
//!
//! Run with `cargo run --release -p msatpg-bench --bin table5_propagation`.

use std::time::Instant;

use msatpg_bench::{example3_mixed_circuit, table4_benchmarks};
use msatpg_core::report::{seconds, TextTable};
use msatpg_core::AnalogAtpg;

fn main() {
    let mut table = TextTable::new(
        "Table 5: propagation of faulty parameters through the comparators",
        &[
            "circuit",
            "#PIs",
            "#PIs from conversion block",
            "#comparators blocking D (deviation < x%)",
            "#comparators blocking D' (deviation > x%)",
            "CPU [s]",
        ],
    );
    for name in table4_benchmarks() {
        let mixed = example3_mixed_circuit(name);
        let start = Instant::now();
        let study = AnalogAtpg::new(&mixed)
            .comparator_propagation_study()
            .expect("propagation study succeeds");
        let blocked_d = study.iter().filter(|&&(d, _)| !d).count();
        let blocked_dbar = study.iter().filter(|&&(_, dbar)| !dbar).count();
        table.add_row(vec![
            name.to_owned(),
            mixed.digital().primary_inputs().len().to_string(),
            mixed.constrained_inputs().len().to_string(),
            blocked_d.to_string(),
            blocked_dbar.to_string(),
            seconds(start.elapsed()),
        ]);
        eprintln!("{name}: done");
    }
    println!("{table}");
    println!(
        "expected shape (paper): only a few of the 15 comparators block propagation, so\n\
         almost every reference voltage of the conversion block remains testable."
    );
}
