//! Quick diagnostic: unconstrained OBDD-ATPG fault coverage of every
//! synthetic ISCAS85 stand-in (the baseline of Table 4).
//!
//! Run with `cargo run --release -p msatpg-bench --bin coverage_check`.

fn main() {
    for name in ["c432", "c499", "c880", "c1355", "c1908"] {
        let n = msatpg_digital::benchmarks::by_name(name).expect("known benchmark");
        let faults = msatpg_digital::fault::FaultList::collapsed(&n);
        let mut atpg = msatpg_core::digital_atpg::DigitalAtpg::new(&n);
        let r = atpg.run(&faults).expect("ATPG succeeds");
        println!(
            "{name}: gates={} faults={} untestable={} vect={} cov={:.3} cpu={:.2}s",
            n.gate_count(),
            faults.len(),
            r.untestable_count(),
            r.vector_count(),
            r.coverage(),
            r.cpu.as_secs_f64()
        );
    }
}
