//! Regenerates Table 8 of the paper: the state-variable-filter validation
//! board — computed worst-case component deviation (CD) versus the measured
//! parameter deviation (MPD) when a fault of that size is injected, plus the
//! propagation check through the 8-bit converter and the 4-bit adder.
//!
//! Run with `cargo run --release -p msatpg-bench --bin table8_state_variable`.

use msatpg_analog::fault::AnalogFault;
use msatpg_analog::params::measure;
use msatpg_analog::sensitivity::WorstCaseAnalysis;
use msatpg_analog::tolerance::relative_deviation;
use msatpg_bench::figure8_board_circuit;
use msatpg_core::report::TextTable;
use msatpg_core::MixedSignalAtpg;

fn main() {
    let mixed = figure8_board_circuit();
    let filter = mixed.analog().clone();
    println!(
        "Table 8: {} + AD7820-class converter + 4-bit adder\n",
        filter.name()
    );

    // Computed worst-case component deviations (CD).
    let report = WorstCaseAnalysis::new(filter.circuit(), filter.parameters())
        .with_parameter_tolerance(0.05)
        .with_element_tolerance(0.05)
        .with_worst_case(true)
        .run()
        .expect("worst-case analysis succeeds");

    // Propagation check through the digital block of the board.
    let atpg = MixedSignalAtpg::new(mixed);
    let analog_tests = atpg
        .analog_tests(&report)
        .expect("analog test generation succeeds");

    let mut table = TextTable::new(
        "Computed worst-case component deviation (CD) vs measured parameter deviation (MPD)",
        &[
            "T (parameter)",
            "C (component)",
            "CD [%]",
            "MPD [%]",
            "propagates",
        ],
    );
    for (element_id, element) in report.elements() {
        // Best parameter and CD for this component.
        let Some((parameter, cd)) = report
            .rows()
            .iter()
            .filter(|r| &r.element == element)
            .filter_map(|r| r.detectable_deviation.map(|d| (r.parameter.clone(), d)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        else {
            table.add_row(vec![
                "-".to_owned(),
                element.clone(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
            ]);
            continue;
        };
        // MPD: inject a fault of exactly CD (component value drops) and
        // measure the parameter deviation it produces.
        let spec = filter
            .parameters()
            .iter()
            .find(|p| p.name == parameter)
            .expect("parameter exists");
        let nominal = measure(filter.circuit(), spec).expect("nominal measurement");
        let faulty_circuit =
            AnalogFault::deviation(*element_id, -cd.min(0.95)).apply(filter.circuit());
        let faulty = measure(&faulty_circuit, spec).expect("faulty measurement");
        let mpd = relative_deviation(faulty, nominal).abs();
        let propagates = analog_tests
            .iter()
            .find(|e| &e.element == element)
            .map(|e| if e.outcome.is_tested() { "yes" } else { "no" })
            .unwrap_or("-");
        table.add_row(vec![
            parameter,
            element.clone(),
            format!("{:.1}", cd * 100.0),
            format!("{:.1}", mpd * 100.0),
            propagates.to_owned(),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape (paper, Table 8): every injected deviation of size CD pushes the\n\
         measured parameter out of its ±5% box (MPD ≥ 5%), the CD values are tens of\n\
         percent, and every fault propagates through the digital block — the worst-case\n\
         computation is pessimistic, so MPD often exceeds the 5% threshold by a margin."
    );
}
