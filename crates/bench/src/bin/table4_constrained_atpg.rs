//! Regenerates Table 4 of the paper: test-vector generation for the ISCAS85
//! benchmark circuits with and without the constraints imposed by the
//! 15-comparator conversion block.
//!
//! Run with `cargo run --release -p msatpg-bench --bin table4_constrained_atpg`.

use std::time::Instant;

use msatpg_bench::{example3_mixed_circuit, table4_benchmarks};
use msatpg_core::digital_atpg::DigitalAtpg;
use msatpg_core::report::{seconds, TextTable};
use msatpg_digital::fault::FaultList;
use msatpg_digital::fault_sim::FaultSimulator;
use msatpg_digital::random_tpg::RandomPatternGenerator;

fn main() {
    let mut table = TextTable::new(
        "Table 4: test vector generation with and without constraints",
        &[
            "circuit",
            "#PI",
            "#PO",
            "collapsed faults",
            "untestable (no constr.)",
            "#vect (no constr.)",
            "CPU [s] (no constr.)",
            "untestable (constr.)",
            "#vect (constr.)",
            "CPU [s] (constr.)",
        ],
    );
    for name in table4_benchmarks() {
        let mixed = example3_mixed_circuit(name);
        let digital = mixed.digital().clone();
        let faults = FaultList::collapsed(&digital);
        let lines = mixed.constrained_inputs();
        let codes = mixed.allowed_codes();

        // Case 1 (no constraints): as in the paper, random patterns are used
        // first to knock out the easy faults cheaply, and the deterministic
        // OBDD generator only targets the survivors.
        let free_start = Instant::now();
        let mut generator = RandomPatternGenerator::new(&digital, 1995);
        let random_patterns = generator.patterns(64);
        let sim = FaultSimulator::new(&digital);
        let random_result = sim
            .run(&faults, &random_patterns)
            .expect("fault simulation succeeds");
        let remaining = FaultList::from_faults(random_result.undetected().to_vec());
        let mut unconstrained = DigitalAtpg::new(&digital);
        let report_free = unconstrained.run(&remaining).expect("ATPG succeeds");
        let free_cpu = free_start.elapsed();
        let free_vectors = random_patterns.len() + report_free.vector_count();

        // Case 2 (with constraints): random patterns would mostly violate the
        // thermometer-code constraint, so every vector is generated
        // deterministically, as in the paper.
        let mut constrained = DigitalAtpg::new(&digital)
            .with_constraints(&lines, &codes)
            .expect("constrained lines are primary inputs");
        let report_constrained = constrained.run(&faults).expect("ATPG succeeds");

        table.add_row(vec![
            name.to_owned(),
            digital.primary_inputs().len().to_string(),
            digital.primary_outputs().len().to_string(),
            faults.len().to_string(),
            report_free.untestable_count().to_string(),
            free_vectors.to_string(),
            seconds(free_cpu),
            report_constrained.untestable_count().to_string(),
            report_constrained.vector_count().to_string(),
            seconds(report_constrained.cpu),
        ]);
        eprintln!("{name}: done");
    }
    println!("{table}");
    println!(
        "expected shape (paper): adding the conversion-block constraints increases the\n\
         number of untestable faults and the CPU time for every circuit, and usually the\n\
         vector count as well.  Absolute numbers differ because the digital blocks are\n\
         synthetic ISCAS85 stand-ins (see DESIGN.md)."
    );
}
