//! Fault-simulation benchmarks: the PPSFP engine against the serial
//! reference on the Table-4 benchmark circuits, plus cone-precomputation
//! reuse and the random-TPG baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msatpg_digital::benchmarks;
use msatpg_digital::circuits;
use msatpg_digital::fault::FaultList;
use msatpg_digital::fault_sim::{FaultCones, FaultSimulator};
use msatpg_digital::random_tpg::RandomPatternGenerator;

fn bench_fault_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_simulation");
    group.sample_size(10);
    for name in ["c432", "c880"] {
        let netlist = benchmarks::by_name(name).unwrap();
        let faults = FaultList::collapsed(&netlist);
        let mut generator = RandomPatternGenerator::new(&netlist, 1);
        let patterns = generator.patterns(32);
        group.bench_with_input(BenchmarkId::new("ppsfp_32_patterns", name), &(), |b, _| {
            let sim = FaultSimulator::new(&netlist);
            b.iter(|| std::hint::black_box(sim.run(&faults, &patterns).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("serial_32_patterns", name), &(), |b, _| {
            let sim = FaultSimulator::new(&netlist);
            b.iter(|| std::hint::black_box(sim.run_serial(&faults, &patterns).unwrap()));
        });
        group.bench_with_input(
            BenchmarkId::new("ppsfp_precomputed_cones", name),
            &(),
            |b, _| {
                let sim = FaultSimulator::new(&netlist);
                let cones = FaultCones::build(&netlist, faults.faults().iter().map(|f| f.signal));
                b.iter(|| {
                    std::hint::black_box(sim.run_with_cones(&faults, &patterns, &cones).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_cone_precomputation(c: &mut Criterion) {
    c.bench_function("fault_cones_c1908", |b| {
        let netlist = benchmarks::c1908();
        let faults = FaultList::collapsed(&netlist);
        b.iter(|| {
            std::hint::black_box(FaultCones::build(
                &netlist,
                faults.faults().iter().map(|f| f.signal),
            ))
        });
    });
}

fn bench_adder_exhaustive(c: &mut Criterion) {
    c.bench_function("adder4_exhaustive_fault_sim", |b| {
        let netlist = circuits::adder4();
        let faults = FaultList::collapsed(&netlist);
        let patterns: Vec<Vec<bool>> = (0..512u32)
            .map(|i| (0..9).map(|bit| (i >> bit) & 1 == 1).collect())
            .collect();
        let sim = FaultSimulator::new(&netlist);
        b.iter(|| std::hint::black_box(sim.run(&faults, &patterns).unwrap()));
    });
}

criterion_group!(
    benches,
    bench_fault_simulation,
    bench_cone_precomputation,
    bench_adder_exhaustive
);
criterion_main!(benches);
