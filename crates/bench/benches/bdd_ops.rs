//! BDD-package micro-benchmarks: the arena engine against the naive
//! HashMap-based reference, plus the Boolean manipulation every ATPG call in
//! Tables 4 and 5 is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msatpg_bdd::BddManager;
use msatpg_bench::adder_carry_chain as carry_chain;
use msatpg_bench::naive::{naive_carry_chain, NaiveBddManager};

fn bench_bdd_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_construction");
    for bits in [8usize, 16, 24] {
        group.bench_with_input(BenchmarkId::new("carry_chain", bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut m = BddManager::new();
                std::hint::black_box(carry_chain(&mut m, bits))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("carry_chain_naive_hashmap", bits),
            &bits,
            |b, &bits| {
                b.iter(|| {
                    let mut m = NaiveBddManager::new();
                    std::hint::black_box(naive_carry_chain(&mut m, bits))
                });
            },
        );
    }
    group.finish();
}

fn bench_boolean_difference(c: &mut Criterion) {
    c.bench_function("boolean_difference_carry16", |b| {
        let mut m = BddManager::new();
        let f = carry_chain(&mut m, 16);
        let var = m.var_index("a7").unwrap();
        b.iter(|| std::hint::black_box(m.clone().boolean_difference(f, var)));
    });
}

fn bench_sat_enumeration(c: &mut Criterion) {
    c.bench_function("sat_count_carry16", |b| {
        let mut m = BddManager::new();
        let f = carry_chain(&mut m, 16);
        b.iter(|| std::hint::black_box(m.sat_count(f)));
    });
}

criterion_group!(
    benches,
    bench_bdd_construction,
    bench_boolean_difference,
    bench_sat_enumeration
);
criterion_main!(benches);
