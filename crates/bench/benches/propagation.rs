//! The Table-5 timing experiment as a Criterion bench: propagating a
//! composite value from a conversion-block output through the constrained
//! digital block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msatpg_bench::{example3_mixed_circuit, figure4_mixed_circuit};
use msatpg_core::AnalogAtpg;

fn bench_comparator_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_propagation_study");
    group.sample_size(10);
    for name in ["c432", "c880"] {
        let mixed = example3_mixed_circuit(name);
        group.bench_with_input(
            BenchmarkId::new("fifteen_comparators", name),
            &(),
            |b, _| {
                let atpg = AnalogAtpg::new(&mixed);
                b.iter(|| std::hint::black_box(atpg.comparator_propagation_study().unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_analog_fault_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("analog_fault_test");
    group.sample_size(10);
    group.bench_function("figure4_rd_deviation", |b| {
        let mixed = figure4_mixed_circuit();
        let atpg = AnalogAtpg::new(&mixed);
        let rd = mixed.analog().circuit().find_element("Rd").unwrap();
        let a1 = mixed.analog().parameters()[0].clone();
        b.iter(|| std::hint::black_box(atpg.test_element_deviation(rd, -0.15, &a1).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_comparator_study, bench_analog_fault_test);
criterion_main!(benches);
