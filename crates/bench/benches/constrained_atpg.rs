//! The Table-4 timing experiment as a Criterion bench: OBDD-based ATPG with
//! and without the conversion-block constraints (the CPU columns of the
//! paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msatpg_bench::example3_mixed_circuit;
use msatpg_core::digital_atpg::DigitalAtpg;
use msatpg_digital::fault::FaultList;

fn bench_constrained_vs_unconstrained(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_atpg");
    group.sample_size(10);
    for name in ["c432", "c499"] {
        let mixed = example3_mixed_circuit(name);
        let digital = mixed.digital().clone();
        let faults = FaultList::collapsed(&digital);
        let lines = mixed.constrained_inputs();
        let codes = mixed.allowed_codes();

        group.bench_with_input(
            BenchmarkId::new("without_constraints", name),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut atpg = DigitalAtpg::new(&digital);
                    std::hint::black_box(atpg.run(&faults).unwrap())
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("with_constraints", name), &(), |b, _| {
            b.iter(|| {
                let mut atpg = DigitalAtpg::new(&digital)
                    .with_constraints(&lines, &codes)
                    .unwrap();
                std::hint::black_box(atpg.run(&faults).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_single_fault_generation(c: &mut Criterion) {
    c.bench_function("single_fault_c880", |b| {
        let mixed = example3_mixed_circuit("c880");
        let digital = mixed.digital().clone();
        let faults = FaultList::collapsed(&digital);
        let fault = faults.faults()[faults.len() / 2];
        let mut atpg = DigitalAtpg::new(&digital);
        b.iter(|| std::hint::black_box(atpg.generate(fault)));
    });
}

criterion_group!(
    benches,
    bench_constrained_vs_unconstrained,
    bench_single_fault_generation
);
criterion_main!(benches);
