//! Analog-substrate benchmarks: MNA solves, factorization-reusing frequency
//! sweeps (cold engine / warm cache / naive per-point rebuild), value
//! patching, response-parameter extraction and the worst-case deviation
//! search behind Tables 3 and 8.

use criterion::{criterion_group, criterion_main, Criterion};
use msatpg_analog::filters;
use msatpg_analog::mna::Mna;
use msatpg_analog::params::measure;
use msatpg_analog::response::{FrequencyResponse, SweepConfig};
use msatpg_analog::sensitivity::WorstCaseAnalysis;
use msatpg_bench::naive::naive_sweep;

fn bench_mna_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("mna_solve");
    for filter in [
        filters::second_order_band_pass(),
        filters::fifth_order_chebyshev(),
        filters::state_variable_filter(),
    ] {
        let name = filter.name().to_owned();
        group.bench_function(format!("ac_1khz/{name}"), |b| {
            let mna = Mna::new(filter.circuit());
            let out = filter.output_node();
            b.iter(|| std::hint::black_box(mna.gain("Vin", out, 1000.0).unwrap()));
        });
    }
    group.finish();
}

fn bench_sweep_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("frequency_sweep");
    group.sample_size(20);
    let filter = filters::fifth_order_chebyshev();
    let circuit = filter.circuit();
    let output = filter.output_node();
    let config = SweepConfig::default();
    let freqs = config.frequencies();
    group.bench_function("naive_rebuild_per_point", |b| {
        b.iter(|| std::hint::black_box(naive_sweep(circuit, "Vin", output, &freqs).unwrap()));
    });
    group.bench_function("cold_engine", |b| {
        b.iter(|| {
            let mna = Mna::new(circuit);
            std::hint::black_box(
                FrequencyResponse::sweep_with_mna(&mna, "Vin", output, &config).unwrap(),
            )
        });
    });
    group.bench_function("warm_factorization_cache", |b| {
        let mna = Mna::new(circuit);
        let _ = FrequencyResponse::sweep_with_mna(&mna, "Vin", output, &config).unwrap();
        b.iter(|| {
            std::hint::black_box(
                FrequencyResponse::sweep_with_mna(&mna, "Vin", output, &config).unwrap(),
            )
        });
    });
    group.bench_function("patched_deviation_sweep", |b| {
        // The deviation-analysis hot path: patch one element, re-sweep,
        // restore.  The structural stamps and cached systems are reused;
        // only factorizations re-run.
        let mna = Mna::new(circuit);
        let _ = FrequencyResponse::sweep_with_mna(&mna, "Vin", output, &config).unwrap();
        let element = circuit.passive_elements()[0];
        b.iter(|| {
            mna.scale_value(element, 1.05);
            let resp = FrequencyResponse::sweep_with_mna(&mna, "Vin", output, &config).unwrap();
            mna.scale_value(element, 1.0 / 1.05);
            std::hint::black_box(resp)
        });
    });
    group.finish();
}

fn bench_parameter_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("parameter_measurement");
    group.sample_size(20);
    let filter = filters::second_order_band_pass();
    for spec in filter.parameters() {
        group.bench_function(spec.name.clone(), |b| {
            b.iter(|| std::hint::black_box(measure(filter.circuit(), spec).unwrap()));
        });
    }
    group.finish();
}

fn bench_worst_case_single_element(c: &mut Criterion) {
    let mut group = c.benchmark_group("worst_case_deviation");
    group.sample_size(10);
    group.bench_function("band_pass_gain_parameters", |b| {
        let filter = filters::second_order_band_pass();
        // Restrict to the two gain parameters (A1, A2) so one iteration stays
        // in the tens of milliseconds.
        let params: Vec<_> = filter.parameters()[..2].to_vec();
        b.iter(|| {
            std::hint::black_box(
                WorstCaseAnalysis::new(filter.circuit(), &params)
                    .with_worst_case(false)
                    .run()
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mna_solve,
    bench_sweep_modes,
    bench_parameter_measurement,
    bench_worst_case_single_element
);
criterion_main!(benches);
