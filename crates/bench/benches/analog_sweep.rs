//! Analog-substrate benchmarks: MNA solves, response-parameter extraction
//! and the worst-case deviation search behind Tables 3 and 8.

use criterion::{criterion_group, criterion_main, Criterion};
use msatpg_analog::filters;
use msatpg_analog::mna::Mna;
use msatpg_analog::params::measure;
use msatpg_analog::sensitivity::WorstCaseAnalysis;

fn bench_mna_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("mna_solve");
    for filter in [
        filters::second_order_band_pass(),
        filters::fifth_order_chebyshev(),
        filters::state_variable_filter(),
    ] {
        let name = filter.name().to_owned();
        group.bench_function(format!("ac_1khz/{name}"), |b| {
            let mna = Mna::new(filter.circuit());
            let out = filter.output_node();
            b.iter(|| std::hint::black_box(mna.gain("Vin", out, 1000.0).unwrap()));
        });
    }
    group.finish();
}

fn bench_parameter_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("parameter_measurement");
    group.sample_size(20);
    let filter = filters::second_order_band_pass();
    for spec in filter.parameters() {
        group.bench_function(spec.name.clone(), |b| {
            b.iter(|| std::hint::black_box(measure(filter.circuit(), spec).unwrap()));
        });
    }
    group.finish();
}

fn bench_worst_case_single_element(c: &mut Criterion) {
    let mut group = c.benchmark_group("worst_case_deviation");
    group.sample_size(10);
    group.bench_function("band_pass_gain_parameters", |b| {
        let filter = filters::second_order_band_pass();
        // Restrict to the two gain parameters (A1, A2) so one iteration stays
        // in the tens of milliseconds.
        let params: Vec<_> = filter.parameters()[..2].to_vec();
        b.iter(|| {
            std::hint::black_box(
                WorstCaseAnalysis::new(filter.circuit(), &params)
                    .with_worst_case(false)
                    .run()
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mna_solve,
    bench_parameter_measurement,
    bench_worst_case_single_element
);
criterion_main!(benches);
