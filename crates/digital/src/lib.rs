//! Gate-level digital netlists, fault models, simulation and benchmark
//! circuits.
//!
//! This crate is the digital substrate of the mixed-signal ATPG
//! reproduction:
//!
//! * [`netlist`] / [`gate`] — combinational gate-level netlists;
//! * [`logic`] / [`sim`] — two-valued, 64-way parallel-pattern and
//!   five-valued (D-algebra) simulation;
//! * [`fault`] / [`fault_sim`] — single stuck-at faults, structural
//!   collapsing and fault simulation;
//! * [`circuits`] — the paper's Figure-3 circuit, the 4-bit adder of the
//!   validation board and generic building blocks;
//! * [`benchmarks`] — deterministic synthetic stand-ins for the ISCAS85
//!   circuits used in Tables 4, 5 and 7;
//! * [`bench_format`] — `.bench` reader/writer for loading real netlists;
//! * [`random_tpg`] — the random test-generation baseline;
//! * [`prng`] — the in-tree deterministic generator behind both.
//!
//! # Fault-simulation engine
//!
//! [`fault_sim::FaultSimulator::run`] implements **PPSFP**
//! (parallel-pattern single-fault propagation):
//!
//! 1. patterns are packed 64 to a machine word and the *good* circuit is
//!    simulated once per word ([`sim::Simulator::run_parallel_all`]);
//! 2. for every fault site the transitive *output cone* — the gates and
//!    primary outputs its effect can reach — is precomputed in one linear
//!    pass over the netlist ([`fault_sim::FaultCones`]);
//! 3. each live fault is injected as a constant word at its site and
//!    re-evaluated only through its cone, reading all unaffected signals
//!    from the good-value words (copy-on-write with O(1) invalidation);
//! 4. all 64 pattern verdicts drop out of one XOR between faulty and good
//!    output words, and detected faults are dropped from later words.
//!
//! Per (fault, 64-pattern word) the cost is `O(|cone|)` word operations
//! instead of the serial path's `O(|circuit| · 64)` bit operations — a
//! measured 10–70× on the ≥500-gate benchmark circuits (see
//! `BENCH_kernels.json`).  The serial reference survives as
//! [`fault_sim::FaultSimulator::run_serial`] and the two engines are
//! property-tested to produce identical detected-fault sets.
//!
//! The word further widens to 256/512-bit blocks (`[u64; 4/8]` lane
//! arrays that auto-vectorize at `--release`) behind the
//! [`fault_sim::WordWidth`] knob / `MSATPG_WORD_WIDTH` environment
//! variable, so one cone walk decides up to 512 patterns with results
//! byte-identical to the one-lane engine.
//!
//! # Example
//!
//! ```
//! use msatpg_digital::circuits;
//! use msatpg_digital::fault::FaultList;
//! use msatpg_digital::fault_sim::FaultSimulator;
//!
//! let adder = circuits::adder4();
//! let faults = FaultList::collapsed(&adder);
//! let sim = FaultSimulator::new(&adder);
//! let patterns = vec![vec![true; 9], vec![false; 9]];
//! let result = sim.run(&faults, &patterns)?;
//! assert!(result.coverage() > 0.0);
//! # Ok::<(), msatpg_digital::DigitalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_format;
pub mod benchmarks;
pub mod circuits;
pub mod fault;
pub mod fault_sim;
pub mod gate;
pub mod logic;
pub mod netlist;
pub mod prng;
pub mod random_tpg;
pub mod sim;

/// Execution policy of the workspace worker pool (re-export of
/// [`msatpg_exec::ExecPolicy`]).
pub use msatpg_exec::ExecPolicy;

pub use fault::{FaultList, StuckAtFault};
pub use fault_sim::{FaultSimResult, FaultSimulator, WordWidth};
pub use gate::GateKind;
pub use logic::Logic;
pub use netlist::{Gate, GateId, Netlist, SignalId};
pub use sim::{CompositeSimulator, Simulator};

use std::fmt;

/// Errors produced by the digital netlist and simulation layers.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DigitalError {
    /// The netlist failed structural validation.
    InvalidNetlist {
        /// Explanation of the problem.
        reason: String,
    },
    /// A test pattern has the wrong number of bits.
    PatternWidthMismatch {
        /// Expected number of primary inputs.
        expected: usize,
        /// Actual pattern width.
        actual: usize,
    },
    /// More patterns were supplied than the parallel simulator can pack.
    TooManyPatterns {
        /// Maximum number of patterns per call.
        max: usize,
        /// Number of patterns supplied.
        actual: usize,
    },
    /// A `.bench` file could not be parsed.
    ParseError {
        /// 1-based line number (0 when the problem is global).
        line: usize,
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for DigitalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DigitalError::InvalidNetlist { reason } => write!(f, "invalid netlist: {reason}"),
            DigitalError::PatternWidthMismatch { expected, actual } => write!(
                f,
                "pattern width mismatch: expected {expected} bits, got {actual}"
            ),
            DigitalError::TooManyPatterns { max, actual } => {
                write!(
                    f,
                    "too many patterns: {actual} supplied, at most {max} allowed"
                )
            }
            DigitalError::ParseError { line, reason } => {
                if *line == 0 {
                    write!(f, "bench parse error: {reason}")
                } else {
                    write!(f, "bench parse error at line {line}: {reason}")
                }
            }
        }
    }
}

impl std::error::Error for DigitalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_variants() {
        let variants = vec![
            DigitalError::InvalidNetlist { reason: "x".into() },
            DigitalError::PatternWidthMismatch {
                expected: 4,
                actual: 2,
            },
            DigitalError::TooManyPatterns {
                max: 64,
                actual: 100,
            },
            DigitalError::ParseError {
                line: 3,
                reason: "bad".into(),
            },
            DigitalError::ParseError {
                line: 0,
                reason: "global".into(),
            },
        ];
        for v in variants {
            assert!(!format!("{v}").is_empty());
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DigitalError>();
    }
}
