//! Gate types of the combinational gate-level netlist.

use std::fmt;

/// The logic function of a gate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// Buffer (identity); also used to model fanout branches as distinct
    /// lines, which is how the paper treats fault sites such as `l3` in
    /// Example 2.
    Buf,
    /// Inverter.
    Not,
    /// Logical AND.
    And,
    /// Logical NAND.
    Nand,
    /// Logical OR.
    Or,
    /// Logical NOR.
    Nor,
    /// Logical XOR.
    Xor,
    /// Logical XNOR.
    Xnor,
}

impl GateKind {
    /// All gate kinds, useful for random circuit generation.
    pub const ALL: [GateKind; 8] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Evaluates the gate on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or has more than one element for
    /// single-input gates.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "Buf takes exactly one input");
                inputs[0]
            }
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "Not takes exactly one input");
                !inputs[0]
            }
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
        }
    }

    /// Evaluates the gate on 64 packed patterns per input word.
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &w| acc ^ w),
        }
    }

    /// Evaluates the gate on `64 * W` packed patterns per input block.
    ///
    /// A block is `W` lanes of 64 patterns each; lane `l` of the result
    /// equals `eval_word` applied to lane `l` of every input.  The lane
    /// loops are written as plain array folds so the compiler vectorizes
    /// them at `--release` without any `std::simd` dependency.
    pub fn eval_block<const W: usize>(self, inputs: &[[u64; W]]) -> [u64; W] {
        self.eval_block_iter(inputs.iter())
    }

    /// [`GateKind::eval_block`] with the input blocks produced lazily by an
    /// iterator of *references* — the form the propagation hot loops use,
    /// so a gate's inputs fold straight out of the good/faulty arrays into
    /// the accumulator instead of being copied into a scratch list first
    /// (at `W = 8` either would cost 64 bytes of memory traffic per input
    /// per gate).  Unary gates fold through a last-block-wins identity, so
    /// there is no input-count panic site.
    pub fn eval_block_iter<'a, const W: usize>(
        self,
        inputs: impl Iterator<Item = &'a [u64; W]>,
    ) -> [u64; W] {
        fn fold<'a, const W: usize>(
            init: u64,
            inputs: impl Iterator<Item = &'a [u64; W]>,
            op: impl Fn(u64, u64) -> u64,
        ) -> [u64; W] {
            let mut acc = [init; W];
            for block in inputs {
                for l in 0..W {
                    acc[l] = op(acc[l], block[l]);
                }
            }
            acc
        }
        fn not_block<const W: usize>(mut block: [u64; W]) -> [u64; W] {
            for lane in &mut block {
                *lane = !*lane;
            }
            block
        }
        match self {
            GateKind::Buf => fold(0, inputs, |_, w| w),
            GateKind::Not => not_block(fold(0, inputs, |_, w| w)),
            GateKind::And => fold(u64::MAX, inputs, |a, w| a & w),
            GateKind::Nand => not_block(fold(u64::MAX, inputs, |a, w| a & w)),
            GateKind::Or => fold(0, inputs, |a, w| a | w),
            GateKind::Nor => not_block(fold(0, inputs, |a, w| a | w)),
            GateKind::Xor => fold(0, inputs, |a, w| a ^ w),
            GateKind::Xnor => not_block(fold(0, inputs, |a, w| a ^ w)),
        }
    }

    /// Returns `true` for single-input gates (`Buf`, `Not`).
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Buf | GateKind::Not)
    }

    /// The `.bench`-format keyword for this gate.
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Parses a `.bench`-format keyword (case-insensitive).
    pub fn from_bench_keyword(kw: &str) -> Option<GateKind> {
        match kw.to_ascii_uppercase().as_str() {
            "BUF" | "BUFF" => Some(GateKind::Buf),
            "NOT" | "INV" => Some(GateKind::Not),
            "AND" => Some(GateKind::And),
            "NAND" => Some(GateKind::Nand),
            "OR" => Some(GateKind::Or),
            "NOR" => Some(GateKind::Nor),
            "XOR" => Some(GateKind::Xor),
            "XNOR" => Some(GateKind::Xnor),
            _ => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bench_keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_evaluation_tables() {
        assert!(GateKind::And.eval(&[true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(!GateKind::Nand.eval(&[true, true]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(!GateKind::Nor.eval(&[false, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(GateKind::Xor.eval(&[true, false, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(GateKind::Not.eval(&[false]));
    }

    #[test]
    fn word_evaluation_matches_scalar() {
        // Patterns 0b00, 0b01, 0b10, 0b11 packed in two words.
        let a = 0b1100u64;
        let b = 0b1010u64;
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let word = kind.eval_word(&[a, b]);
            for bit in 0..4 {
                let scalar = kind.eval(&[(a >> bit) & 1 == 1, (b >> bit) & 1 == 1]);
                assert_eq!((word >> bit) & 1 == 1, scalar, "{kind} bit {bit}");
            }
        }
        assert_eq!(GateKind::Not.eval_word(&[a]) & 0xF, !a & 0xF);
        assert_eq!(GateKind::Buf.eval_word(&[a]), a);
    }

    #[test]
    fn block_evaluation_matches_word_per_lane() {
        // Four lanes with distinct pattern words; every lane of the block
        // result must equal the scalar-word evaluation of that lane.
        let a = [0b1100u64, 0xFFFF, 0x0F0F, u64::MAX];
        let b = [0b1010u64, 0x00FF, 0x3333, 0];
        for kind in GateKind::ALL {
            let inputs: &[[u64; 4]] = if kind.is_unary() { &[a] } else { &[a, b] };
            let block = kind.eval_block(inputs);
            for l in 0..4 {
                let word_inputs: Vec<u64> = inputs.iter().map(|blk| blk[l]).collect();
                assert_eq!(block[l], kind.eval_word(&word_inputs), "{kind} lane {l}");
            }
        }
        // W = 1 degenerates to eval_word exactly.
        assert_eq!(
            GateKind::Xor.eval_block(&[[a[0]], [b[0]]]),
            [GateKind::Xor.eval_word(&[a[0], b[0]])]
        );
    }

    #[test]
    fn bench_keyword_roundtrip() {
        for kind in GateKind::ALL {
            assert_eq!(
                GateKind::from_bench_keyword(kind.bench_keyword()),
                Some(kind)
            );
        }
        assert_eq!(GateKind::from_bench_keyword("INV"), Some(GateKind::Not));
        assert_eq!(GateKind::from_bench_keyword("bogus"), None);
        assert!(GateKind::Not.is_unary());
        assert!(!GateKind::And.is_unary());
        assert_eq!(format!("{}", GateKind::Nand), "NAND");
    }

    #[test]
    #[should_panic(expected = "exactly one input")]
    fn unary_gate_with_two_inputs_panics() {
        GateKind::Not.eval(&[true, false]);
    }
}
