//! Fault simulation: which stuck-at faults does a pattern set detect?
//!
//! Two engines are provided behind one facade:
//!
//! * **PPSFP** (parallel-pattern single-fault propagation), the default used
//!   by [`FaultSimulator::run`]: the good circuit is simulated once per
//!   64-pattern word with [`crate::sim::Simulator::run_parallel_all`]; each
//!   live fault is then injected at its site and re-evaluated only through
//!   the gates of its precomputed output cone, and all 64 pattern outcomes
//!   are decided with a single XOR against the good output words.  Cost per
//!   (fault, 64-pattern block) is `O(|cone|)` instead of `O(|circuit|·64)`.
//! * **Serial**, kept as the reference implementation and available through
//!   [`FaultSimulator::run_serial`]: one full faulty evaluation per
//!   (fault, pattern) pair, with the good simulation hoisted out of the
//!   fault loop so it runs once per pattern.
//!
//! Both engines implement fault dropping and produce identical detected /
//! undetected fault sets (property-tested in `tests/proptests.rs`).
//!
//! ## Parallel execution
//!
//! The PPSFP engine is embarrassingly parallel over faults: within one
//! 64-pattern block every fault's cone propagation is independent.
//! [`FaultSimulator::with_policy`] partitions the fault list into chunks
//! executed on the [`msatpg_exec`] worker pool — each worker owns its own
//! [`PpsfpScratch`] word buffers — and the per-chunk detection results are
//! merged back **in fault-list order**, so the detected / undetected vectors
//! (and therefore every downstream report) are byte-identical to a serial
//! run.
//!
//! A whole campaign runs inside **one pool session**
//! ([`msatpg_exec::WorkerPool::session`]): the worker set is spawned once
//! and the 64-pattern blocks become pool rounds separated by barriers, so
//! fault dropping synchronizes through the shared dropped-fault flags
//! between blocks — exactly where the serial engine consults its detected
//! set — without respawning threads per block.  While the workers propagate
//! one block, the driver thread simulates the *next* block's good-circuit
//! words, overlapping the only serial stage of the loop.
//! [`msatpg_exec::PoolStats`] exposes the amortization: one spawn set and
//! one barrier per block for the whole campaign.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

use msatpg_exec::{CancelToken, ExecPolicy, WorkerPool};

use crate::fault::{FaultList, StuckAtFault};
use crate::netlist::{Netlist, SignalId};
use crate::sim::Simulator;
use crate::DigitalError;

/// Result of fault-simulating a pattern set against a fault list.
#[derive(Clone, Debug, Default)]
pub struct FaultSimResult {
    detected: Vec<StuckAtFault>,
    undetected: Vec<StuckAtFault>,
    patterns_used: usize,
}

impl FaultSimResult {
    /// Faults detected by at least one pattern.
    pub fn detected(&self) -> &[StuckAtFault] {
        &self.detected
    }

    /// Faults not detected by any pattern.
    pub fn undetected(&self) -> &[StuckAtFault] {
        &self.undetected
    }

    /// Number of patterns that were simulated.
    pub fn patterns_used(&self) -> usize {
        self.patterns_used
    }

    /// Fault coverage as a fraction of the fault list.
    pub fn coverage(&self) -> f64 {
        let total = self.detected.len() + self.undetected.len();
        if total == 0 {
            return 1.0;
        }
        self.detected.len() as f64 / total as f64
    }
}

/// The propagation cone of one fault site: every gate whose output can be
/// affected by the site (in topological order) and every primary output
/// reachable from it (including the site itself when it is an output).
#[derive(Clone, Debug, Default)]
struct Cone {
    /// Indices into [`Netlist::gates`], topologically ordered.
    gates: Vec<u32>,
    /// Signal ids of the primary outputs the fault can reach.
    outputs: Vec<u32>,
    /// For each cone gate position `k`: `1 +` the last position whose gate
    /// reads gate `k`'s output signal, or `0` when no later cone gate reads
    /// it (the value only matters for propagation; reads by primary outputs
    /// are handled by the final diff pass over `outputs`).
    out_last_read: Vec<u32>,
    /// Same encoding for the fault site signal itself.
    site_last_read: u32,
}

/// Precomputed propagation cones for a set of fault sites.
///
/// Building a cone is one linear pass over the gate list per site; the cones
/// are what makes PPSFP cheap — re-simulating a fault only walks the gates
/// that can actually change.
#[derive(Clone, Debug, Default)]
pub struct FaultCones {
    cones: HashMap<SignalId, Cone>,
}

impl FaultCones {
    /// Builds cones for every distinct signal in `sites`.
    pub fn build<I: IntoIterator<Item = SignalId>>(netlist: &Netlist, sites: I) -> Self {
        let mut cones = HashMap::new();
        let mut affected = vec![false; netlist.signal_count()];
        // Scratch for the last-read pass: `1 + position` of the last cone
        // gate reading a signal (0 = never read inside the cone).
        let mut last_read = vec![0u32; netlist.signal_count()];
        for site in sites {
            if cones.contains_key(&site) {
                continue;
            }
            affected[site.index()] = true;
            let mut touched = vec![site];
            let mut gates = Vec::new();
            for (gi, gate) in netlist.gates().iter().enumerate() {
                if gate.inputs.iter().any(|i| affected[i.index()]) {
                    affected[gate.output.index()] = true;
                    touched.push(gate.output);
                    gates.push(gi as u32);
                }
            }
            let outputs = netlist
                .primary_outputs()
                .iter()
                .filter(|o| affected[o.index()])
                .map(|o| o.index() as u32)
                .collect();
            for t in touched {
                affected[t.index()] = false;
            }
            // Last-read positions drive the early-exit horizon of
            // [`PpsfpScratch::detection_word`]: once propagation passes the
            // last gate that reads any still-differing signal, the rest of
            // the cone is guaranteed to equal the good circuit.
            for (pos, &gi) in gates.iter().enumerate() {
                for input in &netlist.gates()[gi as usize].inputs {
                    last_read[input.index()] = pos as u32 + 1;
                }
            }
            let out_last_read = gates
                .iter()
                .map(|&gi| last_read[netlist.gates()[gi as usize].output.index()])
                .collect();
            let site_last_read = last_read[site.index()];
            for &gi in &gates {
                for input in &netlist.gates()[gi as usize].inputs {
                    last_read[input.index()] = 0;
                }
            }
            cones.insert(
                site,
                Cone {
                    gates,
                    outputs,
                    out_last_read,
                    site_last_read,
                },
            );
        }
        FaultCones { cones }
    }

    /// Number of distinct sites with a precomputed cone.
    pub fn len(&self) -> usize {
        self.cones.len()
    }

    /// Returns `true` if no cones were built.
    pub fn is_empty(&self) -> bool {
        self.cones.is_empty()
    }

    /// Total number of gate entries across all cones (a proxy for the work a
    /// PPSFP pass performs per 64-pattern block with no fault dropping).
    pub fn total_gate_entries(&self) -> usize {
        self.cones.values().map(|c| c.gates.len()).sum()
    }

    fn cone(&self, site: SignalId) -> &Cone {
        &self.cones[&site]
    }
}

/// Valid-bit mask for a block of `count` packed patterns (`count <= 64`):
/// bit *i* is set iff pattern *i* exists.
///
/// # Panics
///
/// Panics if `count > 64`.
#[inline]
pub fn word_mask(count: usize) -> u64 {
    assert!(count <= 64, "a pattern word holds at most 64 patterns");
    if count == 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Reusable scratch buffers for single-fault word propagation.
///
/// `faulty[s]` is only meaningful when `stamp[s] == cur`; bumping `cur`
/// invalidates the whole array in O(1) between faults, so no clearing pass
/// is ever needed.
pub struct PpsfpScratch {
    faulty: Vec<u64>,
    stamp: Vec<u32>,
    cur: u32,
    ins: Vec<u64>,
    gates_evaluated: u64,
}

impl PpsfpScratch {
    /// Creates scratch buffers sized for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        PpsfpScratch {
            faulty: vec![0; netlist.signal_count()],
            stamp: vec![0; netlist.signal_count()],
            cur: 0,
            ins: Vec::with_capacity(8),
            gates_evaluated: 0,
        }
    }

    /// Number of gate evaluations performed so far — compared against
    /// [`FaultCones::total_gate_entries`] this exposes how much work the
    /// event-driven early exit saved.
    pub fn gates_evaluated(&self) -> u64 {
        self.gates_evaluated
    }

    /// Propagates `fault` through its cone against the good-value words of
    /// one (up to) 64-pattern block and returns the word whose bit *i* is
    /// set iff pattern *i* detects the fault at a primary output.
    ///
    /// `good` must come from
    /// [`crate::sim::Simulator::run_parallel_all`] on the same netlist the
    /// cones were built for; `valid_mask` selects the populated pattern
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `cones` has no cone for the fault site.
    pub fn detection_word(
        &mut self,
        netlist: &Netlist,
        cones: &FaultCones,
        fault: StuckAtFault,
        good: &[u64],
        valid_mask: u64,
    ) -> u64 {
        let site = fault.signal.index();
        let stuck_word = if fault.stuck_at { u64::MAX } else { 0 };
        // Patterns that activate the fault: site value != stuck value.
        if (good[site] ^ stuck_word) & valid_mask == 0 {
            return 0;
        }
        self.cur = self.cur.wrapping_add(1);
        if self.cur == 0 {
            // Stamp wrap-around: reset the array and restart at 1.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.cur = 1;
        }
        let cur = self.cur;
        self.faulty[site] = stuck_word;
        self.stamp[site] = cur;
        let cone = cones.cone(fault.signal);
        // Event-driven tail cut: `horizon` is the last cone position that
        // can still read a signal whose faulty word differs from the good
        // word.  Every gate beyond it is guaranteed to reproduce the good
        // circuit, so propagation stops there; any differing word already
        // stamped at a primary output is picked up by the diff pass below.
        let mut horizon = cone.site_last_read as i64 - 1;
        for (pos, &gi) in cone.gates.iter().enumerate() {
            if pos as i64 > horizon {
                break;
            }
            let gate = &netlist.gates()[gi as usize];
            self.ins.clear();
            for input in &gate.inputs {
                let i = input.index();
                self.ins.push(if self.stamp[i] == cur {
                    self.faulty[i]
                } else {
                    good[i]
                });
            }
            let o = gate.output.index();
            let word = gate.kind.eval_word(&self.ins);
            self.gates_evaluated += 1;
            self.faulty[o] = word;
            self.stamp[o] = cur;
            if word != good[o] {
                horizon = horizon.max(cone.out_last_read[pos] as i64 - 1);
            }
        }
        let mut diff = 0u64;
        for &po in &cone.outputs {
            let po = po as usize;
            let value = if self.stamp[po] == cur {
                self.faulty[po]
            } else {
                good[po]
            };
            diff |= value ^ good[po];
        }
        diff & valid_mask
    }
}

/// Serial/parallel-pattern stuck-at fault simulator with optional fault
/// dropping.
pub struct FaultSimulator<'a> {
    netlist: &'a Netlist,
    drop_detected: bool,
    policy: ExecPolicy,
    cancel: Option<CancelToken>,
}

/// Number of faults per work unit handed to the pool; large enough that a
/// chunk amortizes its scratch-buffer setup, small enough that stealing
/// balances uneven cone sizes.
const FAULT_CHUNK: usize = 64;

impl<'a> FaultSimulator<'a> {
    /// Creates a fault simulator for `netlist` with fault dropping enabled
    /// and serial execution.
    pub fn new(netlist: &'a Netlist) -> Self {
        FaultSimulator {
            netlist,
            drop_detected: true,
            policy: ExecPolicy::Serial,
            cancel: None,
        }
    }

    /// Enables or disables fault dropping (dropping stops simulating a fault
    /// once it has been detected — faster, same coverage answer).
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.drop_detected = enabled;
        self
    }

    /// Sets the execution policy of the PPSFP engine.  Results are
    /// byte-identical across policies; only the wall-clock changes.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arms a cooperative [`CancelToken`] on the PPSFP campaign loop: the
    /// driver checks it **between 64-pattern blocks** (the natural safe
    /// point where fault dropping already synchronizes) and stops consuming
    /// further blocks once the token has fired.  The partial result keeps
    /// every detection made so far and [`FaultSimResult::patterns_used`]
    /// reports how many patterns were actually simulated, so a
    /// deterministically triggered token yields a deterministic partial
    /// result on every thread count.  Workers never consult the token —
    /// block granularity keeps the detected order byte-identical.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `true` once the armed token (if any) has fired.
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// Good-circuit values of every signal under `pattern`, for use with
    /// [`FaultSimulator::detects_with_good`] when the same pattern is checked
    /// against many faults.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn good_values(&self, pattern: &[bool]) -> Result<Vec<bool>, DigitalError> {
        self.netlist.evaluate_all(pattern)
    }

    /// Simulates a single pattern against a single fault and reports whether
    /// the fault is detected (any primary output differs between the good
    /// and the faulty circuit).
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn detects(&self, fault: StuckAtFault, pattern: &[bool]) -> Result<bool, DigitalError> {
        let good = self.good_values(pattern)?;
        self.detects_with_good(fault, pattern, &good)
    }

    /// Like [`FaultSimulator::detects`], but takes precomputed good-circuit
    /// values (from [`FaultSimulator::good_values`]) so the good simulation
    /// is shared across all faults checked against one pattern.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn detects_with_good(
        &self,
        fault: StuckAtFault,
        pattern: &[bool],
        good: &[bool],
    ) -> Result<bool, DigitalError> {
        // The fault is only visible if the fault site currently carries the
        // opposite value (fault activation).
        if good[fault.signal.index()] == fault.stuck_at {
            return Ok(false);
        }
        let faulty = self.evaluate_faulty(fault, pattern)?;
        Ok(self
            .netlist
            .primary_outputs()
            .iter()
            .any(|o| good[o.index()] != faulty[o.index()]))
    }

    /// Simulates a whole pattern set against a fault list with the PPSFP
    /// engine (good circuit once per 64-pattern word, faulty propagation
    /// restricted to each fault's precomputed output cone).
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match.
    pub fn run(
        &self,
        faults: &FaultList,
        patterns: &[Vec<bool>],
    ) -> Result<FaultSimResult, DigitalError> {
        let cones = FaultCones::build(self.netlist, faults.faults().iter().map(|f| f.signal));
        self.run_with_cones(faults, patterns, &cones)
    }

    /// PPSFP run with caller-provided cones, so repeated campaigns over the
    /// same fault universe (e.g. random-TPG restarts) skip the cone pass.
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match, or panics if a
    /// fault site is missing from `cones`.
    pub fn run_with_cones(
        &self,
        faults: &FaultList,
        patterns: &[Vec<bool>],
        cones: &FaultCones,
    ) -> Result<FaultSimResult, DigitalError> {
        let pool = WorkerPool::new(self.policy);
        self.run_with_cones_on(&pool, faults, patterns, cones)
    }

    /// Like [`FaultSimulator::run_with_cones`], but rides a caller-provided
    /// [`WorkerPool`], whose [`msatpg_exec::PoolStats`] then account for the
    /// campaign: one worker-set spawn and one barrier per 64-pattern block.
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match, or panics if a
    /// fault site is missing from `cones`.
    pub fn run_with_cones_on(
        &self,
        pool: &WorkerPool,
        faults: &FaultList,
        patterns: &[Vec<bool>],
        cones: &FaultCones,
    ) -> Result<FaultSimResult, DigitalError> {
        let simulator = Simulator::new(self.netlist);
        let mut detected: Vec<StuckAtFault> = Vec::new();
        let mut detected_set: HashSet<StuckAtFault> = HashSet::new();
        let mut simulated = 0usize;
        let fault_list = faults.faults();
        let n_chunks = fault_list.len().div_ceil(FAULT_CHUNK.max(1));

        if pool.policy().is_serial() || n_chunks <= 1 {
            // Serial fast path: one scratch hoisted above the block loop, no
            // pool bookkeeping.
            let mut scratch = PpsfpScratch::new(self.netlist);
            for chunk in patterns.chunks(64) {
                // Cooperative cancellation at the block boundary: keep every
                // detection made so far, stop consuming further blocks.
                if self.cancelled() {
                    break;
                }
                let good = simulator.run_parallel_all(chunk)?;
                let valid_mask = word_mask(chunk.len());
                simulated += chunk.len();
                for &fault in fault_list {
                    if self.drop_detected && detected_set.contains(&fault) {
                        continue;
                    }
                    let diff =
                        scratch.detection_word(self.netlist, cones, fault, &good, valid_mask);
                    if diff != 0 && detected_set.insert(fault) {
                        detected.push(fault);
                    }
                }
            }
        } else {
            // One pool session for the whole campaign: blocks are rounds,
            // the barrier between them is where fault dropping syncs.
            //
            // Within one 64-pattern block every fault is independent: the
            // serial engine consults the detected set only for faults caught
            // in *earlier* blocks (each fault is visited once per block), so
            // partitioning the fault list across workers — each with its own
            // scratch — and merging hits in fault order reproduces the
            // serial detected order exactly.  The dropped flags are written
            // by the driver strictly between rounds (the submit handshake
            // publishes them), and `detection_word` results do not depend on
            // prior scratch contents (generation stamps), so per-worker
            // scratch reuse is schedule-safe.
            let dropped: Vec<AtomicBool> =
                fault_list.iter().map(|_| AtomicBool::new(false)).collect();
            let drop_detected = self.drop_detected;
            pool.session(
                n_chunks,
                || PpsfpScratch::new(self.netlist),
                |scratch, block: &(Vec<u64>, u64), ci| {
                    let offset = ci * FAULT_CHUNK;
                    let end = (offset + FAULT_CHUNK).min(fault_list.len());
                    let (good, valid_mask) = block;
                    let mut hits: Vec<u32> = Vec::new();
                    for k in offset..end {
                        if drop_detected && dropped[k].load(Ordering::Relaxed) {
                            continue;
                        }
                        let diff = scratch.detection_word(
                            self.netlist,
                            cones,
                            fault_list[k],
                            good,
                            *valid_mask,
                        );
                        if diff != 0 {
                            hits.push(k as u32);
                        }
                    }
                    hits
                },
                |session| -> Result<(), DigitalError> {
                    let mut blocks = patterns.chunks(64);
                    // While the workers propagate block b, the driver
                    // simulates the good circuit of block b+1.
                    let mut staged = match blocks.next() {
                        Some(chunk) => {
                            Some((simulator.run_parallel_all(chunk)?, word_mask(chunk.len())))
                        }
                        None => None,
                    };
                    while let Some(block) = staged.take() {
                        // The driver alone consults the cancel token, at the
                        // same block boundary as the serial loop, so the
                        // partial detected order stays byte-identical.
                        if self.cancelled() {
                            break;
                        }
                        simulated += (block.1.count_ones()) as usize;
                        session.submit(block, n_chunks);
                        staged = match blocks.next() {
                            Some(chunk) => {
                                Some((simulator.run_parallel_all(chunk)?, word_mask(chunk.len())))
                            }
                            None => None,
                        };
                        for k in session.wait().into_iter().flatten() {
                            let fault = fault_list[k as usize];
                            if detected_set.insert(fault) {
                                detected.push(fault);
                                dropped[k as usize].store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    Ok(())
                },
            )?;
        }
        let undetected = faults
            .faults()
            .iter()
            .copied()
            .filter(|f| !detected_set.contains(f))
            .collect();
        Ok(FaultSimResult {
            detected,
            undetected,
            patterns_used: simulated,
        })
    }

    /// Reference implementation: one full faulty evaluation per
    /// (fault, pattern) pair, with the good simulation hoisted so each
    /// pattern's good values are computed once and shared across all faults.
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match.
    pub fn run_serial(
        &self,
        faults: &FaultList,
        patterns: &[Vec<bool>],
    ) -> Result<FaultSimResult, DigitalError> {
        let mut detected = Vec::new();
        let mut detected_set: HashSet<StuckAtFault> = HashSet::new();
        let mut simulated = 0usize;
        for pattern in patterns {
            if self.cancelled() {
                break;
            }
            let good = self.good_values(pattern)?;
            simulated += 1;
            for &fault in faults.faults() {
                if self.drop_detected && detected_set.contains(&fault) {
                    continue;
                }
                if self.detects_with_good(fault, pattern, &good)? && detected_set.insert(fault) {
                    detected.push(fault);
                }
            }
        }
        let undetected = faults
            .faults()
            .iter()
            .copied()
            .filter(|f| !detected_set.contains(f))
            .collect();
        Ok(FaultSimResult {
            detected,
            undetected,
            patterns_used: simulated,
        })
    }

    /// Index of the first primary output (in primary-output order) at which
    /// `pattern` detects `fault`, or `None` when the pattern does not detect
    /// it.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn detecting_output(
        &self,
        fault: StuckAtFault,
        pattern: &[bool],
    ) -> Result<Option<usize>, DigitalError> {
        let good = self.good_values(pattern)?;
        if good[fault.signal.index()] == fault.stuck_at {
            return Ok(None);
        }
        let faulty = self.evaluate_faulty(fault, pattern)?;
        Ok(self
            .netlist
            .primary_outputs()
            .iter()
            .position(|o| good[o.index()] != faulty[o.index()]))
    }

    fn evaluate_faulty(
        &self,
        fault: StuckAtFault,
        pattern: &[bool],
    ) -> Result<Vec<bool>, DigitalError> {
        let n_inputs = self.netlist.primary_inputs().len();
        if pattern.len() != n_inputs {
            return Err(DigitalError::PatternWidthMismatch {
                expected: n_inputs,
                actual: pattern.len(),
            });
        }
        let mut values = vec![false; self.netlist.signal_count()];
        for (i, &sig) in self.netlist.primary_inputs().iter().enumerate() {
            values[sig.index()] = pattern[i];
        }
        if self.netlist.is_primary_input(fault.signal) {
            values[fault.signal.index()] = fault.stuck_at;
        }
        for gate in self.netlist.gates() {
            let ins: Vec<bool> = gate.inputs.iter().map(|i| values[i.index()]).collect();
            let mut v = gate.kind.eval(&ins);
            if gate.output == fault.signal {
                v = fault.stuck_at;
            }
            values[gate.output.index()] = v;
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::circuits;
    use crate::fault::FaultList;
    use crate::prng::SplitMix64;

    fn exhaustive_patterns(n_inputs: usize) -> Vec<Vec<bool>> {
        (0..1u32 << n_inputs)
            .map(|i| (0..n_inputs).map(|b| (i >> b) & 1 == 1).collect())
            .collect()
    }

    fn random_patterns(width: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| (0..width).map(|_| rng.bool()).collect())
            .collect()
    }

    fn sorted(faults: &[StuckAtFault]) -> Vec<StuckAtFault> {
        let mut v = faults.to_vec();
        v.sort();
        v
    }

    #[test]
    fn exhaustive_patterns_detect_all_faults_of_figure3() {
        let n = circuits::figure3_circuit();
        let faults = FaultList::all(&n);
        let sim = FaultSimulator::new(&n);
        let patterns = exhaustive_patterns(n.primary_inputs().len());
        let result = sim.run(&faults, &patterns).unwrap();
        // The paper: considered alone, the Figure-3 digital circuit is fully
        // testable.
        assert_eq!(
            result.undetected().len(),
            0,
            "undetected: {:?}",
            result.undetected()
        );
        assert!((result.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(result.patterns_used(), patterns.len());
    }

    #[test]
    fn single_pattern_detection_is_consistent_with_run() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let sim = FaultSimulator::new(&n);
        let pattern = vec![true; n.primary_inputs().len()];
        let result = sim.run(&faults, &[pattern.clone()]).unwrap();
        for &f in result.detected() {
            assert!(sim.detects(f, &pattern).unwrap());
        }
        for &f in result.undetected() {
            assert!(!sim.detects(f, &pattern).unwrap());
        }
    }

    #[test]
    fn fault_dropping_does_not_change_coverage() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let patterns = exhaustive_patterns(5)
            .into_iter()
            .map(|p| {
                let mut full = vec![false; n.primary_inputs().len()];
                full[..5].copy_from_slice(&p);
                full
            })
            .collect::<Vec<_>>();
        let with_drop = FaultSimulator::new(&n).run(&faults, &patterns).unwrap();
        let without_drop = FaultSimulator::new(&n)
            .with_fault_dropping(false)
            .run(&faults, &patterns)
            .unwrap();
        assert_eq!(with_drop.detected().len(), without_drop.detected().len());
    }

    #[test]
    fn ppsfp_matches_serial_on_iscas_benchmarks() {
        for name in ["c432", "c880"] {
            let n = benchmarks::by_name(name).unwrap();
            let faults = FaultList::collapsed(&n);
            let patterns = random_patterns(n.primary_inputs().len(), 100, 0xC0DE);
            let sim = FaultSimulator::new(&n);
            let ppsfp = sim.run(&faults, &patterns).unwrap();
            let serial = sim.run_serial(&faults, &patterns).unwrap();
            assert_eq!(
                sorted(ppsfp.detected()),
                sorted(serial.detected()),
                "{name}: detected sets differ"
            );
            assert_eq!(
                sorted(ppsfp.undetected()),
                sorted(serial.undetected()),
                "{name}: undetected sets differ"
            );
            assert!((ppsfp.coverage() - serial.coverage()).abs() < 1e-12);
        }
    }

    #[test]
    fn ppsfp_handles_non_multiple_of_64_pattern_counts() {
        let n = circuits::adder4();
        let faults = FaultList::all(&n);
        let sim = FaultSimulator::new(&n);
        for count in [1usize, 63, 64, 65, 130] {
            let patterns = random_patterns(n.primary_inputs().len(), count, count as u64);
            let ppsfp = sim.run(&faults, &patterns).unwrap();
            let serial = sim.run_serial(&faults, &patterns).unwrap();
            assert_eq!(
                sorted(ppsfp.detected()),
                sorted(serial.detected()),
                "{count} patterns"
            );
        }
    }

    #[test]
    fn cones_are_reusable_across_runs() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let cones = FaultCones::build(&n, faults.faults().iter().map(|f| f.signal));
        assert!(!cones.is_empty());
        assert!(cones.total_gate_entries() > 0);
        let sim = FaultSimulator::new(&n);
        let p1 = random_patterns(9, 40, 1);
        let p2 = random_patterns(9, 40, 2);
        let r1 = sim.run_with_cones(&faults, &p1, &cones).unwrap();
        let r2 = sim.run_with_cones(&faults, &p2, &cones).unwrap();
        assert_eq!(
            sorted(r1.detected()),
            sorted(sim.run(&faults, &p1).unwrap().detected())
        );
        assert_eq!(
            sorted(r2.detected()),
            sorted(sim.run(&faults, &p2).unwrap().detected())
        );
    }

    #[test]
    fn activation_is_required_for_detection() {
        // A fault whose stuck value equals the line's current value is not
        // detected by that pattern.
        let n = circuits::figure3_circuit();
        let l0 = n.find_signal("l0").unwrap();
        let sim = FaultSimulator::new(&n);
        // Pattern drives l0 = 1, so s-a-1 on l0 is not activated.
        let pattern_l0_one = vec![true, false, false, false];
        assert!(!sim.detects(StuckAtFault::sa1(l0), &pattern_l0_one).unwrap());
    }

    #[test]
    fn detects_with_good_matches_detects() {
        let n = circuits::adder4();
        let faults = FaultList::all(&n);
        let sim = FaultSimulator::new(&n);
        let patterns = random_patterns(9, 10, 77);
        for pattern in &patterns {
            let good = sim.good_values(pattern).unwrap();
            for &fault in faults.faults() {
                assert_eq!(
                    sim.detects(fault, pattern).unwrap(),
                    sim.detects_with_good(fault, pattern, &good).unwrap()
                );
            }
        }
    }

    #[test]
    fn early_exit_stops_when_the_frontier_equals_the_good_circuit() {
        // a AND b feeding a long buffer chain: with b = 0 the faulty word at
        // the AND output equals the good word, so propagation must stop
        // after evaluating just that one gate instead of walking the chain.
        use crate::gate::GateKind;
        let mut n = Netlist::new("chain");
        let a = n.input("a");
        let bb = n.input("b");
        let mut prev = n.gate(GateKind::And, "x0", &[a, bb]);
        for i in 1..=10 {
            prev = n.gate(GateKind::Buf, &format!("x{i}"), &[prev]);
        }
        n.mark_output(prev);
        let a_sig = n.find_signal("a").unwrap();
        let fault = StuckAtFault::sa1(a_sig);
        let cones = FaultCones::build(&n, [a_sig]);
        assert_eq!(cones.total_gate_entries(), 11);
        let mut scratch = PpsfpScratch::new(&n);
        let sim = Simulator::new(&n);
        // One pattern: a = 0 (activates s-a-1), b = 0 (kills propagation).
        let good = sim.run_parallel_all(&[vec![false, false]]).unwrap();
        let diff = scratch.detection_word(&n, &cones, fault, &good, word_mask(1));
        assert_eq!(diff, 0, "the fault effect dies at the AND gate");
        assert_eq!(
            scratch.gates_evaluated(),
            1,
            "only the AND gate may be evaluated before the early exit"
        );
        // With b = 1 the effect propagates: the whole chain is walked and
        // the fault is detected.
        let good = sim.run_parallel_all(&[vec![false, true]]).unwrap();
        let diff = scratch.detection_word(&n, &cones, fault, &good, word_mask(1));
        assert_eq!(diff, 1);
        assert_eq!(scratch.gates_evaluated(), 12);
    }

    #[test]
    fn parallel_policies_match_serial_byte_for_byte() {
        use msatpg_exec::ExecPolicy;
        let n = benchmarks::by_name("c432").unwrap();
        let faults = FaultList::collapsed(&n);
        let patterns = random_patterns(n.primary_inputs().len(), 130, 0xFEED);
        for dropping in [true, false] {
            let reference = FaultSimulator::new(&n)
                .with_fault_dropping(dropping)
                .run(&faults, &patterns)
                .unwrap();
            for threads in [1usize, 2, 8] {
                let parallel = FaultSimulator::new(&n)
                    .with_fault_dropping(dropping)
                    .with_policy(ExecPolicy::Threads(threads))
                    .run(&faults, &patterns)
                    .unwrap();
                // Exact vectors, including order — not just equal sets.
                assert_eq!(
                    parallel.detected(),
                    reference.detected(),
                    "dropping={dropping} threads={threads}"
                );
                assert_eq!(parallel.undetected(), reference.undetected());
                assert_eq!(parallel.patterns_used(), reference.patterns_used());
            }
        }
    }

    #[test]
    fn campaign_spawns_one_worker_set_and_one_barrier_per_block() {
        use msatpg_exec::{ExecPolicy, WorkerPool};
        let n = benchmarks::by_name("c432").unwrap();
        let faults = FaultList::collapsed(&n);
        let cones = FaultCones::build(&n, faults.faults().iter().map(|f| f.signal));
        // 150 patterns = 3 blocks of 64/64/22.
        let patterns = random_patterns(n.primary_inputs().len(), 150, 0xAB5);
        let pool = WorkerPool::new(ExecPolicy::Threads(2));
        let sim = FaultSimulator::new(&n).with_policy(ExecPolicy::Threads(2));
        let parallel = sim
            .run_with_cones_on(&pool, &faults, &patterns, &cones)
            .unwrap();
        let stats = pool.stats();
        let n_chunks = faults.len().div_ceil(FAULT_CHUNK);
        assert!(n_chunks >= 2, "campaign must exercise multiple chunks");
        assert_eq!(
            stats.spawns, 2,
            "exactly one 2-worker set for the whole campaign, not one per block"
        );
        assert_eq!(stats.barriers, 3, "one barrier per 64-pattern block");
        assert_eq!(
            stats.jobs,
            3 * n_chunks as u64,
            "every chunk of every block runs exactly once"
        );
        // The session-based campaign stays byte-identical to the serial run.
        let reference = FaultSimulator::new(&n)
            .run_with_cones(&faults, &patterns, &cones)
            .unwrap();
        assert_eq!(parallel.detected(), reference.detected());
        assert_eq!(parallel.undetected(), reference.undetected());
    }

    #[test]
    fn empty_fault_list_has_full_coverage() {
        let n = circuits::figure3_circuit();
        let sim = FaultSimulator::new(&n);
        let result = sim
            .run(&FaultList::from_faults(vec![]), &[vec![false; 4]])
            .unwrap();
        assert_eq!(result.coverage(), 1.0);
    }

    #[test]
    fn fired_token_yields_an_empty_partial_result_on_every_policy() {
        let n = benchmarks::c432();
        let faults = FaultList::collapsed(&n);
        let patterns = random_patterns(n.primary_inputs().len(), 256, 0xCAFE);
        for policy in [ExecPolicy::Serial, ExecPolicy::Threads(2)] {
            let token = CancelToken::new();
            token.cancel();
            let sim = FaultSimulator::new(&n)
                .with_policy(policy)
                .with_cancel_token(token);
            let result = sim.run(&faults, &patterns).unwrap();
            assert_eq!(result.patterns_used(), 0, "no block was consumed");
            assert!(result.detected().is_empty());
            assert_eq!(sorted(result.undetected()), sorted(faults.faults()));
        }
    }

    #[test]
    fn live_token_changes_nothing() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let patterns = random_patterns(n.primary_inputs().len(), 192, 0xFEED);
        let reference = FaultSimulator::new(&n).run(&faults, &patterns).unwrap();
        for policy in [ExecPolicy::Serial, ExecPolicy::Threads(2)] {
            let governed = FaultSimulator::new(&n)
                .with_policy(policy)
                .with_cancel_token(CancelToken::new())
                .run(&faults, &patterns)
                .unwrap();
            assert_eq!(sorted(governed.detected()), sorted(reference.detected()));
            assert_eq!(governed.patterns_used(), reference.patterns_used());
        }
    }

    #[test]
    fn run_serial_respects_a_fired_token_per_pattern() {
        let n = circuits::figure3_circuit();
        let faults = FaultList::all(&n);
        let patterns = exhaustive_patterns(n.primary_inputs().len());
        let token = CancelToken::new();
        token.cancel();
        let sim = FaultSimulator::new(&n).with_cancel_token(token);
        let result = sim.run_serial(&faults, &patterns).unwrap();
        assert_eq!(result.patterns_used(), 0);
        assert!(result.detected().is_empty());
    }

    #[test]
    fn detecting_output_agrees_with_detects() {
        let n = circuits::figure3_circuit();
        let faults = FaultList::all(&n);
        let sim = FaultSimulator::new(&n);
        for pattern in exhaustive_patterns(n.primary_inputs().len()) {
            let good = sim.good_values(&pattern).unwrap();
            for &fault in faults.faults() {
                let output = sim.detecting_output(fault, &pattern).unwrap();
                let detected = sim.detects(fault, &pattern).unwrap();
                assert_eq!(output.is_some(), detected);
                if let Some(po_index) = output {
                    // The reported output really is one where the faulty
                    // circuit disagrees with the good one.
                    assert!(po_index < n.primary_outputs().len());
                    let po = n.primary_outputs()[po_index];
                    let faulty = sim.evaluate_faulty(fault, &pattern).unwrap();
                    assert_ne!(good[po.index()], faulty[po.index()]);
                }
            }
        }
    }
}
