//! Fault simulation: which stuck-at faults does a pattern set detect?

use std::collections::HashSet;

use crate::fault::{FaultList, StuckAtFault};
use crate::netlist::Netlist;
use crate::DigitalError;

/// Result of fault-simulating a pattern set against a fault list.
#[derive(Clone, Debug, Default)]
pub struct FaultSimResult {
    detected: Vec<StuckAtFault>,
    undetected: Vec<StuckAtFault>,
    patterns_used: usize,
}

impl FaultSimResult {
    /// Faults detected by at least one pattern.
    pub fn detected(&self) -> &[StuckAtFault] {
        &self.detected
    }

    /// Faults not detected by any pattern.
    pub fn undetected(&self) -> &[StuckAtFault] {
        &self.undetected
    }

    /// Number of patterns that were simulated.
    pub fn patterns_used(&self) -> usize {
        self.patterns_used
    }

    /// Fault coverage as a fraction of the fault list.
    pub fn coverage(&self) -> f64 {
        let total = self.detected.len() + self.undetected.len();
        if total == 0 {
            return 1.0;
        }
        self.detected.len() as f64 / total as f64
    }
}

/// Serial/parallel-pattern stuck-at fault simulator with optional fault
/// dropping.
pub struct FaultSimulator<'a> {
    netlist: &'a Netlist,
    drop_detected: bool,
}

impl<'a> FaultSimulator<'a> {
    /// Creates a fault simulator for `netlist` with fault dropping enabled.
    pub fn new(netlist: &'a Netlist) -> Self {
        FaultSimulator {
            netlist,
            drop_detected: true,
        }
    }

    /// Enables or disables fault dropping (dropping stops simulating a fault
    /// once it has been detected — faster, same coverage answer).
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.drop_detected = enabled;
        self
    }

    /// Simulates a single pattern against a single fault and reports whether
    /// the fault is detected (any primary output differs between the good
    /// and the faulty circuit).
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn detects(&self, fault: StuckAtFault, pattern: &[bool]) -> Result<bool, DigitalError> {
        let good = self.netlist.evaluate_all(pattern)?;
        // The fault is only visible if the fault site currently carries the
        // opposite value (fault activation).
        if good[fault.signal.index()] == fault.stuck_at {
            return Ok(false);
        }
        let faulty = self.evaluate_faulty(fault, pattern)?;
        Ok(self
            .netlist
            .primary_outputs()
            .iter()
            .any(|o| good[o.index()] != faulty[o.index()]))
    }

    /// Simulates a whole pattern set against a fault list.
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match.
    pub fn run(
        &self,
        faults: &FaultList,
        patterns: &[Vec<bool>],
    ) -> Result<FaultSimResult, DigitalError> {
        let mut detected = Vec::new();
        let mut detected_set: HashSet<StuckAtFault> = HashSet::new();
        for pattern in patterns {
            for &fault in faults.faults() {
                if self.drop_detected && detected_set.contains(&fault) {
                    continue;
                }
                if self.detects(fault, pattern)? && detected_set.insert(fault) {
                    detected.push(fault);
                }
            }
        }
        let undetected = faults
            .faults()
            .iter()
            .copied()
            .filter(|f| !detected_set.contains(f))
            .collect();
        Ok(FaultSimResult {
            detected,
            undetected,
            patterns_used: patterns.len(),
        })
    }

    fn evaluate_faulty(
        &self,
        fault: StuckAtFault,
        pattern: &[bool],
    ) -> Result<Vec<bool>, DigitalError> {
        let n_inputs = self.netlist.primary_inputs().len();
        if pattern.len() != n_inputs {
            return Err(DigitalError::PatternWidthMismatch {
                expected: n_inputs,
                actual: pattern.len(),
            });
        }
        let mut values = vec![false; self.netlist.signal_count()];
        for (i, &sig) in self.netlist.primary_inputs().iter().enumerate() {
            values[sig.index()] = pattern[i];
        }
        if self.netlist.is_primary_input(fault.signal) {
            values[fault.signal.index()] = fault.stuck_at;
        }
        for gate in self.netlist.gates() {
            let ins: Vec<bool> = gate.inputs.iter().map(|i| values[i.index()]).collect();
            let mut v = gate.kind.eval(&ins);
            if gate.output == fault.signal {
                v = fault.stuck_at;
            }
            values[gate.output.index()] = v;
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits;
    use crate::fault::FaultList;

    fn exhaustive_patterns(n_inputs: usize) -> Vec<Vec<bool>> {
        (0..1u32 << n_inputs)
            .map(|i| (0..n_inputs).map(|b| (i >> b) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn exhaustive_patterns_detect_all_faults_of_figure3() {
        let n = circuits::figure3_circuit();
        let faults = FaultList::all(&n);
        let sim = FaultSimulator::new(&n);
        let patterns = exhaustive_patterns(n.primary_inputs().len());
        let result = sim.run(&faults, &patterns).unwrap();
        // The paper: considered alone, the Figure-3 digital circuit is fully
        // testable.
        assert_eq!(result.undetected().len(), 0, "undetected: {:?}", result.undetected());
        assert!((result.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(result.patterns_used(), patterns.len());
    }

    #[test]
    fn single_pattern_detection_is_consistent_with_run() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let sim = FaultSimulator::new(&n);
        let pattern = vec![true; n.primary_inputs().len()];
        let result = sim.run(&faults, &[pattern.clone()]).unwrap();
        for &f in result.detected() {
            assert!(sim.detects(f, &pattern).unwrap());
        }
        for &f in result.undetected() {
            assert!(!sim.detects(f, &pattern).unwrap());
        }
    }

    #[test]
    fn fault_dropping_does_not_change_coverage() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let patterns = exhaustive_patterns(5)
            .into_iter()
            .map(|p| {
                let mut full = vec![false; n.primary_inputs().len()];
                full[..5].copy_from_slice(&p);
                full
            })
            .collect::<Vec<_>>();
        let with_drop = FaultSimulator::new(&n).run(&faults, &patterns).unwrap();
        let without_drop = FaultSimulator::new(&n)
            .with_fault_dropping(false)
            .run(&faults, &patterns)
            .unwrap();
        assert_eq!(with_drop.detected().len(), without_drop.detected().len());
    }

    #[test]
    fn activation_is_required_for_detection() {
        // A fault whose stuck value equals the line's current value is not
        // detected by that pattern.
        let n = circuits::figure3_circuit();
        let l0 = n.find_signal("l0").unwrap();
        let sim = FaultSimulator::new(&n);
        // Pattern drives l0 = 1, so s-a-1 on l0 is not activated.
        let pattern_l0_one = vec![true, false, false, false];
        assert!(!sim
            .detects(StuckAtFault::sa1(l0), &pattern_l0_one)
            .unwrap());
    }

    #[test]
    fn empty_fault_list_has_full_coverage() {
        let n = circuits::figure3_circuit();
        let sim = FaultSimulator::new(&n);
        let result = sim
            .run(&FaultList::from_faults(vec![]), &[vec![false; 4]])
            .unwrap();
        assert_eq!(result.coverage(), 1.0);
    }
}
