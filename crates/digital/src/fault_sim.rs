//! Fault simulation: which stuck-at faults does a pattern set detect?
//!
//! Two engines are provided behind one facade:
//!
//! * **PPSFP** (parallel-pattern single-fault propagation), the default used
//!   by [`FaultSimulator::run`]: the good circuit is simulated once per
//!   64-pattern word with [`crate::sim::Simulator::run_parallel_all`]; each
//!   live fault is then injected at its site and re-evaluated only through
//!   the gates of its precomputed output cone, and all 64 pattern outcomes
//!   are decided with a single XOR against the good output words.  Cost per
//!   (fault, 64-pattern block) is `O(|cone|)` instead of `O(|circuit|·64)`.
//! * **Serial**, kept as the reference implementation and available through
//!   [`FaultSimulator::run_serial`]: one full faulty evaluation per
//!   (fault, pattern) pair, with the good simulation hoisted out of the
//!   fault loop so it runs once per pattern.
//!
//! Both engines implement fault dropping and produce identical detected /
//! undetected fault sets (property-tested in `tests/proptests.rs`).
//!
//! ## Parallel execution
//!
//! The PPSFP engine is embarrassingly parallel over faults: within one
//! 64-pattern block every fault's cone propagation is independent.
//! [`FaultSimulator::with_policy`] partitions the fault list into chunks
//! executed on the [`msatpg_exec`] worker pool — each worker owns its own
//! [`PpsfpScratch`] word buffers — and the per-chunk detection results are
//! merged back **in fault-list order**, so the detected / undetected vectors
//! (and therefore every downstream report) are byte-identical to a serial
//! run.
//!
//! A whole campaign runs inside **one pool session**
//! ([`msatpg_exec::WorkerPool::session`]): the worker set is spawned once
//! and the 64-pattern blocks become pool rounds separated by barriers, so
//! fault dropping synchronizes through the shared dropped-fault flags
//! between blocks — exactly where the serial engine consults its detected
//! set — without respawning threads per block.  While the workers propagate
//! one block, the driver thread simulates the *next* block's good-circuit
//! words, overlapping the only serial stage of the loop.
//! [`msatpg_exec::PoolStats`] exposes the amortization: one spawn set and
//! one barrier per block for the whole campaign.
//!
//! ## Wide blocks
//!
//! The pattern word generalizes from a single `u64` to a block of `W`
//! lanes (`[u64; W]`, W ∈ {1, 4, 8}) selected by [`WordWidth`]: one cone
//! walk then decides up to `64 * W` patterns, the good circuit is batched
//! the same way ([`crate::sim::Simulator::run_parallel_blocks`]), and the
//! lane loops are plain array iterations that auto-vectorize to 256/512-bit
//! SIMD at `--release` with no `std::simd` dependency.  Pattern `p` lives
//! in bit `p % 64` of lane `p / 64`, so lane `l` of a wide block is exactly
//! the `l`-th 64-pattern word of a `W = 1` run.  Detections within a block
//! are ordered by `(first detecting lane, fault index)`, which reproduces
//! the `W = 1` detected order bit for bit — the width knob changes
//! wall-clock only, never results (property-tested across widths).
//!
//! In the pooled path the fault list is additionally partitioned by
//! **cone affinity**: faults are greedily grouped into worker chunks by
//! shared gate support (a 64-bucket signature of each precomputed cone), so
//! one worker replays hot cache lines instead of striding the whole
//! circuit.  The grouping is a pure permutation of the chunk layout; the
//! lane-ordered merge above makes it invisible in the results.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

use msatpg_exec::{CancelToken, ExecPolicy, WorkerPool};

use crate::fault::{FaultList, StuckAtFault};
use crate::gate::GateKind;
use crate::netlist::{Netlist, SignalId};
use crate::sim::Simulator;
use crate::DigitalError;

/// Result of fault-simulating a pattern set against a fault list.
#[derive(Clone, Debug, Default)]
pub struct FaultSimResult {
    detected: Vec<StuckAtFault>,
    undetected: Vec<StuckAtFault>,
    patterns_used: usize,
}

impl FaultSimResult {
    /// Faults detected by at least one pattern.
    pub fn detected(&self) -> &[StuckAtFault] {
        &self.detected
    }

    /// Faults not detected by any pattern.
    pub fn undetected(&self) -> &[StuckAtFault] {
        &self.undetected
    }

    /// Number of patterns that were simulated.
    pub fn patterns_used(&self) -> usize {
        self.patterns_used
    }

    /// Fault coverage as a fraction of the fault list.
    pub fn coverage(&self) -> f64 {
        let total = self.detected.len() + self.undetected.len();
        if total == 0 {
            return 1.0;
        }
        self.detected.len() as f64 / total as f64
    }
}

/// Tag bit marking a [`Cone`] input reference as a cone-local scratch slot
/// rather than a global good-value signal index.
const SLOT_TAG: u32 = 1 << 31;

/// One compiled cone gate: everything the propagation loop needs, packed
/// into 20 bytes so a cone walk streams through one small sequential array
/// instead of chasing `Netlist::gates` entries scattered across the heap.
#[derive(Clone, Copy, Debug)]
struct ConeOp {
    kind: GateKind,
    /// Number of entries this op consumes from [`Cone::input_refs`].
    n_inputs: u32,
    /// Cone-local scratch slot receiving the faulty output block.
    out_slot: u32,
    /// Global signal index of the output, for the good-circuit compare.
    out_signal: u32,
    /// `1 +` the last cone position reading this output, `0` if none — the
    /// early-exit horizon contribution when the output differs from good.
    last_read: u32,
}

/// How one reachable primary output resolves in the final diff pass.
#[derive(Clone, Copy, Debug)]
struct OutResolve {
    /// Global signal index of the primary output.
    signal: u32,
    /// `1 +` the cone position of the output's last in-cone driver, or `0`
    /// when the output is the fault site itself (live from activation on).
    /// If the driver was cut off by the early exit the output provably
    /// equals the good circuit and contributes nothing.
    driver_pos_plus1: u32,
    /// Cone-local scratch slot holding the faulty value when live.
    slot: u32,
}

/// The propagation cone of one fault site: every gate whose output can be
/// affected by the site (in topological order) and every primary output
/// reachable from it (including the site itself when it is an output).
///
/// The cone is *compiled*: gate inputs are pre-resolved to either a global
/// good-value index (signals untouched by the fault) or a dense cone-local
/// scratch slot (the site is slot 0, affected signals follow in first-write
/// order).  That keeps the per-fault scratch the size of the cone — L1-hot
/// even at eight 64-bit lanes — where indexing scratch by global signal id
/// spills wide blocks to L2 on the larger ISCAS circuits, and it replaces
/// the per-input "written this walk?" stamp test with a compile-time fact.
#[derive(Clone, Debug, Default)]
struct Cone {
    /// Indices into [`Netlist::gates`], topologically ordered.
    gates: Vec<u32>,
    /// Compiled form of `gates`, same order.
    ops: Vec<ConeOp>,
    /// Flat input references for `ops`, tagged with [`SLOT_TAG`] when they
    /// name a scratch slot; each op consumes its `n_inputs` in sequence.
    input_refs: Vec<u32>,
    /// Resolution of every reachable primary output.
    out_resolve: Vec<OutResolve>,
    /// Number of scratch slots the cone writes (bounded by the netlist's
    /// signal count).
    slots: u32,
    /// [`ConeOp::last_read`] encoding for the fault site signal itself.
    site_last_read: u32,
}

/// Precomputed propagation cones for a set of fault sites.
///
/// Building a cone is one linear pass over the gate list per site; the cones
/// are what makes PPSFP cheap — re-simulating a fault only walks the gates
/// that can actually change.
#[derive(Clone, Debug, Default)]
pub struct FaultCones {
    cones: HashMap<SignalId, Cone>,
}

impl FaultCones {
    /// Builds cones for every distinct signal in `sites`.
    pub fn build<I: IntoIterator<Item = SignalId>>(netlist: &Netlist, sites: I) -> Self {
        assert!(
            netlist.signal_count() < SLOT_TAG as usize,
            "signal indices must leave the slot tag bit free"
        );
        let mut cones = HashMap::new();
        let mut affected = vec![false; netlist.signal_count()];
        // Scratch for the last-read pass: `1 + position` of the last cone
        // gate reading a signal (0 = never read inside the cone).
        let mut last_read = vec![0u32; netlist.signal_count()];
        // Scratch for cone compilation: the scratch slot assigned to a
        // signal (`u32::MAX` = untouched, resolves to the good circuit) and
        // `1 +` the cone position of its last driver (0 = the site itself).
        let mut slot_of = vec![u32::MAX; netlist.signal_count()];
        let mut driver_of = vec![0u32; netlist.signal_count()];
        for site in sites {
            if cones.contains_key(&site) {
                continue;
            }
            affected[site.index()] = true;
            let mut touched = vec![site];
            let mut gates = Vec::new();
            for (gi, gate) in netlist.gates().iter().enumerate() {
                if gate.inputs.iter().any(|i| affected[i.index()]) {
                    affected[gate.output.index()] = true;
                    touched.push(gate.output);
                    gates.push(gi as u32);
                }
            }
            // Last-read positions drive the early-exit horizon of
            // [`PpsfpScratch::detection_block`]: once propagation passes the
            // last gate that reads any still-differing signal, the rest of
            // the cone is guaranteed to equal the good circuit.
            for (pos, &gi) in gates.iter().enumerate() {
                for input in &netlist.gates()[gi as usize].inputs {
                    last_read[input.index()] = pos as u32 + 1;
                }
            }
            let site_last_read = last_read[site.index()];
            // Compile the cone: resolve every input to a scratch slot (set
            // by an earlier cone write) or a good-value index, in one pass
            // that mirrors exactly what a full propagation walk would stamp.
            slot_of[site.index()] = 0;
            let mut slots = 1u32;
            let mut ops = Vec::with_capacity(gates.len());
            let mut input_refs = Vec::new();
            for (pos, &gi) in gates.iter().enumerate() {
                let gate = &netlist.gates()[gi as usize];
                for input in &gate.inputs {
                    let i = input.index();
                    input_refs.push(match slot_of[i] {
                        u32::MAX => i as u32,
                        slot => SLOT_TAG | slot,
                    });
                }
                let o = gate.output.index();
                if slot_of[o] == u32::MAX {
                    slot_of[o] = slots;
                    slots += 1;
                }
                driver_of[o] = pos as u32 + 1;
                ops.push(ConeOp {
                    kind: gate.kind,
                    n_inputs: gate.inputs.len() as u32,
                    out_slot: slot_of[o],
                    out_signal: o as u32,
                    last_read: last_read[o],
                });
            }
            let out_resolve = netlist
                .primary_outputs()
                .iter()
                .filter(|o| affected[o.index()])
                .map(|o| OutResolve {
                    signal: o.index() as u32,
                    driver_pos_plus1: driver_of[o.index()],
                    slot: slot_of[o.index()],
                })
                .collect();
            for t in touched {
                affected[t.index()] = false;
                slot_of[t.index()] = u32::MAX;
                driver_of[t.index()] = 0;
            }
            for &gi in &gates {
                for input in &netlist.gates()[gi as usize].inputs {
                    last_read[input.index()] = 0;
                }
            }
            cones.insert(
                site,
                Cone {
                    gates,
                    ops,
                    input_refs,
                    out_resolve,
                    slots,
                    site_last_read,
                },
            );
        }
        FaultCones { cones }
    }

    /// Number of distinct sites with a precomputed cone.
    pub fn len(&self) -> usize {
        self.cones.len()
    }

    /// Returns `true` if no cones were built.
    pub fn is_empty(&self) -> bool {
        self.cones.is_empty()
    }

    /// Total number of gate entries across all cones (a proxy for the work a
    /// PPSFP pass performs per 64-pattern block with no fault dropping).
    pub fn total_gate_entries(&self) -> usize {
        self.cones.values().map(|c| c.gates.len()).sum()
    }

    fn cone(&self, site: SignalId) -> &Cone {
        &self.cones[&site]
    }
}

/// Valid-bit mask for a block of `count` packed patterns (`count <= 64`):
/// bit *i* is set iff pattern *i* exists.
///
/// # Panics
///
/// Panics if `count > 64`.
#[inline]
pub fn word_mask(count: usize) -> u64 {
    assert!(count <= 64, "a pattern word holds at most 64 patterns");
    if count == 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Valid-bit mask for a wide block of `count` packed patterns
/// (`count <= 64 * W`): bit `p % 64` of lane `p / 64` is set iff pattern
/// `p` exists.
///
/// # Panics
///
/// Panics if `count > 64 * W`.
#[inline]
pub fn block_mask<const W: usize>(count: usize) -> [u64; W] {
    assert!(
        count <= 64 * W,
        "a pattern block holds at most 64 * W patterns"
    );
    let mut mask = [0u64; W];
    let mut remaining = count;
    for lane in &mut mask {
        let take = remaining.min(64);
        *lane = word_mask(take);
        remaining -= take;
    }
    mask
}

/// Environment variable consulted by [`WordWidth::Auto`]; accepts `1`, `4`
/// or `8` lanes (64/256/512 patterns per block).  Any other value is
/// ignored.
pub const WIDTH_ENV_VAR: &str = "MSATPG_WORD_WIDTH";

/// PPSFP block width: how many 64-pattern lanes one cone walk covers.
///
/// Results are byte-identical across widths; only the wall-clock changes.
/// Wide blocks pay off on large pattern sets (the per-fault cone-walk
/// overhead is amortized over up to 512 patterns) and cost extra masked
/// work when pattern sets are much smaller than a block, which is why the
/// default stays at one lane unless the knob opts in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WordWidth {
    /// Honor [`WIDTH_ENV_VAR`] (`MSATPG_WORD_WIDTH=1/4/8`); one lane when
    /// unset or malformed.  This is the default.
    #[default]
    Auto,
    /// One `u64` lane — 64 patterns per block, the pre-wide behavior.
    W1,
    /// Four lanes — 256 patterns per block (256-bit SIMD at `--release`).
    W4,
    /// Eight lanes — 512 patterns per block (512-bit SIMD where available).
    W8,
}

impl WordWidth {
    /// Number of 64-pattern lanes per block (1, 4 or 8).
    pub fn lanes(self) -> usize {
        match self {
            WordWidth::W1 => 1,
            WordWidth::W4 => 4,
            WordWidth::W8 => 8,
            WordWidth::Auto => std::env::var(WIDTH_ENV_VAR)
                .ok()
                .and_then(|v| parse_width_override(&v))
                .unwrap_or(1),
        }
    }

    /// Number of patterns per block (`64 * lanes`).
    pub fn patterns(self) -> usize {
        64 * self.lanes()
    }
}

/// Parses a [`WIDTH_ENV_VAR`] override: only the literal lane counts `1`,
/// `4` and `8` (surrounding whitespace allowed) are accepted — anything
/// else yields `None` and [`WordWidth::Auto`] falls back to one lane, so a
/// malformed value never panics and never silently picks a width the
/// engine has no kernel for.
pub fn parse_width_override(value: &str) -> Option<usize> {
    match value.trim() {
        "1" => Some(1),
        "4" => Some(4),
        "8" => Some(8),
        _ => None,
    }
}

/// Good-circuit storage served to the generic propagation core: either the
/// flat `&[u64]` words of [`crate::sim::Simulator::run_parallel_all`]
/// (`W = 1` only, via `std::array::from_ref`) or the wide `&[[u64; W]]`
/// blocks of [`crate::sim::Simulator::run_parallel_blocks`].  Lookups
/// return *references* so the cone walk folds straight out of the backing
/// arrays — a by-value getter would memcpy 64 bytes per input per gate at
/// `W = 8`, which costs more than the lane arithmetic itself.
trait GoodWords<const W: usize> {
    fn get(&self, i: usize) -> &[u64; W];
}

impl GoodWords<1> for [u64] {
    #[inline]
    fn get(&self, i: usize) -> &[u64; 1] {
        std::array::from_ref(&self[i])
    }
}

impl<const W: usize> GoodWords<W> for [[u64; W]] {
    #[inline]
    fn get(&self, i: usize) -> &[u64; W] {
        &self[i]
    }
}

/// Reusable scratch buffers for single-fault block propagation, generic
/// over the lane count `W` (see [`WordWidth`]; `W = 1` is the legacy
/// word-per-walk engine).
///
/// `faulty` is indexed by *cone-local slot*, not by signal: each fault's
/// walk writes slots `0..` densely in first-write order (see the compiled
/// `Cone`), so the live scratch footprint is the cone size rather than the
/// netlist size and no invalidation between faults is ever needed — a walk
/// only reads slots it has already written.
pub struct PpsfpScratch<const W: usize = 1> {
    faulty: Vec<[u64; W]>,
    gates_evaluated: u64,
}

impl<const W: usize> PpsfpScratch<W> {
    /// Creates scratch buffers sized for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        PpsfpScratch {
            // Cone slots are distinct affected signals, so the signal count
            // bounds every cone's slot count.
            faulty: vec![[0; W]; netlist.signal_count().max(1)],
            gates_evaluated: 0,
        }
    }

    /// Number of gate evaluations performed so far — compared against
    /// [`FaultCones::total_gate_entries`] this exposes how much work the
    /// event-driven early exit saved.  One wide evaluation counts once
    /// regardless of `W`.
    pub fn gates_evaluated(&self) -> u64 {
        self.gates_evaluated
    }

    /// Propagates `fault` through its cone against the good-value blocks of
    /// one (up to) `64 * W`-pattern block and returns the block whose bit
    /// `p % 64` of lane `p / 64` is set iff pattern `p` detects the fault
    /// at a primary output.
    ///
    /// `good` must come from
    /// [`crate::sim::Simulator::run_parallel_blocks`] on the same netlist
    /// the cones were built for; `valid_mask` (see [`block_mask`]) selects
    /// the populated pattern bits.
    ///
    /// # Panics
    ///
    /// Panics if `cones` has no cone for the fault site.
    pub fn detection_block(
        &mut self,
        netlist: &Netlist,
        cones: &FaultCones,
        fault: StuckAtFault,
        good: &[[u64; W]],
        valid_mask: [u64; W],
    ) -> [u64; W] {
        debug_assert!(self.faulty.len() >= netlist.signal_count().max(1));
        self.detection_core(cones, fault, good, valid_mask)
    }

    fn detection_core<G: GoodWords<W> + ?Sized>(
        &mut self,
        cones: &FaultCones,
        fault: StuckAtFault,
        good: &G,
        valid_mask: [u64; W],
    ) -> [u64; W] {
        let site = fault.signal.index();
        let stuck_word = if fault.stuck_at { u64::MAX } else { 0 };
        // Patterns that activate the fault: site value != stuck value.
        let good_site = *good.get(site);
        let mut active = false;
        for l in 0..W {
            active |= (good_site[l] ^ stuck_word) & valid_mask[l] != 0;
        }
        if !active {
            return [0; W];
        }
        let cone = cones.cone(fault.signal);
        debug_assert!(
            cone.slots as usize <= self.faulty.len(),
            "scratch sized for a different netlist"
        );
        self.faulty[0] = [stuck_word; W];
        // Event-driven tail cut: `horizon` is the last cone position that
        // can still read a signal whose faulty block differs from the good
        // block.  Every gate beyond it is guaranteed to reproduce the good
        // circuit, so propagation stops there; any differing block already
        // written at a primary output's slot is picked up by the diff pass.
        let mut horizon = cone.site_last_read as i64 - 1;
        let mut executed = 0u32;
        let mut refs_at = 0usize;
        for (pos, op) in cone.ops.iter().enumerate() {
            if pos as i64 > horizon {
                break;
            }
            let refs = &cone.input_refs[refs_at..refs_at + op.n_inputs as usize];
            refs_at += op.n_inputs as usize;
            // Inputs fold straight out of the slot/good arrays by
            // reference — no scratch list and no by-value block copies,
            // which at W = 8 would cost 64 bytes of traffic per input per
            // gate in this hottest of loops.
            let faulty = &self.faulty;
            let block = op.kind.eval_block_iter(refs.iter().map(|&r| {
                if r & SLOT_TAG != 0 {
                    &faulty[(r ^ SLOT_TAG) as usize]
                } else {
                    good.get(r as usize)
                }
            }));
            self.gates_evaluated += 1;
            self.faulty[op.out_slot as usize] = block;
            if block != *good.get(op.out_signal as usize) {
                horizon = horizon.max(op.last_read as i64 - 1);
            }
            executed = pos as u32 + 1;
        }
        let mut diff = [0u64; W];
        for res in &cone.out_resolve {
            // An output whose last in-cone driver was cut off by the early
            // exit equals the good circuit and contributes no diff bits.
            if res.driver_pos_plus1 <= executed {
                let value = &self.faulty[res.slot as usize];
                let good_po = good.get(res.signal as usize);
                for l in 0..W {
                    diff[l] |= value[l] ^ good_po[l];
                }
            }
        }
        for l in 0..W {
            diff[l] &= valid_mask[l];
        }
        diff
    }
}

impl PpsfpScratch<1> {
    /// Propagates `fault` through its cone against the good-value words of
    /// one (up to) 64-pattern block and returns the word whose bit *i* is
    /// set iff pattern *i* detects the fault at a primary output.
    ///
    /// `good` must come from
    /// [`crate::sim::Simulator::run_parallel_all`] on the same netlist the
    /// cones were built for; `valid_mask` selects the populated pattern
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `cones` has no cone for the fault site.
    pub fn detection_word(
        &mut self,
        netlist: &Netlist,
        cones: &FaultCones,
        fault: StuckAtFault,
        good: &[u64],
        valid_mask: u64,
    ) -> u64 {
        debug_assert!(self.faulty.len() >= netlist.signal_count().max(1));
        self.detection_core(cones, fault, good, [valid_mask])[0]
    }
}

/// First lane of a detection block with any bit set — the block-local
/// ordering key that reproduces the `W = 1` detected order (lane `l` of a
/// wide block is the `l`-th 64-pattern word of a narrow run).
#[inline]
fn first_hit_lane<const W: usize>(diff: &[u64; W]) -> Option<u32> {
    diff.iter().position(|&w| w != 0).map(|l| l as u32)
}

/// Serial/parallel-pattern stuck-at fault simulator with optional fault
/// dropping.
pub struct FaultSimulator<'a> {
    netlist: &'a Netlist,
    drop_detected: bool,
    policy: ExecPolicy,
    width: WordWidth,
    cancel: Option<CancelToken>,
}

/// Number of faults per work unit handed to the pool; large enough that a
/// chunk amortizes its scratch-buffer setup, small enough that stealing
/// balances uneven cone sizes.
const FAULT_CHUNK: usize = 64;

/// Fault-cone affinity schedule for the pooled PPSFP path: a permutation of
/// fault-list indices that greedily groups faults with overlapping gate
/// support into the same [`FAULT_CHUNK`]-sized worker chunk.
///
/// Each cone is summarized as a 64-bit signature (bit `b` set iff the cone
/// touches a gate in the `b`-th of 64 equal spans of the topologically
/// ordered gate list — cheap, and adjacency in topological order is exactly
/// adjacency in the good-value arrays the walk reads).  Chunks are then
/// built greedily: the lowest-index unassigned fault seeds a chunk and the
/// unassigned faults with the largest signature overlap (ties by fault
/// index) fill it.  Fully deterministic, and invisible in the results
/// because the driver re-sorts hits into lane-major fault order.
fn affinity_order(fault_list: &[StuckAtFault], cones: &FaultCones) -> Vec<u32> {
    let n_gates = 1 + fault_list
        .iter()
        .flat_map(|f| cones.cone(f.signal).gates.iter())
        .map(|&gi| gi as usize)
        .max()
        .unwrap_or(0);
    let sigs: Vec<u64> = fault_list
        .iter()
        .map(|f| {
            let mut sig = 0u64;
            for &gi in &cones.cone(f.signal).gates {
                sig |= 1u64 << (gi as usize * 64 / n_gates);
            }
            sig
        })
        .collect();
    let n = fault_list.len();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut assigned = vec![false; n];
    let mut next_seed = 0usize;
    let mut candidates: Vec<(u32, u32)> = Vec::with_capacity(n);
    while order.len() < n {
        while assigned[next_seed] {
            next_seed += 1;
        }
        let seed = next_seed;
        assigned[seed] = true;
        order.push(seed as u32);
        let seed_sig = sigs[seed];
        // Rank the remaining faults by shared support with the seed; the
        // complemented-overlap key makes a plain ascending sort yield
        // (overlap desc, fault index asc).
        candidates.clear();
        for (i, &sig) in sigs.iter().enumerate() {
            if !assigned[i] {
                candidates.push((64 - (sig & seed_sig).count_ones(), i as u32));
            }
        }
        candidates.sort_unstable();
        for &(_, i) in candidates.iter().take(FAULT_CHUNK - 1) {
            assigned[i as usize] = true;
            order.push(i);
        }
    }
    order
}

impl<'a> FaultSimulator<'a> {
    /// Creates a fault simulator for `netlist` with fault dropping enabled
    /// and serial execution.
    pub fn new(netlist: &'a Netlist) -> Self {
        FaultSimulator {
            netlist,
            drop_detected: true,
            policy: ExecPolicy::Serial,
            width: WordWidth::Auto,
            cancel: None,
        }
    }

    /// Enables or disables fault dropping (dropping stops simulating a fault
    /// once it has been detected — faster, same coverage answer).
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.drop_detected = enabled;
        self
    }

    /// Sets the execution policy of the PPSFP engine.  Results are
    /// byte-identical across policies; only the wall-clock changes.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the PPSFP block width (see [`WordWidth`]).  Results are
    /// byte-identical across widths; only the wall-clock changes.  The one
    /// width-visible quantity is the block granularity at which an armed
    /// [`CancelToken`] is polled, so a mid-campaign cancellation may consume
    /// a different number of patterns at different widths — full runs never
    /// differ.
    pub fn with_word_width(mut self, width: WordWidth) -> Self {
        self.width = width;
        self
    }

    /// Arms a cooperative [`CancelToken`] on the PPSFP campaign loop: the
    /// driver checks it **between 64-pattern blocks** (the natural safe
    /// point where fault dropping already synchronizes) and stops consuming
    /// further blocks once the token has fired.  The partial result keeps
    /// every detection made so far and [`FaultSimResult::patterns_used`]
    /// reports how many patterns were actually simulated, so a
    /// deterministically triggered token yields a deterministic partial
    /// result on every thread count.  Workers never consult the token —
    /// block granularity keeps the detected order byte-identical.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `true` once the armed token (if any) has fired.
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// Good-circuit values of every signal under `pattern`, for use with
    /// [`FaultSimulator::detects_with_good`] when the same pattern is checked
    /// against many faults.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn good_values(&self, pattern: &[bool]) -> Result<Vec<bool>, DigitalError> {
        self.netlist.evaluate_all(pattern)
    }

    /// Simulates a single pattern against a single fault and reports whether
    /// the fault is detected (any primary output differs between the good
    /// and the faulty circuit).
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn detects(&self, fault: StuckAtFault, pattern: &[bool]) -> Result<bool, DigitalError> {
        let good = self.good_values(pattern)?;
        self.detects_with_good(fault, pattern, &good)
    }

    /// Like [`FaultSimulator::detects`], but takes precomputed good-circuit
    /// values (from [`FaultSimulator::good_values`]) so the good simulation
    /// is shared across all faults checked against one pattern.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn detects_with_good(
        &self,
        fault: StuckAtFault,
        pattern: &[bool],
        good: &[bool],
    ) -> Result<bool, DigitalError> {
        // The fault is only visible if the fault site currently carries the
        // opposite value (fault activation).
        if good[fault.signal.index()] == fault.stuck_at {
            return Ok(false);
        }
        let faulty = self.evaluate_faulty(fault, pattern)?;
        Ok(self
            .netlist
            .primary_outputs()
            .iter()
            .any(|o| good[o.index()] != faulty[o.index()]))
    }

    /// Simulates a whole pattern set against a fault list with the PPSFP
    /// engine (good circuit once per 64-pattern word, faulty propagation
    /// restricted to each fault's precomputed output cone).
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match.
    pub fn run(
        &self,
        faults: &FaultList,
        patterns: &[Vec<bool>],
    ) -> Result<FaultSimResult, DigitalError> {
        let cones = FaultCones::build(self.netlist, faults.faults().iter().map(|f| f.signal));
        self.run_with_cones(faults, patterns, &cones)
    }

    /// PPSFP run with caller-provided cones, so repeated campaigns over the
    /// same fault universe (e.g. random-TPG restarts) skip the cone pass.
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match, or panics if a
    /// fault site is missing from `cones`.
    pub fn run_with_cones(
        &self,
        faults: &FaultList,
        patterns: &[Vec<bool>],
        cones: &FaultCones,
    ) -> Result<FaultSimResult, DigitalError> {
        let pool = WorkerPool::new(self.policy);
        self.run_with_cones_on(&pool, faults, patterns, cones)
    }

    /// Like [`FaultSimulator::run_with_cones`], but rides a caller-provided
    /// [`WorkerPool`], whose [`msatpg_exec::PoolStats`] then account for the
    /// campaign: one worker-set spawn and one barrier per 64-pattern block.
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match, or panics if a
    /// fault site is missing from `cones`.
    pub fn run_with_cones_on(
        &self,
        pool: &WorkerPool,
        faults: &FaultList,
        patterns: &[Vec<bool>],
        cones: &FaultCones,
    ) -> Result<FaultSimResult, DigitalError> {
        // One monomorphized campaign loop per supported lane count; the
        // width knob only selects which instantiation runs.
        match self.width.lanes() {
            4 => self.run_blocks_on::<4>(pool, faults, patterns, cones),
            8 => self.run_blocks_on::<8>(pool, faults, patterns, cones),
            _ => self.run_blocks_on::<1>(pool, faults, patterns, cones),
        }
    }

    /// The width-generic campaign loop behind
    /// [`FaultSimulator::run_with_cones_on`]: blocks of `64 * W` patterns,
    /// hits ordered by `(first detecting lane, fault index)` so every
    /// width, policy and chunk permutation yields the same detected vector.
    fn run_blocks_on<const W: usize>(
        &self,
        pool: &WorkerPool,
        faults: &FaultList,
        patterns: &[Vec<bool>],
        cones: &FaultCones,
    ) -> Result<FaultSimResult, DigitalError> {
        let simulator = Simulator::new(self.netlist);
        let mut detected: Vec<StuckAtFault> = Vec::new();
        let mut detected_set: HashSet<StuckAtFault> = HashSet::new();
        let mut simulated = 0usize;
        let fault_list = faults.faults();
        let n_chunks = fault_list.len().div_ceil(FAULT_CHUNK.max(1));

        if pool.policy().is_serial() || n_chunks <= 1 {
            // Serial fast path: one scratch hoisted above the block loop, no
            // pool bookkeeping.
            let mut scratch: PpsfpScratch<W> = PpsfpScratch::new(self.netlist);
            let mut hits: Vec<(u32, u32)> = Vec::new();
            for chunk in patterns.chunks(64 * W) {
                // Cooperative cancellation at the block boundary: keep every
                // detection made so far, stop consuming further blocks.
                if self.cancelled() {
                    break;
                }
                let good = simulator.run_parallel_blocks::<W>(chunk)?;
                let valid_mask = block_mask::<W>(chunk.len());
                simulated += chunk.len();
                hits.clear();
                for (k, &fault) in fault_list.iter().enumerate() {
                    if self.drop_detected && detected_set.contains(&fault) {
                        continue;
                    }
                    let diff =
                        scratch.detection_block(self.netlist, cones, fault, &good, valid_mask);
                    if let Some(lane) = first_hit_lane(&diff) {
                        hits.push((lane, k as u32));
                    }
                }
                // Lane-major order = the order a W = 1 run would discover
                // these hits across its narrow sub-blocks.
                hits.sort_unstable();
                for &(_, k) in &hits {
                    let fault = fault_list[k as usize];
                    if detected_set.insert(fault) {
                        detected.push(fault);
                    }
                }
            }
        } else {
            // One pool session for the whole campaign: blocks are rounds,
            // the barrier between them is where fault dropping syncs.
            //
            // Within one block every fault is independent: the serial engine
            // consults the detected set only for faults caught in *earlier*
            // blocks (each fault is visited once per block), so partitioning
            // the fault list across workers — each with its own scratch —
            // and sorting hits into lane-major fault order reproduces the
            // serial detected order exactly, for any chunk permutation.
            // The dropped flags are written by the driver strictly between
            // rounds (the submit handshake publishes them), and
            // `detection_block` results do not depend on prior scratch
            // contents (generation stamps), so per-worker scratch reuse is
            // schedule-safe.
            //
            // `order` groups faults with overlapping cones into the same
            // chunk, so one worker replays hot gate spans instead of
            // striding the whole circuit; the sort above makes the
            // permutation invisible in the results.
            let order = affinity_order(fault_list, cones);
            let dropped: Vec<AtomicBool> =
                fault_list.iter().map(|_| AtomicBool::new(false)).collect();
            let drop_detected = self.drop_detected;
            pool.session(
                n_chunks,
                || PpsfpScratch::<W>::new(self.netlist),
                |scratch, block: &(Vec<[u64; W]>, [u64; W]), ci| {
                    let offset = ci * FAULT_CHUNK;
                    let end = (offset + FAULT_CHUNK).min(order.len());
                    let (good, valid_mask) = block;
                    let mut hits: Vec<(u32, u32)> = Vec::new();
                    for &k in &order[offset..end] {
                        let k = k as usize;
                        if drop_detected && dropped[k].load(Ordering::Relaxed) {
                            continue;
                        }
                        let diff = scratch.detection_block(
                            self.netlist,
                            cones,
                            fault_list[k],
                            good,
                            *valid_mask,
                        );
                        if let Some(lane) = first_hit_lane(&diff) {
                            hits.push((lane, k as u32));
                        }
                    }
                    hits
                },
                |session| -> Result<(), DigitalError> {
                    let mut blocks = patterns.chunks(64 * W);
                    let stage = |chunk: &[Vec<bool>]| -> Result<_, DigitalError> {
                        Ok((
                            simulator.run_parallel_blocks::<W>(chunk)?,
                            block_mask::<W>(chunk.len()),
                            chunk.len(),
                        ))
                    };
                    // While the workers propagate block b, the driver
                    // simulates the good circuit of block b+1.
                    let mut staged = match blocks.next() {
                        Some(chunk) => Some(stage(chunk)?),
                        None => None,
                    };
                    while let Some((good, valid_mask, len)) = staged.take() {
                        // The driver alone consults the cancel token, at the
                        // same block boundary as the serial loop, so the
                        // partial detected order stays byte-identical.
                        if self.cancelled() {
                            break;
                        }
                        simulated += len;
                        session.submit((good, valid_mask), n_chunks);
                        staged = match blocks.next() {
                            Some(chunk) => Some(stage(chunk)?),
                            None => None,
                        };
                        let mut hits: Vec<(u32, u32)> =
                            session.wait().into_iter().flatten().collect();
                        hits.sort_unstable();
                        for (_, k) in hits {
                            let fault = fault_list[k as usize];
                            if detected_set.insert(fault) {
                                detected.push(fault);
                                dropped[k as usize].store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    Ok(())
                },
            )?;
        }
        let undetected = faults
            .faults()
            .iter()
            .copied()
            .filter(|f| !detected_set.contains(f))
            .collect();
        Ok(FaultSimResult {
            detected,
            undetected,
            patterns_used: simulated,
        })
    }

    /// Reference implementation: one full faulty evaluation per
    /// (fault, pattern) pair, with the good simulation hoisted so each
    /// pattern's good values are computed once and shared across all faults.
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match.
    pub fn run_serial(
        &self,
        faults: &FaultList,
        patterns: &[Vec<bool>],
    ) -> Result<FaultSimResult, DigitalError> {
        let mut detected = Vec::new();
        let mut detected_set: HashSet<StuckAtFault> = HashSet::new();
        let mut simulated = 0usize;
        for pattern in patterns {
            if self.cancelled() {
                break;
            }
            let good = self.good_values(pattern)?;
            simulated += 1;
            for &fault in faults.faults() {
                if self.drop_detected && detected_set.contains(&fault) {
                    continue;
                }
                if self.detects_with_good(fault, pattern, &good)? && detected_set.insert(fault) {
                    detected.push(fault);
                }
            }
        }
        let undetected = faults
            .faults()
            .iter()
            .copied()
            .filter(|f| !detected_set.contains(f))
            .collect();
        Ok(FaultSimResult {
            detected,
            undetected,
            patterns_used: simulated,
        })
    }

    /// Index of the first primary output (in primary-output order) at which
    /// `pattern` detects `fault`, or `None` when the pattern does not detect
    /// it.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn detecting_output(
        &self,
        fault: StuckAtFault,
        pattern: &[bool],
    ) -> Result<Option<usize>, DigitalError> {
        let good = self.good_values(pattern)?;
        if good[fault.signal.index()] == fault.stuck_at {
            return Ok(None);
        }
        let faulty = self.evaluate_faulty(fault, pattern)?;
        Ok(self
            .netlist
            .primary_outputs()
            .iter()
            .position(|o| good[o.index()] != faulty[o.index()]))
    }

    fn evaluate_faulty(
        &self,
        fault: StuckAtFault,
        pattern: &[bool],
    ) -> Result<Vec<bool>, DigitalError> {
        let n_inputs = self.netlist.primary_inputs().len();
        if pattern.len() != n_inputs {
            return Err(DigitalError::PatternWidthMismatch {
                expected: n_inputs,
                actual: pattern.len(),
            });
        }
        let mut values = vec![false; self.netlist.signal_count()];
        for (i, &sig) in self.netlist.primary_inputs().iter().enumerate() {
            values[sig.index()] = pattern[i];
        }
        if self.netlist.is_primary_input(fault.signal) {
            values[fault.signal.index()] = fault.stuck_at;
        }
        for gate in self.netlist.gates() {
            let ins: Vec<bool> = gate.inputs.iter().map(|i| values[i.index()]).collect();
            let mut v = gate.kind.eval(&ins);
            if gate.output == fault.signal {
                v = fault.stuck_at;
            }
            values[gate.output.index()] = v;
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::circuits;
    use crate::fault::FaultList;
    use crate::prng::SplitMix64;

    fn exhaustive_patterns(n_inputs: usize) -> Vec<Vec<bool>> {
        (0..1u32 << n_inputs)
            .map(|i| (0..n_inputs).map(|b| (i >> b) & 1 == 1).collect())
            .collect()
    }

    fn random_patterns(width: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| (0..width).map(|_| rng.bool()).collect())
            .collect()
    }

    fn sorted(faults: &[StuckAtFault]) -> Vec<StuckAtFault> {
        let mut v = faults.to_vec();
        v.sort();
        v
    }

    #[test]
    fn exhaustive_patterns_detect_all_faults_of_figure3() {
        let n = circuits::figure3_circuit();
        let faults = FaultList::all(&n);
        let sim = FaultSimulator::new(&n);
        let patterns = exhaustive_patterns(n.primary_inputs().len());
        let result = sim.run(&faults, &patterns).unwrap();
        // The paper: considered alone, the Figure-3 digital circuit is fully
        // testable.
        assert_eq!(
            result.undetected().len(),
            0,
            "undetected: {:?}",
            result.undetected()
        );
        assert!((result.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(result.patterns_used(), patterns.len());
    }

    #[test]
    fn single_pattern_detection_is_consistent_with_run() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let sim = FaultSimulator::new(&n);
        let pattern = vec![true; n.primary_inputs().len()];
        let result = sim.run(&faults, &[pattern.clone()]).unwrap();
        for &f in result.detected() {
            assert!(sim.detects(f, &pattern).unwrap());
        }
        for &f in result.undetected() {
            assert!(!sim.detects(f, &pattern).unwrap());
        }
    }

    #[test]
    fn fault_dropping_does_not_change_coverage() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let patterns = exhaustive_patterns(5)
            .into_iter()
            .map(|p| {
                let mut full = vec![false; n.primary_inputs().len()];
                full[..5].copy_from_slice(&p);
                full
            })
            .collect::<Vec<_>>();
        let with_drop = FaultSimulator::new(&n).run(&faults, &patterns).unwrap();
        let without_drop = FaultSimulator::new(&n)
            .with_fault_dropping(false)
            .run(&faults, &patterns)
            .unwrap();
        assert_eq!(with_drop.detected().len(), without_drop.detected().len());
    }

    #[test]
    fn ppsfp_matches_serial_on_iscas_benchmarks() {
        for name in ["c432", "c880"] {
            let n = benchmarks::by_name(name).unwrap();
            let faults = FaultList::collapsed(&n);
            let patterns = random_patterns(n.primary_inputs().len(), 100, 0xC0DE);
            let sim = FaultSimulator::new(&n);
            let ppsfp = sim.run(&faults, &patterns).unwrap();
            let serial = sim.run_serial(&faults, &patterns).unwrap();
            assert_eq!(
                sorted(ppsfp.detected()),
                sorted(serial.detected()),
                "{name}: detected sets differ"
            );
            assert_eq!(
                sorted(ppsfp.undetected()),
                sorted(serial.undetected()),
                "{name}: undetected sets differ"
            );
            assert!((ppsfp.coverage() - serial.coverage()).abs() < 1e-12);
        }
    }

    #[test]
    fn ppsfp_handles_non_multiple_of_64_pattern_counts() {
        let n = circuits::adder4();
        let faults = FaultList::all(&n);
        let sim = FaultSimulator::new(&n);
        for count in [1usize, 63, 64, 65, 130] {
            let patterns = random_patterns(n.primary_inputs().len(), count, count as u64);
            let ppsfp = sim.run(&faults, &patterns).unwrap();
            let serial = sim.run_serial(&faults, &patterns).unwrap();
            assert_eq!(
                sorted(ppsfp.detected()),
                sorted(serial.detected()),
                "{count} patterns"
            );
        }
    }

    #[test]
    fn cones_are_reusable_across_runs() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let cones = FaultCones::build(&n, faults.faults().iter().map(|f| f.signal));
        assert!(!cones.is_empty());
        assert!(cones.total_gate_entries() > 0);
        let sim = FaultSimulator::new(&n);
        let p1 = random_patterns(9, 40, 1);
        let p2 = random_patterns(9, 40, 2);
        let r1 = sim.run_with_cones(&faults, &p1, &cones).unwrap();
        let r2 = sim.run_with_cones(&faults, &p2, &cones).unwrap();
        assert_eq!(
            sorted(r1.detected()),
            sorted(sim.run(&faults, &p1).unwrap().detected())
        );
        assert_eq!(
            sorted(r2.detected()),
            sorted(sim.run(&faults, &p2).unwrap().detected())
        );
    }

    #[test]
    fn activation_is_required_for_detection() {
        // A fault whose stuck value equals the line's current value is not
        // detected by that pattern.
        let n = circuits::figure3_circuit();
        let l0 = n.find_signal("l0").unwrap();
        let sim = FaultSimulator::new(&n);
        // Pattern drives l0 = 1, so s-a-1 on l0 is not activated.
        let pattern_l0_one = vec![true, false, false, false];
        assert!(!sim.detects(StuckAtFault::sa1(l0), &pattern_l0_one).unwrap());
    }

    #[test]
    fn detects_with_good_matches_detects() {
        let n = circuits::adder4();
        let faults = FaultList::all(&n);
        let sim = FaultSimulator::new(&n);
        let patterns = random_patterns(9, 10, 77);
        for pattern in &patterns {
            let good = sim.good_values(pattern).unwrap();
            for &fault in faults.faults() {
                assert_eq!(
                    sim.detects(fault, pattern).unwrap(),
                    sim.detects_with_good(fault, pattern, &good).unwrap()
                );
            }
        }
    }

    #[test]
    fn early_exit_stops_when_the_frontier_equals_the_good_circuit() {
        // a AND b feeding a long buffer chain: with b = 0 the faulty word at
        // the AND output equals the good word, so propagation must stop
        // after evaluating just that one gate instead of walking the chain.
        use crate::gate::GateKind;
        let mut n = Netlist::new("chain");
        let a = n.input("a");
        let bb = n.input("b");
        let mut prev = n.gate(GateKind::And, "x0", &[a, bb]);
        for i in 1..=10 {
            prev = n.gate(GateKind::Buf, &format!("x{i}"), &[prev]);
        }
        n.mark_output(prev);
        let a_sig = n.find_signal("a").unwrap();
        let fault = StuckAtFault::sa1(a_sig);
        let cones = FaultCones::build(&n, [a_sig]);
        assert_eq!(cones.total_gate_entries(), 11);
        let mut scratch: PpsfpScratch = PpsfpScratch::new(&n);
        let sim = Simulator::new(&n);
        // One pattern: a = 0 (activates s-a-1), b = 0 (kills propagation).
        let good = sim.run_parallel_all(&[vec![false, false]]).unwrap();
        let diff = scratch.detection_word(&n, &cones, fault, &good, word_mask(1));
        assert_eq!(diff, 0, "the fault effect dies at the AND gate");
        assert_eq!(
            scratch.gates_evaluated(),
            1,
            "only the AND gate may be evaluated before the early exit"
        );
        // With b = 1 the effect propagates: the whole chain is walked and
        // the fault is detected.
        let good = sim.run_parallel_all(&[vec![false, true]]).unwrap();
        let diff = scratch.detection_word(&n, &cones, fault, &good, word_mask(1));
        assert_eq!(diff, 1);
        assert_eq!(scratch.gates_evaluated(), 12);
    }

    #[test]
    fn parallel_policies_match_serial_byte_for_byte() {
        use msatpg_exec::ExecPolicy;
        let n = benchmarks::by_name("c432").unwrap();
        let faults = FaultList::collapsed(&n);
        let patterns = random_patterns(n.primary_inputs().len(), 130, 0xFEED);
        for dropping in [true, false] {
            let reference = FaultSimulator::new(&n)
                .with_fault_dropping(dropping)
                .run(&faults, &patterns)
                .unwrap();
            for threads in [1usize, 2, 8] {
                let parallel = FaultSimulator::new(&n)
                    .with_fault_dropping(dropping)
                    .with_policy(ExecPolicy::Threads(threads))
                    .run(&faults, &patterns)
                    .unwrap();
                // Exact vectors, including order — not just equal sets.
                assert_eq!(
                    parallel.detected(),
                    reference.detected(),
                    "dropping={dropping} threads={threads}"
                );
                assert_eq!(parallel.undetected(), reference.undetected());
                assert_eq!(parallel.patterns_used(), reference.patterns_used());
            }
        }
    }

    #[test]
    fn campaign_spawns_one_worker_set_and_one_barrier_per_block() {
        use msatpg_exec::{ExecPolicy, WorkerPool};
        let n = benchmarks::by_name("c432").unwrap();
        let faults = FaultList::collapsed(&n);
        let cones = FaultCones::build(&n, faults.faults().iter().map(|f| f.signal));
        // 150 patterns = 3 blocks of 64/64/22 — at W = 1, which this test
        // pins explicitly because its barrier counts encode the block
        // structure (a wide width would fold all 150 patterns into one
        // block and one barrier).
        let patterns = random_patterns(n.primary_inputs().len(), 150, 0xAB5);
        let pool = WorkerPool::new(ExecPolicy::Threads(2));
        let sim = FaultSimulator::new(&n)
            .with_policy(ExecPolicy::Threads(2))
            .with_word_width(WordWidth::W1);
        let parallel = sim
            .run_with_cones_on(&pool, &faults, &patterns, &cones)
            .unwrap();
        let stats = pool.stats();
        let n_chunks = faults.len().div_ceil(FAULT_CHUNK);
        assert!(n_chunks >= 2, "campaign must exercise multiple chunks");
        assert_eq!(
            stats.spawns, 2,
            "exactly one 2-worker set for the whole campaign, not one per block"
        );
        assert_eq!(stats.barriers, 3, "one barrier per 64-pattern block");
        assert_eq!(
            stats.jobs,
            3 * n_chunks as u64,
            "every chunk of every block runs exactly once"
        );
        // The session-based campaign stays byte-identical to the serial run.
        let reference = FaultSimulator::new(&n)
            .run_with_cones(&faults, &patterns, &cones)
            .unwrap();
        assert_eq!(parallel.detected(), reference.detected());
        assert_eq!(parallel.undetected(), reference.undetected());
    }

    #[test]
    fn empty_fault_list_has_full_coverage() {
        let n = circuits::figure3_circuit();
        let sim = FaultSimulator::new(&n);
        let result = sim
            .run(&FaultList::from_faults(vec![]), &[vec![false; 4]])
            .unwrap();
        assert_eq!(result.coverage(), 1.0);
    }

    #[test]
    fn fired_token_yields_an_empty_partial_result_on_every_policy() {
        let n = benchmarks::c432();
        let faults = FaultList::collapsed(&n);
        let patterns = random_patterns(n.primary_inputs().len(), 256, 0xCAFE);
        for policy in [ExecPolicy::Serial, ExecPolicy::Threads(2)] {
            let token = CancelToken::new();
            token.cancel();
            let sim = FaultSimulator::new(&n)
                .with_policy(policy)
                .with_cancel_token(token);
            let result = sim.run(&faults, &patterns).unwrap();
            assert_eq!(result.patterns_used(), 0, "no block was consumed");
            assert!(result.detected().is_empty());
            assert_eq!(sorted(result.undetected()), sorted(faults.faults()));
        }
    }

    #[test]
    fn live_token_changes_nothing() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let patterns = random_patterns(n.primary_inputs().len(), 192, 0xFEED);
        let reference = FaultSimulator::new(&n).run(&faults, &patterns).unwrap();
        for policy in [ExecPolicy::Serial, ExecPolicy::Threads(2)] {
            let governed = FaultSimulator::new(&n)
                .with_policy(policy)
                .with_cancel_token(CancelToken::new())
                .run(&faults, &patterns)
                .unwrap();
            assert_eq!(sorted(governed.detected()), sorted(reference.detected()));
            assert_eq!(governed.patterns_used(), reference.patterns_used());
        }
    }

    #[test]
    fn run_serial_respects_a_fired_token_per_pattern() {
        let n = circuits::figure3_circuit();
        let faults = FaultList::all(&n);
        let patterns = exhaustive_patterns(n.primary_inputs().len());
        let token = CancelToken::new();
        token.cancel();
        let sim = FaultSimulator::new(&n).with_cancel_token(token);
        let result = sim.run_serial(&faults, &patterns).unwrap();
        assert_eq!(result.patterns_used(), 0);
        assert!(result.detected().is_empty());
    }

    #[test]
    fn wide_widths_match_w1_byte_for_byte() {
        // W = 4 / W = 8 must reproduce the W = 1 detected vector exactly —
        // order included — on every policy, with and without dropping.
        // 300 patterns: five narrow blocks, two W = 4 blocks, one W = 8
        // block, so cross-sub-block first-detection ordering is exercised.
        let n = benchmarks::by_name("c432").unwrap();
        let faults = FaultList::collapsed(&n);
        let patterns = random_patterns(n.primary_inputs().len(), 300, 0x51AD);
        for dropping in [true, false] {
            let reference = FaultSimulator::new(&n)
                .with_word_width(WordWidth::W1)
                .with_fault_dropping(dropping)
                .run(&faults, &patterns)
                .unwrap();
            for width in [WordWidth::W4, WordWidth::W8] {
                for policy in [ExecPolicy::Serial, ExecPolicy::Threads(2)] {
                    let wide = FaultSimulator::new(&n)
                        .with_word_width(width)
                        .with_fault_dropping(dropping)
                        .with_policy(policy)
                        .run(&faults, &patterns)
                        .unwrap();
                    let tag = format!("{width:?} {policy:?} dropping={dropping}");
                    assert_eq!(wide.detected(), reference.detected(), "{tag}");
                    assert_eq!(wide.undetected(), reference.undetected(), "{tag}");
                    assert_eq!(wide.patterns_used(), reference.patterns_used(), "{tag}");
                }
            }
        }
    }

    #[test]
    fn detection_block_matches_detection_word_per_lane() {
        let n = benchmarks::by_name("c432").unwrap();
        let faults = FaultList::collapsed(&n);
        let cones = FaultCones::build(&n, faults.faults().iter().map(|f| f.signal));
        let sim = Simulator::new(&n);
        // 200 patterns: three full 64-lanes and one partial 8-pattern lane.
        let patterns = random_patterns(n.primary_inputs().len(), 200, 0xB10C);
        let good_wide = sim.run_parallel_blocks::<4>(&patterns).unwrap();
        let wide_mask = block_mask::<4>(patterns.len());
        let mut wide: PpsfpScratch<4> = PpsfpScratch::new(&n);
        let mut narrow: PpsfpScratch = PpsfpScratch::new(&n);
        for &fault in faults.faults() {
            let block = wide.detection_block(&n, &cones, fault, &good_wide, wide_mask);
            for (l, chunk) in patterns.chunks(64).enumerate() {
                let good = sim.run_parallel_all(chunk).unwrap();
                let word = narrow.detection_word(&n, &cones, fault, &good, word_mask(chunk.len()));
                assert_eq!(block[l], word, "{fault:?} lane {l}");
            }
        }
    }

    #[test]
    fn affinity_order_is_a_permutation() {
        let n = benchmarks::by_name("c432").unwrap();
        let faults = FaultList::collapsed(&n);
        let cones = FaultCones::build(&n, faults.faults().iter().map(|f| f.signal));
        let order = affinity_order(faults.faults(), &cones);
        assert_eq!(order.len(), faults.len());
        let mut seen = vec![false; faults.len()];
        for &k in &order {
            assert!(!seen[k as usize], "fault {k} scheduled twice");
            seen[k as usize] = true;
        }
        // Determinism: the schedule is a pure function of the inputs.
        assert_eq!(order, affinity_order(faults.faults(), &cones));
    }

    #[test]
    fn width_knob_parsing_and_block_masks() {
        assert_eq!(parse_width_override("1"), Some(1));
        assert_eq!(parse_width_override(" 4 "), Some(4));
        assert_eq!(parse_width_override("8"), Some(8));
        assert_eq!(parse_width_override("2"), None);
        assert_eq!(parse_width_override("wide"), None);
        assert_eq!(parse_width_override(""), None);
        assert_eq!(WordWidth::W1.lanes(), 1);
        assert_eq!(WordWidth::W4.patterns(), 256);
        assert_eq!(WordWidth::W8.patterns(), 512);
        assert_eq!(WordWidth::default(), WordWidth::Auto);
        assert_eq!(block_mask::<1>(13), [word_mask(13)]);
        assert_eq!(block_mask::<4>(130), [u64::MAX, u64::MAX, word_mask(2), 0]);
        assert_eq!(block_mask::<8>(512), [u64::MAX; 8]);
        assert_eq!(block_mask::<8>(0), [0; 8]);
    }

    #[test]
    fn detecting_output_agrees_with_detects() {
        let n = circuits::figure3_circuit();
        let faults = FaultList::all(&n);
        let sim = FaultSimulator::new(&n);
        for pattern in exhaustive_patterns(n.primary_inputs().len()) {
            let good = sim.good_values(&pattern).unwrap();
            for &fault in faults.faults() {
                let output = sim.detecting_output(fault, &pattern).unwrap();
                let detected = sim.detects(fault, &pattern).unwrap();
                assert_eq!(output.is_some(), detected);
                if let Some(po_index) = output {
                    // The reported output really is one where the faulty
                    // circuit disagrees with the good one.
                    assert!(po_index < n.primary_outputs().len());
                    let po = n.primary_outputs()[po_index];
                    let faulty = sim.evaluate_faulty(fault, &pattern).unwrap();
                    assert_ne!(good[po.index()], faulty[po.index()]);
                }
            }
        }
    }
}
