//! Single stuck-at faults, fault universes and structural fault collapsing.

use std::fmt;

use crate::gate::GateKind;
use crate::netlist::{Netlist, SignalId};

/// A single stuck-at fault on a line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StuckAtFault {
    /// The faulty line.
    pub signal: SignalId,
    /// The stuck value (`true` = s-a-1, `false` = s-a-0).
    pub stuck_at: bool,
}

impl StuckAtFault {
    /// Creates a stuck-at-0 fault.
    pub fn sa0(signal: SignalId) -> Self {
        StuckAtFault {
            signal,
            stuck_at: false,
        }
    }

    /// Creates a stuck-at-1 fault.
    pub fn sa1(signal: SignalId) -> Self {
        StuckAtFault {
            signal,
            stuck_at: true,
        }
    }

    /// Renders the fault with the netlist's signal names
    /// (e.g. `"l3 s-a-0"`).
    pub fn describe(&self, netlist: &Netlist) -> String {
        format!(
            "{} s-a-{}",
            netlist.signal_name(self.signal),
            if self.stuck_at { 1 } else { 0 }
        )
    }
}

impl fmt::Display for StuckAtFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "signal#{} s-a-{}",
            self.signal.index(),
            if self.stuck_at { 1 } else { 0 }
        )
    }
}

/// A list of stuck-at faults over one netlist.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultList {
    faults: Vec<StuckAtFault>,
}

impl FaultList {
    /// The complete (uncollapsed) single stuck-at fault universe: two faults
    /// per line.
    pub fn all(netlist: &Netlist) -> Self {
        let mut faults = Vec::with_capacity(netlist.signal_count() * 2);
        for signal in netlist.signals() {
            faults.push(StuckAtFault::sa0(signal));
            faults.push(StuckAtFault::sa1(signal));
        }
        FaultList { faults }
    }

    /// A structurally collapsed fault list using gate-level fault
    /// equivalence:
    ///
    /// * for AND/NAND gates, an input s-a-0 is equivalent to the output
    ///   s-a-0 (NAND: output s-a-1) and is dropped;
    /// * for OR/NOR gates, an input s-a-1 is equivalent to the output s-a-1
    ///   (NOR: output s-a-0) and is dropped;
    /// * for NOT/BUF gates, both input faults are equivalent to output
    ///   faults and are dropped (unless the input is a primary input that
    ///   fans out nowhere else).
    ///
    /// Faults on primary inputs and fanout stems are always kept, matching
    /// the usual checkpoint-style collapsing.
    pub fn collapsed(netlist: &Netlist) -> Self {
        let mut keep = vec![[true, true]; netlist.signal_count()];
        // Count fanout of each signal (how many gate inputs it feeds).
        let mut fanout = vec![0usize; netlist.signal_count()];
        for gate in netlist.gates() {
            for i in &gate.inputs {
                fanout[i.index()] += 1;
            }
        }
        for gate in netlist.gates() {
            for &input in &gate.inputs {
                // Only collapse fanout-free connections: if the signal feeds
                // several gates, its faults are distinct fault sites.
                if fanout[input.index()] != 1 || netlist.is_primary_output(input) {
                    continue;
                }
                match gate.kind {
                    GateKind::And | GateKind::Nand => {
                        keep[input.index()][0] = false; // s-a-0 equivalent to output fault
                    }
                    GateKind::Or | GateKind::Nor => {
                        keep[input.index()][1] = false; // s-a-1 equivalent to output fault
                    }
                    GateKind::Buf | GateKind::Not => {
                        keep[input.index()][0] = false;
                        keep[input.index()][1] = false;
                    }
                    GateKind::Xor | GateKind::Xnor => {}
                }
            }
        }
        // Primary inputs always stay in the list (they are the checkpoints).
        for &pi in netlist.primary_inputs() {
            keep[pi.index()] = [true, true];
        }
        let mut faults = Vec::new();
        for signal in netlist.signals() {
            if keep[signal.index()][0] {
                faults.push(StuckAtFault::sa0(signal));
            }
            if keep[signal.index()][1] {
                faults.push(StuckAtFault::sa1(signal));
            }
        }
        FaultList { faults }
    }

    /// Creates a fault list from an explicit set of faults.
    pub fn from_faults(faults: Vec<StuckAtFault>) -> Self {
        FaultList { faults }
    }

    /// The faults in the list.
    pub fn faults(&self) -> &[StuckAtFault] {
        &self.faults
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Restricts the list to faults on the given signals.
    pub fn restricted_to(&self, signals: &[SignalId]) -> Self {
        FaultList {
            faults: self
                .faults
                .iter()
                .copied()
                .filter(|f| signals.contains(&f.signal))
                .collect(),
        }
    }
}

impl IntoIterator for FaultList {
    type Item = StuckAtFault;
    type IntoIter = std::vec::IntoIter<StuckAtFault>;
    fn into_iter(self) -> Self::IntoIter {
        self.faults.into_iter()
    }
}

impl<'a> IntoIterator for &'a FaultList {
    type Item = &'a StuckAtFault;
    type IntoIter = std::slice::Iter<'a, StuckAtFault>;
    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

impl FromIterator<StuckAtFault> for FaultList {
    fn from_iter<I: IntoIterator<Item = StuckAtFault>>(iter: I) -> Self {
        FaultList {
            faults: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits;

    #[test]
    fn full_fault_universe_has_two_faults_per_line() {
        let n = circuits::figure3_circuit();
        let all = FaultList::all(&n);
        assert_eq!(all.len(), n.signal_count() * 2);
        // The Figure-3 circuit has 9 lines → 18 uncollapsed faults, as in the
        // paper's Example 2.
        assert_eq!(all.len(), 18);
    }

    #[test]
    fn collapsing_reduces_but_keeps_primary_inputs() {
        let n = circuits::adder4();
        let all = FaultList::all(&n);
        let collapsed = FaultList::collapsed(&n);
        assert!(collapsed.len() < all.len());
        for &pi in n.primary_inputs() {
            assert!(collapsed.faults().contains(&StuckAtFault::sa0(pi)));
            assert!(collapsed.faults().contains(&StuckAtFault::sa1(pi)));
        }
    }

    #[test]
    fn describe_uses_signal_names() {
        let n = circuits::figure3_circuit();
        let l3 = n.find_signal("l3").unwrap();
        let f = StuckAtFault::sa0(l3);
        assert_eq!(f.describe(&n), "l3 s-a-0");
        assert!(format!("{f}").contains("s-a-0"));
        assert_eq!(StuckAtFault::sa1(l3).describe(&n), "l3 s-a-1");
    }

    #[test]
    fn restriction_and_iteration() {
        let n = circuits::figure3_circuit();
        let all = FaultList::all(&n);
        let pis = n.primary_inputs().to_vec();
        let pi_faults = all.restricted_to(&pis);
        assert_eq!(pi_faults.len(), pis.len() * 2);
        assert!(!pi_faults.is_empty());
        let collected: FaultList = pi_faults.faults().iter().copied().collect();
        assert_eq!(collected.len(), pi_faults.len());
        let count = (&all).into_iter().count();
        assert_eq!(count, all.len());
    }
}
