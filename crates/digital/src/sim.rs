//! Logic simulation: two-valued, 64-way parallel-pattern and five-valued.

use std::collections::HashMap;

use crate::logic::Logic;
use crate::netlist::{Netlist, SignalId};
use crate::DigitalError;

/// Two-valued simulation of a netlist (convenience re-export of
/// [`Netlist::evaluate_all`] plus pattern helpers).
pub struct Simulator<'a> {
    netlist: &'a Netlist,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `netlist`.
    pub fn new(netlist: &'a Netlist) -> Self {
        Simulator { netlist }
    }

    /// Simulates one pattern and returns the primary-output values.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn run(&self, pattern: &[bool]) -> Result<Vec<bool>, DigitalError> {
        self.netlist.evaluate(pattern)
    }

    /// Simulates up to 64 patterns at once.  `patterns[i]` is the i-th
    /// pattern; the returned vector contains, for each primary output, a word
    /// whose bit *i* is that output's value under pattern *i*.
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match or more than 64
    /// patterns are supplied.
    pub fn run_parallel(&self, patterns: &[Vec<bool>]) -> Result<Vec<u64>, DigitalError> {
        if patterns.len() > 64 {
            return Err(DigitalError::TooManyPatterns {
                max: 64,
                actual: patterns.len(),
            });
        }
        let words = self.run_parallel_all(patterns)?;
        Ok(self
            .netlist
            .primary_outputs()
            .iter()
            .map(|o| words[o.index()])
            .collect())
    }

    /// Parallel-pattern simulation returning a word per signal.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_parallel`].
    pub fn run_parallel_all(&self, patterns: &[Vec<bool>]) -> Result<Vec<u64>, DigitalError> {
        let n_inputs = self.netlist.primary_inputs().len();
        for p in patterns {
            if p.len() != n_inputs {
                return Err(DigitalError::PatternWidthMismatch {
                    expected: n_inputs,
                    actual: p.len(),
                });
            }
        }
        let mut words = vec![0u64; self.netlist.signal_count()];
        for (i, &sig) in self.netlist.primary_inputs().iter().enumerate() {
            let mut w = 0u64;
            for (p, pattern) in patterns.iter().enumerate() {
                if pattern[i] {
                    w |= 1 << p;
                }
            }
            words[sig.index()] = w;
        }
        for gate in self.netlist.gates() {
            let ins: Vec<u64> = gate.inputs.iter().map(|i| words[i.index()]).collect();
            words[gate.output.index()] = gate.kind.eval_word(&ins);
        }
        Ok(words)
    }

    /// Wide parallel-pattern simulation returning a `W`-lane block per
    /// signal: pattern `p` lives in bit `p % 64` of lane `p / 64`, so one
    /// pass fills up to `64 * W` patterns.  `W = 1` is bit-identical to
    /// [`Simulator::run_parallel_all`].
    ///
    /// # Errors
    ///
    /// Returns an error if any pattern width does not match or more than
    /// `64 * W` patterns are supplied.
    pub fn run_parallel_blocks<const W: usize>(
        &self,
        patterns: &[Vec<bool>],
    ) -> Result<Vec<[u64; W]>, DigitalError> {
        if patterns.len() > 64 * W {
            return Err(DigitalError::TooManyPatterns {
                max: 64 * W,
                actual: patterns.len(),
            });
        }
        let n_inputs = self.netlist.primary_inputs().len();
        for p in patterns {
            if p.len() != n_inputs {
                return Err(DigitalError::PatternWidthMismatch {
                    expected: n_inputs,
                    actual: p.len(),
                });
            }
        }
        let mut blocks = vec![[0u64; W]; self.netlist.signal_count()];
        for (i, &sig) in self.netlist.primary_inputs().iter().enumerate() {
            let mut block = [0u64; W];
            for (p, pattern) in patterns.iter().enumerate() {
                if pattern[i] {
                    block[p / 64] |= 1 << (p % 64);
                }
            }
            blocks[sig.index()] = block;
        }
        for gate in self.netlist.gates() {
            let block = gate
                .kind
                .eval_block_iter(gate.inputs.iter().map(|i| &blocks[i.index()]));
            blocks[gate.output.index()] = block;
        }
        Ok(blocks)
    }
}

/// Five-valued (D-algebra) simulation with composite values at arbitrary
/// lines.
///
/// This is how the effect of an analog fault — a `D`/`D̄` appearing at a
/// conversion-block output — is pushed through the digital block to see
/// whether it reaches a primary output (§2.3 of the paper).
pub struct CompositeSimulator<'a> {
    netlist: &'a Netlist,
    forced: HashMap<SignalId, Logic>,
}

impl<'a> CompositeSimulator<'a> {
    /// Creates a composite simulator for `netlist`.
    pub fn new(netlist: &'a Netlist) -> Self {
        CompositeSimulator {
            netlist,
            forced: HashMap::new(),
        }
    }

    /// Forces a line to a composite value regardless of its driver (used to
    /// inject `D`/`D̄` at the lines fed by the conversion block).
    pub fn force(&mut self, signal: SignalId, value: Logic) -> &mut Self {
        self.forced.insert(signal, value);
        self
    }

    /// Clears all forced values.
    pub fn clear_forced(&mut self) -> &mut Self {
        self.forced.clear();
        self
    }

    /// Runs the simulation with the given primary-input values (missing /
    /// extra inputs are an error) and returns the value of every signal.
    ///
    /// Forced values take precedence over both input values and gate
    /// evaluation.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn run(&self, inputs: &[Logic]) -> Result<Vec<Logic>, DigitalError> {
        let n_inputs = self.netlist.primary_inputs().len();
        if inputs.len() != n_inputs {
            return Err(DigitalError::PatternWidthMismatch {
                expected: n_inputs,
                actual: inputs.len(),
            });
        }
        let mut values = vec![Logic::X; self.netlist.signal_count()];
        for (i, &sig) in self.netlist.primary_inputs().iter().enumerate() {
            values[sig.index()] = *self.forced.get(&sig).unwrap_or(&inputs[i]);
        }
        for gate in self.netlist.gates() {
            let value = if let Some(&forced) = self.forced.get(&gate.output) {
                forced
            } else {
                let ins: Vec<Logic> = gate.inputs.iter().map(|i| values[i.index()]).collect();
                Logic::eval_gate(gate.kind, &ins)
            };
            values[gate.output.index()] = value;
        }
        Ok(values)
    }

    /// Runs the simulation and returns the primary-output values in output
    /// order.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn run_outputs(&self, inputs: &[Logic]) -> Result<Vec<Logic>, DigitalError> {
        let all = self.run(inputs)?;
        Ok(self
            .netlist
            .primary_outputs()
            .iter()
            .map(|o| all[o.index()])
            .collect())
    }

    /// Returns `true` if, under the given inputs, a fault effect (`D` or
    /// `D̄`) reaches at least one primary output.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width does not match.
    pub fn propagates_fault(&self, inputs: &[Logic]) -> Result<bool, DigitalError> {
        Ok(self
            .run_outputs(inputs)?
            .iter()
            .any(|v| v.is_fault_effect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn and_or_circuit() -> Netlist {
        // out = (a AND b) OR c
        let mut n = Netlist::new("aoc");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let ab = n.gate(GateKind::And, "ab", &[a, b]);
        let out = n.gate(GateKind::Or, "out", &[ab, c]);
        n.mark_output(out);
        n
    }

    #[test]
    fn parallel_simulation_matches_serial() {
        let n = and_or_circuit();
        let sim = Simulator::new(&n);
        let patterns: Vec<Vec<bool>> = (0..8u32)
            .map(|i| vec![i & 1 != 0, i & 2 != 0, i & 4 != 0])
            .collect();
        let words = sim.run_parallel(&patterns).unwrap();
        assert_eq!(words.len(), 1);
        for (p, pattern) in patterns.iter().enumerate() {
            let serial = sim.run(pattern).unwrap()[0];
            assert_eq!((words[0] >> p) & 1 == 1, serial, "pattern {p}");
        }
    }

    #[test]
    fn block_simulation_matches_word_simulation() {
        let n = and_or_circuit();
        let sim = Simulator::new(&n);
        // 130 patterns force three lanes at W = 4 (two full, one partial).
        let patterns: Vec<Vec<bool>> = (0..130u32)
            .map(|i| vec![i & 1 != 0, i & 2 != 0, i & 4 != 0])
            .collect();
        let blocks = sim.run_parallel_blocks::<4>(&patterns).unwrap();
        for (start, chunk) in patterns.chunks(64).enumerate() {
            let words = sim.run_parallel_all(chunk).unwrap();
            for (i, &w) in words.iter().enumerate() {
                assert_eq!(blocks[i][start], w, "signal {i} lane {start}");
            }
        }
        for block in &blocks {
            assert_eq!(block[3], 0, "lane past the pattern count stays zero");
        }
        // W = 1 is exactly run_parallel_all.
        let one = sim.run_parallel_blocks::<1>(&patterns[..64]).unwrap();
        let flat = sim.run_parallel_all(&patterns[..64]).unwrap();
        assert!(one.iter().map(|b| b[0]).eq(flat.iter().copied()));
        // Over-wide inputs are a structured error, not a panic.
        let many = vec![vec![false, false, false]; 65];
        assert!(matches!(
            sim.run_parallel_blocks::<1>(&many),
            Err(DigitalError::TooManyPatterns { max: 64, .. })
        ));
    }

    #[test]
    fn too_many_patterns_is_an_error() {
        let n = and_or_circuit();
        let sim = Simulator::new(&n);
        let patterns = vec![vec![false, false, false]; 65];
        assert!(matches!(
            sim.run_parallel(&patterns),
            Err(DigitalError::TooManyPatterns { .. })
        ));
    }

    #[test]
    fn composite_simulation_propagates_d() {
        let n = and_or_circuit();
        let mut sim = CompositeSimulator::new(&n);
        let a = n.find_signal("a").unwrap();
        sim.force(a, Logic::D);
        // D propagates through the AND only when b = 1 and is not masked by
        // the OR only when c = 0.
        let out = sim
            .run_outputs(&[Logic::X, Logic::One, Logic::Zero])
            .unwrap();
        assert_eq!(out[0], Logic::D);
        assert!(sim
            .propagates_fault(&[Logic::X, Logic::One, Logic::Zero])
            .unwrap());
        // Masked by c = 1.
        assert!(!sim
            .propagates_fault(&[Logic::X, Logic::One, Logic::One])
            .unwrap());
        // Blocked by b = 0.
        assert!(!sim
            .propagates_fault(&[Logic::X, Logic::Zero, Logic::Zero])
            .unwrap());
    }

    #[test]
    fn forced_internal_line_overrides_driver() {
        let n = and_or_circuit();
        let mut sim = CompositeSimulator::new(&n);
        let ab = n.find_signal("ab").unwrap();
        sim.force(ab, Logic::Dbar);
        let out = sim
            .run_outputs(&[Logic::Zero, Logic::Zero, Logic::Zero])
            .unwrap();
        assert_eq!(out[0], Logic::Dbar);
        sim.clear_forced();
        let out2 = sim
            .run_outputs(&[Logic::Zero, Logic::Zero, Logic::Zero])
            .unwrap();
        assert_eq!(out2[0], Logic::Zero);
    }

    #[test]
    fn width_mismatch_detected() {
        let n = and_or_circuit();
        let sim = CompositeSimulator::new(&n);
        assert!(sim.run(&[Logic::One]).is_err());
        let s2 = Simulator::new(&n);
        assert!(s2.run_parallel(&[vec![true]]).is_err());
    }
}
