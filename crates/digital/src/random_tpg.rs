//! Random test-pattern generation (the baseline the paper contrasts against).
//!
//! Without constraints, random patterns detect most stuck-at faults cheaply.
//! With the conversion-block constraints of a mixed circuit, random patterns
//! must be filtered against the constraint function first — the reason the
//! paper generates its vectors deterministically in the constrained case.

use crate::fault::FaultList;
use crate::fault_sim::{FaultSimResult, FaultSimulator};
use crate::netlist::Netlist;
use crate::prng::SplitMix64;
use crate::DigitalError;

/// A seeded random pattern generator for a specific netlist.
#[derive(Clone, Debug)]
pub struct RandomPatternGenerator {
    width: usize,
    rng: SplitMix64,
}

impl RandomPatternGenerator {
    /// Creates a generator producing patterns as wide as the netlist's
    /// primary-input count.
    pub fn new(netlist: &Netlist, seed: u64) -> Self {
        RandomPatternGenerator {
            width: netlist.primary_inputs().len(),
            rng: SplitMix64::new(seed),
        }
    }

    /// Number of bits per pattern.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Generates one random pattern.
    pub fn pattern(&mut self) -> Vec<bool> {
        (0..self.width).map(|_| self.rng.bool()).collect()
    }

    /// Generates `count` random patterns.
    pub fn patterns(&mut self, count: usize) -> Vec<Vec<bool>> {
        (0..count).map(|_| self.pattern()).collect()
    }

    /// Generates up to `count` patterns that satisfy `constraint`, trying at
    /// most `max_attempts` random draws.  Returns the accepted patterns and
    /// the number of attempts used, which measures how strongly the
    /// constraint function restricts the input space.
    pub fn constrained_patterns<F>(
        &mut self,
        count: usize,
        max_attempts: usize,
        mut constraint: F,
    ) -> (Vec<Vec<bool>>, usize)
    where
        F: FnMut(&[bool]) -> bool,
    {
        let mut accepted = Vec::new();
        let mut attempts = 0usize;
        while accepted.len() < count && attempts < max_attempts {
            let p = self.pattern();
            attempts += 1;
            if constraint(&p) {
                accepted.push(p);
            }
        }
        (accepted, attempts)
    }
}

/// Outcome of a random test-generation campaign.
#[derive(Clone, Debug)]
pub struct RandomTpgReport {
    /// Fault-simulation result of the generated pattern set.
    pub result: FaultSimResult,
    /// Number of patterns generated (before any constraint filtering).
    pub patterns_generated: usize,
}

/// Runs random TPG: generate `pattern_count` random patterns and fault
/// simulate them against `faults`.
///
/// # Errors
///
/// Propagates fault-simulation errors.
pub fn random_tpg(
    netlist: &Netlist,
    faults: &FaultList,
    pattern_count: usize,
    seed: u64,
) -> Result<RandomTpgReport, DigitalError> {
    let mut generator = RandomPatternGenerator::new(netlist, seed);
    let patterns = generator.patterns(pattern_count);
    let result = FaultSimulator::new(netlist).run(faults, &patterns)?;
    Ok(RandomTpgReport {
        result,
        patterns_generated: pattern_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits;

    #[test]
    fn generator_is_seeded_and_deterministic() {
        let n = circuits::adder4();
        let mut a = RandomPatternGenerator::new(&n, 7);
        let mut b = RandomPatternGenerator::new(&n, 7);
        assert_eq!(a.patterns(10), b.patterns(10));
        assert_eq!(a.width(), 9);
        let mut c = RandomPatternGenerator::new(&n, 8);
        assert_ne!(a.patterns(10), c.patterns(10));
    }

    #[test]
    fn random_patterns_achieve_high_coverage_on_the_adder() {
        let n = circuits::adder4();
        let faults = FaultList::collapsed(&n);
        let report = random_tpg(&n, &faults, 200, 1).unwrap();
        assert!(
            report.result.coverage() > 0.95,
            "coverage {}",
            report.result.coverage()
        );
        assert_eq!(report.patterns_generated, 200);
    }

    #[test]
    fn constraint_filtering_reports_attempts() {
        let n = circuits::figure3_circuit();
        let mut generator = RandomPatternGenerator::new(&n, 3);
        // Constraint of Example 2: l0 OR l2 (inputs are l0,l1,l2,l4).
        let (accepted, attempts) = generator.constrained_patterns(20, 10_000, |p| p[0] || p[2]);
        assert_eq!(accepted.len(), 20);
        assert!(attempts >= 20);
        for p in &accepted {
            assert!(p[0] || p[2]);
        }
        // An unsatisfiable constraint exhausts the attempt budget.
        let (none, attempts) = generator.constrained_patterns(5, 100, |_| false);
        assert!(none.is_empty());
        assert_eq!(attempts, 100);
    }
}
