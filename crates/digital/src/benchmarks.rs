//! Synthetic ISCAS85-like benchmark circuits.
//!
//! The paper evaluates its constrained test generator on the ISCAS85
//! benchmarks c432, c499, c880, c1355 and c1908.  The original netlists are
//! not distributed with this reproduction, so this module generates
//! *deterministic synthetic stand-ins* that match each benchmark's published
//! interface (number of primary inputs and outputs) and approximate gate
//! count, with output cones of bounded support so that OBDD-based test
//! generation stays tractable — the property the real ISCAS85 circuits also
//! have.
//!
//! The substitution is documented in `DESIGN.md` and `EXPERIMENTS.md`; every
//! generated circuit is reproducible (fixed seed, no dependence on external
//! randomness).

use crate::gate::GateKind;
use crate::netlist::{Netlist, SignalId};
use crate::prng::SplitMix64;

/// Specification of a synthetic benchmark circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkSpec {
    /// Circuit name (e.g. `"c432"`).
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Approximate number of gates to generate.
    pub gates: usize,
    /// Maximum number of primary inputs in the support of any single output
    /// cone (bounds OBDD size during test generation).
    pub cone_window: usize,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

fn pick_gate_kind(rng: &mut SplitMix64) -> GateKind {
    // Weighted toward the AND/OR family, with a sprinkling of XOR and
    // inverters, roughly like the ISCAS85 gate mix.
    match rng.below(20) {
        0..=4 => GateKind::And,
        5..=9 => GateKind::Nand,
        10..=12 => GateKind::Or,
        13..=15 => GateKind::Nor,
        16..=17 => GateKind::Xor,
        18 => GateKind::Not,
        _ => GateKind::Xnor,
    }
}

/// Generates a synthetic benchmark from a specification.
///
/// The circuit is a union of output cones.  Cone *j* draws its primary
/// inputs from a sliding window of `cone_window` consecutive PIs.  Each cone
/// is built as a set of small *fanout-free* AND/OR/NAND/NOR trees over
/// distinct window PIs whose roots are merged by an XOR/XNOR chain — the
/// structure of the error-detection circuits several of the real ISCAS85
/// benchmarks implement.  Fanout-free trees are fully stuck-at testable and
/// the XOR spine never masks a propagating fault, so the generated circuits
/// are close to 100 % testable, like the originals, while the bounded PI
/// window keeps the per-output OBDDs small.
pub fn synthetic(spec: &BenchmarkSpec) -> Netlist {
    let mut rng = SplitMix64::new(spec.seed);
    let mut n = Netlist::new(&spec.name);
    let pis: Vec<SignalId> = (0..spec.inputs)
        .map(|i| n.input(&format!("i{i}")))
        .collect();
    let gates_per_cone = (spec.gates / spec.outputs.max(1)).max(3);
    let mut gate_counter = 0usize;
    for cone in 0..spec.outputs {
        // Window of PIs for this cone.
        let window = spec.cone_window.min(spec.inputs);
        let max_start = spec.inputs - window;
        let start = if spec.outputs > 1 {
            (cone * max_start) / (spec.outputs - 1).max(1)
        } else {
            0
        };
        let window_pis: Vec<SignalId> = pis[start..start + window].to_vec();

        // Build fanout-free subtrees over distinct window PIs.
        let mut subtree_roots: Vec<SignalId> = Vec::new();
        let mut gates_this_cone = 0usize;
        while gates_this_cone + subtree_roots.len().saturating_sub(1) < gates_per_cone {
            // Pick 2..=5 distinct leaves from the window (every leaf distinct
            // inside one subtree keeps the subtree fanout-free).
            let leaf_count = 2 + rng.below(4.min(window - 1));
            let mut chosen: Vec<SignalId> = Vec::new();
            while chosen.len() < leaf_count {
                let candidate = window_pis[rng.below(window_pis.len())];
                if !chosen.contains(&candidate) {
                    chosen.push(candidate);
                }
            }
            // Reduce the leaves with a random tree of standard gates.
            while chosen.len() > 1 {
                let a = chosen.swap_remove(rng.below(chosen.len()));
                let b = chosen.swap_remove(rng.below(chosen.len()));
                let kind = {
                    let k = pick_gate_kind(&mut rng);
                    if k.is_unary() {
                        GateKind::Nand
                    } else {
                        k
                    }
                };
                let g = n.gate(kind, &format!("g{gate_counter}"), &[a, b]);
                gate_counter += 1;
                gates_this_cone += 1;
                chosen.push(g);
            }
            // Occasionally invert a subtree root for variety.
            let mut root = chosen[0];
            if rng.below(5) == 0 {
                root = n.gate(GateKind::Not, &format!("g{gate_counter}"), &[root]);
                gate_counter += 1;
                gates_this_cone += 1;
            }
            subtree_roots.push(root);
        }
        // Merge the subtree roots with an XOR/XNOR spine: the spine always
        // propagates a difference on any of its inputs, so it introduces no
        // redundancy even though the subtrees share primary inputs.
        let mut root = subtree_roots[0];
        for &next in &subtree_roots[1..] {
            let kind = if rng.below(2) == 0 {
                GateKind::Xor
            } else {
                GateKind::Xnor
            };
            root = n.gate(kind, &format!("g{gate_counter}"), &[root, next]);
            gate_counter += 1;
        }
        // The root is a gate output: a cone always builds at least one
        // subtree with at least one gate.
        n.mark_output(root);
    }
    n
}

fn spec(name: &str, inputs: usize, outputs: usize, gates: usize, seed: u64) -> BenchmarkSpec {
    BenchmarkSpec {
        name: name.to_owned(),
        inputs,
        outputs,
        gates,
        cone_window: 14,
        seed,
    }
}

/// Synthetic stand-in for ISCAS85 **c432** (27-channel interrupt controller):
/// 36 inputs, 7 outputs, ≈160 gates.
pub fn c432() -> Netlist {
    synthetic(&spec("c432", 36, 7, 160, 0x4320))
}

/// Synthetic stand-in for ISCAS85 **c499** (32-bit SEC circuit): 41 inputs,
/// 32 outputs, ≈202 gates.
pub fn c499() -> Netlist {
    synthetic(&spec("c499", 41, 32, 202, 0x4990))
}

/// Synthetic stand-in for ISCAS85 **c880** (8-bit ALU): 60 inputs,
/// 26 outputs, ≈383 gates.
pub fn c880() -> Netlist {
    synthetic(&spec("c880", 60, 26, 383, 0x8800))
}

/// Synthetic stand-in for ISCAS85 **c1355** (32-bit SEC circuit): 41 inputs,
/// 32 outputs, ≈546 gates.
pub fn c1355() -> Netlist {
    synthetic(&spec("c1355", 41, 32, 546, 0x1355))
}

/// Synthetic stand-in for ISCAS85 **c1908** (16-bit SEC/DED circuit):
/// 33 inputs, 25 outputs, ≈880 gates.
pub fn c1908() -> Netlist {
    synthetic(&spec("c1908", 33, 25, 880, 0x1908))
}

/// The benchmark suite used in Tables 4 and 5 of the paper, in table order.
pub fn iscas85_suite() -> Vec<Netlist> {
    vec![c432(), c499(), c880(), c1355(), c1908()]
}

/// Looks a benchmark up by its ISCAS85 name.
pub fn by_name(name: &str) -> Option<Netlist> {
    match name {
        "c432" => Some(c432()),
        "c499" => Some(c499()),
        "c880" => Some(c880()),
        "c1355" => Some(c1355()),
        "c1908" => Some(c1908()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interfaces_match_the_published_benchmarks() {
        let expected = [
            ("c432", 36, 7),
            ("c499", 41, 32),
            ("c880", 60, 26),
            ("c1355", 41, 32),
            ("c1908", 33, 25),
        ];
        for (name, pi, po) in expected {
            let n = by_name(name).unwrap();
            assert_eq!(n.primary_inputs().len(), pi, "{name} PI count");
            assert_eq!(n.primary_outputs().len(), po, "{name} PO count");
            assert!(n.validate().is_ok(), "{name} must validate");
        }
        assert!(by_name("c6288").is_none());
        assert_eq!(iscas85_suite().len(), 5);
    }

    #[test]
    fn gate_counts_scale_with_the_real_benchmarks() {
        let c432 = c432();
        let c1908 = c1908();
        assert!(c432.gate_count() >= 100 && c432.gate_count() <= 250);
        assert!(c1908.gate_count() >= 600 && c1908.gate_count() <= 1200);
        assert!(c1908.gate_count() > c432.gate_count());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = c880();
        let b = c880();
        assert_eq!(a.gate_count(), b.gate_count());
        assert_eq!(a.signal_count(), b.signal_count());
        // Same structure gate by gate.
        for (ga, gb) in a.gates().iter().zip(b.gates()) {
            assert_eq!(ga, gb);
        }
    }

    #[test]
    fn cones_have_bounded_support() {
        for n in iscas85_suite() {
            for &po in n.primary_outputs() {
                let support = n.fanin_support(po);
                assert!(
                    support.len() <= 20,
                    "{}: output {} depends on {} PIs",
                    n.name(),
                    n.signal_name(po),
                    support.len()
                );
            }
        }
    }

    #[test]
    fn every_output_responds_to_some_input() {
        // Sanity: flipping inputs changes at least one output for each
        // benchmark (the circuits are not constant).
        for n in iscas85_suite() {
            let zeros = vec![false; n.primary_inputs().len()];
            let ones = vec![true; n.primary_inputs().len()];
            let out0 = n.evaluate(&zeros).unwrap();
            let out1 = n.evaluate(&ones).unwrap();
            assert_ne!(out0, out1, "{} outputs must depend on inputs", n.name());
        }
    }

    #[test]
    fn custom_spec_is_respected() {
        let s = BenchmarkSpec {
            name: "tiny".into(),
            inputs: 8,
            outputs: 2,
            gates: 20,
            cone_window: 6,
            seed: 42,
        };
        let n = synthetic(&s);
        assert_eq!(n.primary_inputs().len(), 8);
        assert_eq!(n.primary_outputs().len(), 2);
        assert!(n.gate_count() >= 10);
        assert!(n.validate().is_ok());
    }
}
