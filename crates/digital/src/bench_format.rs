//! Reader and writer for the ISCAS85 `.bench` netlist format.
//!
//! The format consists of `INPUT(name)`, `OUTPUT(name)` and
//! `name = GATE(in1, in2, ...)` lines, with `#` comments.  If real ISCAS85
//! netlists are available locally they can be loaded with
//! [`parse`] and used everywhere a synthetic benchmark is used.

use std::collections::{HashMap, HashSet};

use crate::gate::GateKind;
use crate::netlist::{Netlist, SignalId};
use crate::DigitalError;

/// Parses a `.bench` netlist.
///
/// # Errors
///
/// Returns [`DigitalError::ParseError`] describing the offending line when
/// the text is not well-formed: garbage lines, unsupported gates (`DFF` is
/// rejected: this reproduction handles combinational circuits only), wrong
/// arity for unary gates, duplicate signal definitions or `OUTPUT`
/// declarations, and references to undefined signals are all structured
/// errors — malformed text can never panic the parser.
pub fn parse(name: &str, text: &str) -> Result<Netlist, DigitalError> {
    struct GateLine {
        output: String,
        kind: GateKind,
        inputs: Vec<String>,
    }
    let mut input_names = Vec::new();
    let mut output_names = Vec::new();
    let mut gate_lines = Vec::new();
    // Every name a line *defines* (INPUT or gate output): duplicates would
    // trip the netlist builder's internal invariants, so they are rejected
    // here with the offending line attached.  OUTPUT declarations are
    // tracked separately (they reference, not define).
    let mut defined: HashSet<String> = HashSet::new();
    let mut declared_outputs: HashSet<String> = HashSet::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| DigitalError::ParseError {
            line: lineno + 1,
            reason: msg.to_owned(),
        };
        if let Some(rest) = line.strip_prefix("INPUT(") {
            let name = rest.strip_suffix(')').ok_or_else(|| err("missing ')'"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(err("empty INPUT name"));
            }
            if !defined.insert(name.to_owned()) {
                return Err(err(&format!("duplicate definition of signal '{name}'")));
            }
            input_names.push(name.to_owned());
        } else if let Some(rest) = line.strip_prefix("OUTPUT(") {
            let name = rest.strip_suffix(')').ok_or_else(|| err("missing ')'"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(err("empty OUTPUT name"));
            }
            if !declared_outputs.insert(name.to_owned()) {
                return Err(err(&format!("duplicate OUTPUT({name})")));
            }
            output_names.push(name.to_owned());
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let output = lhs.trim().to_owned();
            if output.is_empty() {
                return Err(err("gate with no output name"));
            }
            let rhs = rhs.trim();
            let open = rhs.find('(').ok_or_else(|| err("missing '(' in gate"))?;
            let close = rhs.rfind(')').ok_or_else(|| err("missing ')' in gate"))?;
            let keyword = rhs[..open].trim();
            if keyword.eq_ignore_ascii_case("DFF") {
                return Err(err("sequential element DFF is not supported"));
            }
            let kind = GateKind::from_bench_keyword(keyword)
                .ok_or_else(|| err(&format!("unknown gate '{keyword}'")))?;
            let inputs: Vec<String> = rhs[open + 1..close]
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            if inputs.is_empty() {
                return Err(err("gate with no inputs"));
            }
            if kind.is_unary() && inputs.len() != 1 {
                return Err(err(&format!(
                    "{} takes exactly one input, got {}",
                    kind.bench_keyword(),
                    inputs.len()
                )));
            }
            if !defined.insert(output.clone()) {
                return Err(err(&format!("duplicate definition of signal '{output}'")));
            }
            gate_lines.push(GateLine {
                output,
                kind,
                inputs,
            });
        } else {
            return Err(err("unrecognized line"));
        }
    }

    // Build the netlist in dependency order (gate lines may be out of order
    // in the file).
    let mut netlist = Netlist::new(name);
    let mut resolved: HashMap<String, SignalId> = HashMap::new();
    for input in &input_names {
        let id = netlist.input(input);
        resolved.insert(input.clone(), id);
    }
    let mut remaining: Vec<GateLine> = gate_lines;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|g| {
            if g.inputs.iter().all(|i| resolved.contains_key(i)) {
                let ids: Vec<SignalId> = g.inputs.iter().map(|i| resolved[i]).collect();
                let out = netlist.gate(g.kind, &g.output, &ids);
                resolved.insert(g.output.clone(), out);
                false
            } else {
                true
            }
        });
        if remaining.len() == before {
            return Err(DigitalError::ParseError {
                line: 0,
                reason: format!(
                    "could not resolve {} gate(s); undefined or cyclic signals (first: '{}')",
                    remaining.len(),
                    remaining[0].output
                ),
            });
        }
    }
    for output in &output_names {
        let id = resolved
            .get(output)
            .copied()
            .ok_or_else(|| DigitalError::ParseError {
                line: 0,
                reason: format!("OUTPUT({output}) is never defined"),
            })?;
        netlist.mark_output(id);
    }
    Ok(netlist)
}

/// Writes a netlist in `.bench` format.
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", netlist.name()));
    out.push_str(&format!(
        "# {} inputs, {} outputs, {} gates\n",
        netlist.primary_inputs().len(),
        netlist.primary_outputs().len(),
        netlist.gate_count()
    ));
    for &pi in netlist.primary_inputs() {
        out.push_str(&format!("INPUT({})\n", netlist.signal_name(pi)));
    }
    for &po in netlist.primary_outputs() {
        out.push_str(&format!("OUTPUT({})\n", netlist.signal_name(po)));
    }
    for gate in netlist.gates() {
        let inputs: Vec<&str> = gate
            .inputs
            .iter()
            .map(|i| netlist.signal_name(*i))
            .collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            netlist.signal_name(gate.output),
            gate.kind.bench_keyword(),
            inputs.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits;

    const SAMPLE: &str = "
# a tiny circuit
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
t1 = AND(a, b)
y = OR(t1, c)
";

    #[test]
    fn parse_simple_circuit() {
        let n = parse("tiny", SAMPLE).unwrap();
        assert_eq!(n.primary_inputs().len(), 3);
        assert_eq!(n.primary_outputs().len(), 1);
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.evaluate(&[true, true, false]).unwrap(), vec![true]);
        assert_eq!(n.evaluate(&[false, true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn parse_handles_out_of_order_definitions() {
        let text = "
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NOT(t1)
t1 = NAND(a, b)
";
        let n = parse("ooo", text).unwrap();
        assert_eq!(n.evaluate(&[true, true]).unwrap(), vec![true]);
        assert_eq!(n.evaluate(&[true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn roundtrip_through_writer() {
        let original = circuits::adder4();
        let text = write(&original);
        let reparsed = parse("adder4", &text).unwrap();
        assert_eq!(
            reparsed.primary_inputs().len(),
            original.primary_inputs().len()
        );
        assert_eq!(
            reparsed.primary_outputs().len(),
            original.primary_outputs().len()
        );
        assert_eq!(reparsed.gate_count(), original.gate_count());
        // Behaviour must be identical on a few patterns.
        for i in 0..16u32 {
            let pattern: Vec<bool> = (0..9).map(|b| (i >> (b % 4)) & 1 == 1).collect();
            assert_eq!(
                original.evaluate(&pattern).unwrap(),
                reparsed.evaluate(&pattern).unwrap()
            );
        }
    }

    #[test]
    fn errors_are_reported_with_context() {
        assert!(matches!(
            parse("bad", "FROB(a)"),
            Err(DigitalError::ParseError { .. })
        ));
        assert!(matches!(
            parse("bad", "INPUT(a)\ny = MYSTERY(a)"),
            Err(DigitalError::ParseError { .. })
        ));
        assert!(matches!(
            parse("bad", "INPUT(a)\nOUTPUT(y)\ny = DFF(a)"),
            Err(DigitalError::ParseError { .. })
        ));
        assert!(matches!(
            parse("bad", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)"),
            Err(DigitalError::ParseError { .. })
        ));
        let err = parse("bad", "INPUT(a)\nOUTPUT(y)").unwrap_err();
        assert!(format!("{err}").contains("never defined"));
    }

    #[test]
    fn malformed_definitions_are_errors_not_panics() {
        // Each of these used to reach a netlist-builder assertion; all must
        // surface as structured parse errors with the offending line.
        let cases: &[(&str, &str)] = &[
            ("INPUT(a)\nINPUT(a)", "duplicate definition"),
            ("INPUT(a)\na = NOT(a)", "duplicate definition"),
            (
                "INPUT(a)\nINPUT(b)\nt = AND(a, b)\nt = OR(a, b)",
                "duplicate definition",
            ),
            (
                "INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)",
                "duplicate OUTPUT",
            ),
            ("INPUT(a)\nINPUT(b)\ny = NOT(a, b)", "exactly one input"),
            ("INPUT(a)\nINPUT(b)\ny = BUF(a, b)", "exactly one input"),
            ("INPUT()", "empty INPUT"),
            ("OUTPUT()", "empty OUTPUT"),
            ("INPUT(a)\n = NOT(a)", "no output name"),
        ];
        for (text, needle) in cases {
            match parse("bad", text) {
                Err(DigitalError::ParseError { line, reason }) => assert!(
                    reason.contains(needle),
                    "for {text:?}: expected {needle:?} in {reason:?} (line {line})"
                ),
                other => panic!("for {text:?}: expected ParseError, got {other:?}"),
            }
        }
    }
}
