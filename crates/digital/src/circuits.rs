//! Hand-built circuits: the paper's Figure-3 example, the 4-bit adder of the
//! validation board (74LS283) and a few generic building blocks used in
//! tests and examples.

use crate::gate::GateKind;
use crate::netlist::{Netlist, SignalId};

/// The two-output digital circuit of Figure 3 / Example 2 of the paper.
///
/// Lines: primary inputs `l0`, `l1`, `l2`, `l4` (`l0` and `l2` are driven by
/// the conversion block in the mixed circuit), fanout branch `l3` of `l2`,
/// internal lines `l6`, `l7`, and the outputs `Vo1`, `Vo2`:
///
/// ```text
/// l3  = BUF(l2)          (fanout branch)
/// l6  = OR(l0, l3)
/// l7  = OR(l1, l2)
/// Vo1 = AND(l6, l7)
/// Vo2 = AND(l6, l4)
/// ```
///
/// The circuit has 9 lines → 18 uncollapsed stuck-at faults.  Considered
/// alone it is fully testable; under the constraint `Fc = l0 + l2` the faults
/// `l0 s-a-1` and `l3 s-a-1` become untestable, exactly as reported in the
/// paper.
pub fn figure3_circuit() -> Netlist {
    let mut n = Netlist::new("figure3");
    let l0 = n.input("l0");
    let l1 = n.input("l1");
    let l2 = n.input("l2");
    let l4 = n.input("l4");
    let l3 = n.gate(GateKind::Buf, "l3", &[l2]);
    let l6 = n.gate(GateKind::Or, "l6", &[l0, l3]);
    let l7 = n.gate(GateKind::Or, "l7", &[l1, l2]);
    let vo1 = n.gate(GateKind::And, "Vo1", &[l6, l7]);
    let vo2 = n.gate(GateKind::And, "Vo2", &[l6, l4]);
    n.mark_output(vo1);
    n.mark_output(vo2);
    n
}

/// A 1-bit full adder; returns `(sum, carry_out)`.
fn full_adder(
    n: &mut Netlist,
    prefix: &str,
    a: SignalId,
    b: SignalId,
    cin: SignalId,
) -> (SignalId, SignalId) {
    let axb = n.gate(GateKind::Xor, &format!("{prefix}_axb"), &[a, b]);
    let sum = n.gate(GateKind::Xor, &format!("{prefix}_sum"), &[axb, cin]);
    let ab = n.gate(GateKind::And, &format!("{prefix}_ab"), &[a, b]);
    let axb_c = n.gate(GateKind::And, &format!("{prefix}_axbc"), &[axb, cin]);
    let cout = n.gate(GateKind::Or, &format!("{prefix}_cout"), &[ab, axb_c]);
    (sum, cout)
}

/// The 4-bit ripple-carry binary adder used on the validation board
/// (a 74LS283 equivalent): inputs `a0..a3`, `b0..b3`, `cin`; outputs
/// `s0..s3`, `cout`.
pub fn adder4() -> Netlist {
    let mut n = Netlist::new("adder4");
    let a: Vec<SignalId> = (0..4).map(|i| n.input(&format!("a{i}"))).collect();
    let b: Vec<SignalId> = (0..4).map(|i| n.input(&format!("b{i}"))).collect();
    let cin = n.input("cin");
    let mut carry = cin;
    for i in 0..4 {
        let (sum, cout) = full_adder(&mut n, &format!("fa{i}"), a[i], b[i], carry);
        n.mark_output(sum);
        carry = cout;
    }
    n.mark_output(carry);
    n
}

/// An `n`-bit even-parity tree: output is 1 when an odd number of inputs are
/// high.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn parity(bits: usize) -> Netlist {
    assert!(bits > 0, "parity needs at least one input");
    let mut n = Netlist::new(&format!("parity{bits}"));
    let mut layer: Vec<SignalId> = (0..bits).map(|i| n.input(&format!("x{i}"))).collect();
    let mut stage = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for (j, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                next.push(n.gate(GateKind::Xor, &format!("p{stage}_{j}"), &[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
        stage += 1;
    }
    n.mark_output(layer[0]);
    n
}

/// A `2^sel`-to-1 multiplexer with `sel` select lines.
///
/// # Panics
///
/// Panics if `sel` is zero.
pub fn multiplexer(sel: usize) -> Netlist {
    assert!(sel > 0, "multiplexer needs at least one select line");
    let mut n = Netlist::new(&format!("mux{}", 1 << sel));
    let data: Vec<SignalId> = (0..1usize << sel)
        .map(|i| n.input(&format!("d{i}")))
        .collect();
    let selects: Vec<SignalId> = (0..sel).map(|i| n.input(&format!("s{i}"))).collect();
    let select_bars: Vec<SignalId> = selects
        .iter()
        .enumerate()
        .map(|(i, &s)| n.gate(GateKind::Not, &format!("sn{i}"), &[s]))
        .collect();
    let mut terms = Vec::new();
    for (i, &d) in data.iter().enumerate() {
        let mut inputs = vec![d];
        for (b, (&s, &sb)) in selects.iter().zip(&select_bars).enumerate() {
            inputs.push(if (i >> b) & 1 == 1 { s } else { sb });
        }
        terms.push(n.gate(GateKind::And, &format!("t{i}"), &inputs));
    }
    let out = n.gate(GateKind::Or, "y", &terms);
    n.mark_output(out);
    n
}

/// An `n`-bit equality comparator: output is 1 when `a == b`.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn comparator(bits: usize) -> Netlist {
    assert!(bits > 0, "comparator needs at least one bit");
    let mut n = Netlist::new(&format!("cmp{bits}"));
    let a: Vec<SignalId> = (0..bits).map(|i| n.input(&format!("a{i}"))).collect();
    let b: Vec<SignalId> = (0..bits).map(|i| n.input(&format!("b{i}"))).collect();
    let eq_bits: Vec<SignalId> = (0..bits)
        .map(|i| n.gate(GateKind::Xnor, &format!("eq{i}"), &[a[i], b[i]]))
        .collect();
    let out = n.gate(GateKind::And, "equal", &eq_bits);
    n.mark_output(out);
    n
}

/// A `sel`-to-`2^sel` decoder (one-hot outputs).
///
/// # Panics
///
/// Panics if `sel` is zero.
pub fn decoder(sel: usize) -> Netlist {
    assert!(sel > 0, "decoder needs at least one select line");
    let mut n = Netlist::new(&format!("dec{sel}"));
    let selects: Vec<SignalId> = (0..sel).map(|i| n.input(&format!("s{i}"))).collect();
    let select_bars: Vec<SignalId> = selects
        .iter()
        .enumerate()
        .map(|(i, &s)| n.gate(GateKind::Not, &format!("sn{i}"), &[s]))
        .collect();
    for i in 0..1usize << sel {
        let inputs: Vec<SignalId> = (0..sel)
            .map(|b| {
                if (i >> b) & 1 == 1 {
                    selects[b]
                } else {
                    select_bars[b]
                }
            })
            .collect();
        let o = n.gate(GateKind::And, &format!("y{i}"), &inputs);
        n.mark_output(o);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_structure_matches_paper() {
        let n = figure3_circuit();
        assert!(n.validate().is_ok());
        assert_eq!(n.primary_inputs().len(), 4);
        assert_eq!(n.primary_outputs().len(), 2);
        assert_eq!(n.signal_count(), 9);
        // Vo1 = (l0 + l2)(l1 + l2); with l0=0, l1=0, l2=1 both outputs follow
        // the paper's example values.
        let out = n.evaluate(&[false, false, true, false]).unwrap();
        assert_eq!(out, vec![true, false]); // Vo1 = 1, Vo2 = l4 = 0
    }

    #[test]
    fn adder4_adds() {
        let n = adder4();
        assert!(n.validate().is_ok());
        assert_eq!(n.primary_inputs().len(), 9);
        assert_eq!(n.primary_outputs().len(), 5);
        for (a, b, cin) in [(3u32, 5u32, 0u32), (15, 15, 1), (9, 6, 1), (0, 0, 0)] {
            let mut pattern = Vec::new();
            for i in 0..4 {
                pattern.push((a >> i) & 1 == 1);
            }
            for i in 0..4 {
                pattern.push((b >> i) & 1 == 1);
            }
            pattern.push(cin == 1);
            let out = n.evaluate(&pattern).unwrap();
            let mut result = 0u32;
            for i in 0..4 {
                if out[i] {
                    result |= 1 << i;
                }
            }
            if out[4] {
                result |= 1 << 4;
            }
            assert_eq!(result, a + b + cin, "{a} + {b} + {cin}");
        }
    }

    #[test]
    fn parity_counts_ones() {
        let n = parity(5);
        assert!(n.validate().is_ok());
        let out = n.evaluate(&[true, true, true, false, false]).unwrap();
        assert_eq!(out[0], true);
        let out = n.evaluate(&[true, true, false, false, false]).unwrap();
        assert_eq!(out[0], false);
    }

    #[test]
    fn multiplexer_selects() {
        let n = multiplexer(2);
        assert!(n.validate().is_ok());
        // d = [d0..d3], s = [s0, s1]; select index 2 (s0=0, s1=1) → d2.
        let out = n
            .evaluate(&[false, false, true, false, false, true])
            .unwrap();
        assert_eq!(out[0], true);
        let out = n
            .evaluate(&[true, false, false, false, false, true])
            .unwrap();
        assert_eq!(out[0], false);
    }

    #[test]
    fn comparator_detects_equality() {
        let n = comparator(3);
        assert!(n.validate().is_ok());
        let out = n.evaluate(&[true, false, true, true, false, true]).unwrap();
        assert_eq!(out[0], true);
        let out = n.evaluate(&[true, false, true, true, true, true]).unwrap();
        assert_eq!(out[0], false);
    }

    #[test]
    fn decoder_is_one_hot() {
        let n = decoder(3);
        assert!(n.validate().is_ok());
        assert_eq!(n.primary_outputs().len(), 8);
        let out = n.evaluate(&[true, false, true]).unwrap(); // index 5
        let ones = out.iter().filter(|&&b| b).count();
        assert_eq!(ones, 1);
        assert!(out[5]);
    }
}
