//! Five-valued logic (Roth's D-algebra): `0`, `1`, `X`, `D`, `D̄`.
//!
//! `D` represents a line that is `1` in the fault-free circuit and `0` in the
//! faulty circuit; `D̄` the opposite.  The paper uses composite values to
//! describe the effect of an analog fault on the comparator outputs of the
//! conversion block and to propagate that effect through the digital block.

use std::fmt;

use crate::gate::GateKind;

/// A value of the five-valued D-algebra.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Logic {
    /// Logic zero in both the good and the faulty circuit.
    Zero,
    /// Logic one in both the good and the faulty circuit.
    One,
    /// Unknown / unassigned.
    #[default]
    X,
    /// One in the good circuit, zero in the faulty circuit.
    D,
    /// Zero in the good circuit, one in the faulty circuit.
    Dbar,
}

impl Logic {
    /// Builds a composite value from the pair `(good, faulty)`.
    pub fn from_pair(good: bool, faulty: bool) -> Logic {
        match (good, faulty) {
            (false, false) => Logic::Zero,
            (true, true) => Logic::One,
            (true, false) => Logic::D,
            (false, true) => Logic::Dbar,
        }
    }

    /// Value seen in the fault-free circuit (`None` for `X`).
    pub fn good(self) -> Option<bool> {
        match self {
            Logic::Zero | Logic::Dbar => Some(false),
            Logic::One | Logic::D => Some(true),
            Logic::X => None,
        }
    }

    /// Value seen in the faulty circuit (`None` for `X`).
    pub fn faulty(self) -> Option<bool> {
        match self {
            Logic::Zero | Logic::D => Some(false),
            Logic::One | Logic::Dbar => Some(true),
            Logic::X => None,
        }
    }

    /// Returns `true` for `D` or `D̄` — a fault effect is present.
    pub fn is_fault_effect(self) -> bool {
        matches!(self, Logic::D | Logic::Dbar)
    }

    /// Logical negation in the D-algebra.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
            Logic::D => Logic::Dbar,
            Logic::Dbar => Logic::D,
        }
    }

    /// Logical AND in the D-algebra.
    pub fn and(self, other: Logic) -> Logic {
        match (self.good(), other.good(), self.faulty(), other.faulty()) {
            (Some(g1), Some(g2), Some(f1), Some(f2)) => Logic::from_pair(g1 && g2, f1 && f2),
            _ => {
                // X handling: 0 AND anything = 0; otherwise X.
                if self == Logic::Zero || other == Logic::Zero {
                    Logic::Zero
                } else {
                    Logic::X
                }
            }
        }
    }

    /// Logical OR in the D-algebra.
    pub fn or(self, other: Logic) -> Logic {
        match (self.good(), other.good(), self.faulty(), other.faulty()) {
            (Some(g1), Some(g2), Some(f1), Some(f2)) => Logic::from_pair(g1 || g2, f1 || f2),
            _ => {
                if self == Logic::One || other == Logic::One {
                    Logic::One
                } else {
                    Logic::X
                }
            }
        }
    }

    /// Logical XOR in the D-algebra.
    pub fn xor(self, other: Logic) -> Logic {
        match (self.good(), other.good(), self.faulty(), other.faulty()) {
            (Some(g1), Some(g2), Some(f1), Some(f2)) => Logic::from_pair(g1 ^ g2, f1 ^ f2),
            _ => Logic::X,
        }
    }

    /// Evaluates an arbitrary gate on D-algebra inputs.
    ///
    /// # Panics
    ///
    /// Panics if a unary gate receives more than one input.
    pub fn eval_gate(kind: GateKind, inputs: &[Logic]) -> Logic {
        match kind {
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1);
                inputs[0]
            }
            GateKind::Not => {
                assert_eq!(inputs.len(), 1);
                inputs[0].not()
            }
            GateKind::And => inputs.iter().fold(Logic::One, |a, &b| a.and(b)),
            GateKind::Nand => inputs.iter().fold(Logic::One, |a, &b| a.and(b)).not(),
            GateKind::Or => inputs.iter().fold(Logic::Zero, |a, &b| a.or(b)),
            GateKind::Nor => inputs.iter().fold(Logic::Zero, |a, &b| a.or(b)).not(),
            GateKind::Xor => inputs.iter().fold(Logic::Zero, |a, &b| a.xor(b)),
            GateKind::Xnor => inputs.iter().fold(Logic::Zero, |a, &b| a.xor(b)).not(),
        }
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Logic::Zero => "0",
            Logic::One => "1",
            Logic::X => "X",
            Logic::D => "D",
            Logic::Dbar => "D'",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_pair_roundtrip() {
        assert_eq!(Logic::from_pair(true, false), Logic::D);
        assert_eq!(Logic::from_pair(false, true), Logic::Dbar);
        assert_eq!(Logic::from_pair(true, true), Logic::One);
        assert_eq!(Logic::from_pair(false, false), Logic::Zero);
        assert_eq!(Logic::D.good(), Some(true));
        assert_eq!(Logic::D.faulty(), Some(false));
        assert_eq!(Logic::X.good(), None);
        assert!(Logic::D.is_fault_effect());
        assert!(Logic::Dbar.is_fault_effect());
        assert!(!Logic::One.is_fault_effect());
    }

    #[test]
    fn d_algebra_and_or() {
        // D AND 1 = D, D AND 0 = 0, D AND D' = 0.
        assert_eq!(Logic::D.and(Logic::One), Logic::D);
        assert_eq!(Logic::D.and(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::D.and(Logic::Dbar), Logic::Zero);
        // D OR 0 = D, D OR 1 = 1, D OR D' = 1.
        assert_eq!(Logic::D.or(Logic::Zero), Logic::D);
        assert_eq!(Logic::D.or(Logic::One), Logic::One);
        assert_eq!(Logic::D.or(Logic::Dbar), Logic::One);
        // NOT D = D'.
        assert_eq!(Logic::D.not(), Logic::Dbar);
        assert_eq!(Logic::Dbar.not(), Logic::D);
    }

    #[test]
    fn x_propagation_rules() {
        assert_eq!(Logic::X.and(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::X.and(Logic::One), Logic::X);
        assert_eq!(Logic::X.or(Logic::One), Logic::One);
        assert_eq!(Logic::X.or(Logic::Zero), Logic::X);
        assert_eq!(Logic::X.xor(Logic::One), Logic::X);
        assert_eq!(Logic::X.not(), Logic::X);
        assert_eq!(Logic::X.and(Logic::D), Logic::X);
    }

    #[test]
    fn xor_with_fault_effects() {
        // D XOR D = 0 (both circuits agree), D XOR D' = 1.
        assert_eq!(Logic::D.xor(Logic::D), Logic::Zero);
        assert_eq!(Logic::D.xor(Logic::Dbar), Logic::One);
        assert_eq!(Logic::D.xor(Logic::Zero), Logic::D);
        assert_eq!(Logic::D.xor(Logic::One), Logic::Dbar);
    }

    #[test]
    fn gate_evaluation_in_d_algebra() {
        assert_eq!(
            Logic::eval_gate(GateKind::And, &[Logic::D, Logic::One, Logic::One]),
            Logic::D
        );
        assert_eq!(
            Logic::eval_gate(GateKind::Nor, &[Logic::Zero, Logic::D]),
            Logic::Dbar
        );
        assert_eq!(
            Logic::eval_gate(GateKind::Nand, &[Logic::D, Logic::Dbar]),
            Logic::One
        );
        assert_eq!(Logic::eval_gate(GateKind::Not, &[Logic::Dbar]), Logic::D);
        assert_eq!(Logic::eval_gate(GateKind::Buf, &[Logic::X]), Logic::X);
        assert_eq!(
            Logic::eval_gate(GateKind::Xnor, &[Logic::D, Logic::Zero]),
            Logic::Dbar
        );
    }

    #[test]
    fn display_and_from_bool() {
        assert_eq!(format!("{}", Logic::Dbar), "D'");
        assert_eq!(Logic::from(true), Logic::One);
        assert_eq!(Logic::from(false), Logic::Zero);
        assert_eq!(Logic::default(), Logic::X);
    }
}
