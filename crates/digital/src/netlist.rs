//! Combinational gate-level netlists.
//!
//! A [`Netlist`] is a DAG of gates connected by named *signals* (the paper's
//! "lines").  Every signal is a potential stuck-at fault site, including
//! primary inputs, internal gate outputs and fanout branches (modelled as
//! `Buf` gates).

use std::collections::HashMap;
use std::fmt;

use crate::gate::GateKind;
use crate::DigitalError;

/// Identifier of a signal (line) in a netlist.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Raw index of the signal.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a gate in a netlist.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Raw index of the gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A gate instance: kind, input signals and output signal.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Input signals in pin order.
    pub inputs: Vec<SignalId>,
    /// Output signal driven by this gate.
    pub output: SignalId,
}

#[derive(Clone, Debug, PartialEq)]
struct Signal {
    name: String,
    driver: Option<GateId>,
}

/// A combinational gate-level netlist.
///
/// # Example
///
/// ```
/// use msatpg_digital::netlist::Netlist;
/// use msatpg_digital::gate::GateKind;
///
/// let mut n = Netlist::new("half-adder");
/// let a = n.input("a");
/// let b = n.input("b");
/// let sum = n.gate(GateKind::Xor, "sum", &[a, b]);
/// let carry = n.gate(GateKind::And, "carry", &[a, b]);
/// n.mark_output(sum);
/// n.mark_output(carry);
/// assert_eq!(n.primary_inputs().len(), 2);
/// assert_eq!(n.primary_outputs().len(), 2);
/// assert_eq!(n.evaluate(&[true, true]).unwrap(), vec![false, true]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    name: String,
    signals: Vec<Signal>,
    by_name: HashMap<String, SignalId>,
    gates: Vec<Gate>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
}

impl Netlist {
    /// Creates an empty netlist with the given name.
    pub fn new(name: &str) -> Self {
        Netlist {
            name: name.to_owned(),
            ..Default::default()
        }
    }

    /// Name of the netlist.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a primary input and returns its signal.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used.
    pub fn input(&mut self, name: &str) -> SignalId {
        let id = self.new_signal(name, None);
        self.inputs.push(id);
        id
    }

    /// Adds a gate driving a new signal named `output_name`.
    ///
    /// # Panics
    ///
    /// Panics if the output name is already used, if `inputs` is empty, or if
    /// a unary gate receives more than one input.
    pub fn gate(&mut self, kind: GateKind, output_name: &str, inputs: &[SignalId]) -> SignalId {
        assert!(!inputs.is_empty(), "gate must have at least one input");
        if kind.is_unary() {
            assert_eq!(inputs.len(), 1, "unary gate takes exactly one input");
        }
        let gate_id = GateId(self.gates.len() as u32);
        let output = self.new_signal(output_name, Some(gate_id));
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        output
    }

    /// Marks a signal as a primary output.
    pub fn mark_output(&mut self, signal: SignalId) {
        if !self.outputs.contains(&signal) {
            self.outputs.push(signal);
        }
    }

    fn new_signal(&mut self, name: &str, driver: Option<GateId>) -> SignalId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate signal name {name}"
        );
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Signal {
            name: name.to_owned(),
            driver,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Primary inputs in declaration order.
    pub fn primary_inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn primary_outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// All gates in insertion (topological) order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of signals (lines).
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Name of a signal.
    pub fn signal_name(&self, signal: SignalId) -> &str {
        &self.signals[signal.index()].name
    }

    /// Looks up a signal by name.
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// The gate driving `signal`, or `None` for primary inputs.
    pub fn driver(&self, signal: SignalId) -> Option<&Gate> {
        self.signals[signal.index()]
            .driver
            .map(|g| &self.gates[g.index()])
    }

    /// Returns `true` if the signal is a primary input.
    pub fn is_primary_input(&self, signal: SignalId) -> bool {
        self.signals[signal.index()].driver.is_none()
    }

    /// Returns `true` if the signal is a primary output.
    pub fn is_primary_output(&self, signal: SignalId) -> bool {
        self.outputs.contains(&signal)
    }

    /// All signals in id order.
    pub fn signals(&self) -> Vec<SignalId> {
        (0..self.signals.len() as u32).map(SignalId).collect()
    }

    /// Signals in the transitive fanout of `signal` (excluding `signal`
    /// itself), i.e. every line whose value can be affected by it.
    pub fn fanout_cone(&self, signal: SignalId) -> Vec<SignalId> {
        let mut affected = vec![false; self.signals.len()];
        affected[signal.index()] = true;
        let mut cone = Vec::new();
        // Gates are stored in topological order, so one pass suffices.
        for gate in &self.gates {
            if gate.inputs.iter().any(|i| affected[i.index()]) {
                if !affected[gate.output.index()] {
                    affected[gate.output.index()] = true;
                    cone.push(gate.output);
                }
            }
        }
        cone
    }

    /// Primary inputs in the transitive fanin of `signal` (its support).
    pub fn fanin_support(&self, signal: SignalId) -> Vec<SignalId> {
        let mut needed = vec![false; self.signals.len()];
        needed[signal.index()] = true;
        // Walk gates in reverse topological order.
        for gate in self.gates.iter().rev() {
            if needed[gate.output.index()] {
                for i in &gate.inputs {
                    needed[i.index()] = true;
                }
            }
        }
        self.inputs
            .iter()
            .copied()
            .filter(|s| needed[s.index()])
            .collect()
    }

    /// Logic level of every signal (primary inputs are level 0; a gate output
    /// is one more than its deepest input).
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.signals.len()];
        for gate in &self.gates {
            let max_in = gate
                .inputs
                .iter()
                .map(|i| level[i.index()])
                .max()
                .unwrap_or(0);
            level[gate.output.index()] = max_in + 1;
        }
        level
    }

    /// Depth of the netlist (maximum logic level of any primary output).
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|o| levels[o.index()])
            .max()
            .unwrap_or(0)
    }

    /// Structural validation: every primary output must be driven or be an
    /// input, every gate input must precede the gate (guaranteed by the
    /// builder), and there must be at least one input and one output.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError::InvalidNetlist`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<(), DigitalError> {
        if self.inputs.is_empty() {
            return Err(DigitalError::InvalidNetlist {
                reason: "netlist has no primary inputs".to_owned(),
            });
        }
        if self.outputs.is_empty() {
            return Err(DigitalError::InvalidNetlist {
                reason: "netlist has no primary outputs".to_owned(),
            });
        }
        for gate in &self.gates {
            for input in &gate.inputs {
                if input.index() >= gate.output.index() {
                    return Err(DigitalError::InvalidNetlist {
                        reason: format!(
                            "gate output '{}' depends on a later signal '{}'",
                            self.signal_name(gate.output),
                            self.signal_name(*input)
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluates the netlist on a primary-input assignment and returns the
    /// primary-output values in output order.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError::PatternWidthMismatch`] if the pattern length
    /// differs from the number of primary inputs.
    pub fn evaluate(&self, pattern: &[bool]) -> Result<Vec<bool>, DigitalError> {
        let all = self.evaluate_all(pattern)?;
        Ok(self.outputs.iter().map(|o| all[o.index()]).collect())
    }

    /// Evaluates the netlist and returns the value of every signal, indexed
    /// by signal id.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError::PatternWidthMismatch`] if the pattern length
    /// differs from the number of primary inputs.
    pub fn evaluate_all(&self, pattern: &[bool]) -> Result<Vec<bool>, DigitalError> {
        if pattern.len() != self.inputs.len() {
            return Err(DigitalError::PatternWidthMismatch {
                expected: self.inputs.len(),
                actual: pattern.len(),
            });
        }
        let mut values = vec![false; self.signals.len()];
        for (i, &sig) in self.inputs.iter().enumerate() {
            values[sig.index()] = pattern[i];
        }
        for gate in &self.gates {
            let ins: Vec<bool> = gate.inputs.iter().map(|i| values[i.index()]).collect();
            values[gate.output.index()] = gate.kind.eval(&ins);
        }
        Ok(values)
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PIs, {} POs, {} gates, {} lines, depth {}",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gates.len(),
            self.signals.len(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut n = Netlist::new("half-adder");
        let a = n.input("a");
        let b = n.input("b");
        let sum = n.gate(GateKind::Xor, "sum", &[a, b]);
        let carry = n.gate(GateKind::And, "carry", &[a, b]);
        n.mark_output(sum);
        n.mark_output(carry);
        n
    }

    #[test]
    fn half_adder_truth_table() {
        let n = half_adder();
        assert!(n.validate().is_ok());
        assert_eq!(n.evaluate(&[false, false]).unwrap(), vec![false, false]);
        assert_eq!(n.evaluate(&[true, false]).unwrap(), vec![true, false]);
        assert_eq!(n.evaluate(&[false, true]).unwrap(), vec![true, false]);
        assert_eq!(n.evaluate(&[true, true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn structure_queries() {
        let n = half_adder();
        assert_eq!(n.signal_count(), 4);
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.depth(), 1);
        let a = n.find_signal("a").unwrap();
        let sum = n.find_signal("sum").unwrap();
        assert!(n.is_primary_input(a));
        assert!(!n.is_primary_input(sum));
        assert!(n.is_primary_output(sum));
        assert!(!n.is_primary_output(a));
        assert_eq!(n.signal_name(sum), "sum");
        assert!(n.driver(sum).is_some());
        assert!(n.driver(a).is_none());
        assert_eq!(n.fanout_cone(a).len(), 2);
        assert_eq!(n.fanin_support(sum).len(), 2);
        assert!(format!("{n}").contains("half-adder"));
    }

    #[test]
    fn pattern_width_is_checked() {
        let n = half_adder();
        assert!(matches!(
            n.evaluate(&[true]),
            Err(DigitalError::PatternWidthMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn validation_rejects_empty_interfaces() {
        let n = Netlist::new("empty");
        assert!(matches!(
            n.validate(),
            Err(DigitalError::InvalidNetlist { .. })
        ));
        let mut n2 = Netlist::new("no-output");
        n2.input("a");
        assert!(matches!(
            n2.validate(),
            Err(DigitalError::InvalidNetlist { .. })
        ));
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut n = half_adder();
        let sum = n.find_signal("sum").unwrap();
        n.mark_output(sum);
        assert_eq!(n.primary_outputs().len(), 2);
    }

    #[test]
    fn levels_increase_along_paths() {
        let mut n = Netlist::new("chain");
        let a = n.input("a");
        let b = n.gate(GateKind::Not, "b", &[a]);
        let c = n.gate(GateKind::Not, "c", &[b]);
        let d = n.gate(GateKind::Not, "d", &[c]);
        n.mark_output(d);
        let levels = n.levels();
        assert_eq!(levels[a.index()], 0);
        assert_eq!(levels[d.index()], 3);
        assert_eq!(n.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate signal name")]
    fn duplicate_signal_names_panic() {
        let mut n = Netlist::new("dup");
        n.input("a");
        n.input("a");
    }
}
