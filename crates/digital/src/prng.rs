//! A small deterministic PRNG (SplitMix64) shared by the synthetic benchmark
//! generator and the random test-pattern baseline.
//!
//! Keeping the generator in-tree means neither reproducible benchmark
//! circuits nor random-TPG experiments depend on an external crate's
//! algorithm stability (or on the crate being available at all — this
//! workspace builds without network access).

/// SplitMix64: a tiny, fast, well-distributed 64-bit PRNG.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound == 0` yields `0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    /// A uniform random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform value in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bool_and_f64_are_reasonable() {
        let mut rng = SplitMix64::new(7);
        let trues = (0..10_000).filter(|_| rng.bool()).count();
        assert!(trues > 4_000 && trues < 6_000, "{trues} trues out of 10000");
        for _ in 0..1_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
        assert_eq!(SplitMix64::new(0).below(0), 0);
    }
}
