//! Deterministic fault injection for robustness testing.
//!
//! A [`ChaosInjector`] decides, as a **pure function of `(seed, site)`**,
//! whether a failure should be injected at a counted decision point.  Sites
//! are stable identifiers chosen by the instrumented code — the workspace
//! keys them by fault-target index in replay order — so for a given seed
//! the exact same set of faults is hit regardless of thread count or
//! scheduling.  That is what lets the chaos proptests assert byte-identical
//! ATPG reports across `MSATPG_THREADS=1/2/8` *while* failures are being
//! injected.
//!
//! Two families of failure classes are modeled.  The **process** classes
//! mirror the real failure modes of the resource-governed ATPG and are
//! drawn via [`ChaosInjector::fires`]:
//!
//! * [`ChaosEvent::Panic`] — the instrumented code should `panic!`,
//!   exercising panic isolation ([`crate::PanicPolicy::Isolate`]);
//! * [`ChaosEvent::Budget`] — the instrumented code should behave as if a
//!   BDD budget had been exhausted, exercising graceful degradation;
//! * [`ChaosEvent::Cancel`] — the instrumented code should fire its
//!   [`crate::CancelToken`], exercising cooperative cancellation.
//!
//! The **store** classes simulate the durability failures a crash-consistent
//! persistence layer must survive, and are drawn via the independent
//! [`ChaosInjector::fires_store`] so arming them never perturbs the
//! process-class decisions at the same sites:
//!
//! * [`ChaosEvent::Crash`] — the process dies mid-write: the temporary file
//!   is written (possibly partially) but never renamed into place;
//! * [`ChaosEvent::TornWrite`] — a truncated prefix reaches the final path;
//! * [`ChaosEvent::BitFlip`] — one checksummed payload bit is inverted.
//!
//! The mixing function is the same SplitMix64 finalizer used by
//! `msatpg_digital::prng`, re-stated here because the dependency points the
//! other way (the digital crate builds on this one); tests seed injectors
//! from that PRNG.

/// Which failure a chaos site should simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChaosEvent {
    /// Panic at the site (`std::panic::panic_any` / `panic!`).
    Panic,
    /// Behave as if a resource budget was exhausted at the site.
    Budget,
    /// Fire the governing cancellation token at the site.
    Cancel,
    /// Die mid-write: leave the temporary file, never rename it into place.
    Crash,
    /// Let a truncated prefix of the bytes reach the final path.
    TornWrite,
    /// Invert one checksummed payload bit before the (otherwise clean)
    /// write.
    BitFlip,
}

/// SplitMix64 finalizer: a bijective avalanche mix (identical constants to
/// `msatpg_digital::prng::SplitMix64`).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seeded failure injector (see the module docs).
///
/// Each failure class has an independent `1 in N` firing rate (`0`
/// disables the class).  When several classes would fire at one site the
/// precedence is `Panic > Budget > Cancel`, so a site yields at most one
/// event and the choice is still a pure function of `(seed, site)`.
///
/// # Example
///
/// ```
/// use msatpg_exec::{ChaosEvent, ChaosInjector};
///
/// let chaos = ChaosInjector::new(42).with_panic_rate(4);
/// // Pure: the same (seed, site) always gives the same answer.
/// for site in 0..100 {
///     assert_eq!(chaos.fires(site), chaos.fires(site));
/// }
/// // Rate 1 fires everywhere; rate 0 never fires.
/// let always = ChaosInjector::new(7).with_budget_rate(1);
/// assert_eq!(always.fires(3), Some(ChaosEvent::Budget));
/// let never = ChaosInjector::new(7);
/// assert_eq!(never.fires(3), None);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosInjector {
    seed: u64,
    panic_in: u64,
    budget_in: u64,
    cancel_in: u64,
    crash_in: u64,
    torn_write_in: u64,
    bit_flip_in: u64,
}

impl ChaosInjector {
    /// An injector with every failure class disabled; arm classes with the
    /// `with_*_rate` builders.
    pub fn new(seed: u64) -> Self {
        ChaosInjector {
            seed,
            panic_in: 0,
            budget_in: 0,
            cancel_in: 0,
            crash_in: 0,
            torn_write_in: 0,
            bit_flip_in: 0,
        }
    }

    /// Arms panics at a `1 in rate` firing probability per site (`0`
    /// disables, `1` fires at every site).
    pub fn with_panic_rate(mut self, rate: u64) -> Self {
        self.panic_in = rate;
        self
    }

    /// Arms simulated budget exhaustion at a `1 in rate` probability.
    pub fn with_budget_rate(mut self, rate: u64) -> Self {
        self.budget_in = rate;
        self
    }

    /// Arms cancellation at a `1 in rate` probability.
    pub fn with_cancel_rate(mut self, rate: u64) -> Self {
        self.cancel_in = rate;
        self
    }

    /// Arms mid-write crashes ([`ChaosEvent::Crash`]) at a `1 in rate`
    /// probability per store site.
    pub fn with_crash_rate(mut self, rate: u64) -> Self {
        self.crash_in = rate;
        self
    }

    /// Arms torn writes ([`ChaosEvent::TornWrite`]) at a `1 in rate`
    /// probability per store site.
    pub fn with_torn_write_rate(mut self, rate: u64) -> Self {
        self.torn_write_in = rate;
        self
    }

    /// Arms single-bit payload corruption ([`ChaosEvent::BitFlip`]) at a
    /// `1 in rate` probability per store site.
    pub fn with_bit_flip_rate(mut self, rate: u64) -> Self {
        self.bit_flip_in = rate;
        self
    }

    /// The seed this injector was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn class_fires(&self, site: u64, class: u64, rate: u64) -> bool {
        // Each class draws from an independent stream: mixing in a distinct
        // class constant decorrelates the three decisions at one site.
        rate != 0 && mix(self.seed ^ mix(site.wrapping_add(class << 32))) % rate == 0
    }

    /// The process-class event injected at `site`, if any — a pure
    /// function of `(seed, site)` and the armed rates.  Store classes are
    /// drawn separately by [`ChaosInjector::fires_store`].
    pub fn fires(&self, site: u64) -> Option<ChaosEvent> {
        if self.class_fires(site, 1, self.panic_in) {
            Some(ChaosEvent::Panic)
        } else if self.class_fires(site, 2, self.budget_in) {
            Some(ChaosEvent::Budget)
        } else if self.class_fires(site, 3, self.cancel_in) {
            Some(ChaosEvent::Cancel)
        } else {
            None
        }
    }

    /// The store-class event injected at store site `site`, if any.
    ///
    /// Pure in `(seed, site)` like [`ChaosInjector::fires`], but drawn from
    /// independent streams (classes 4–6), so the same injector can disturb
    /// both fault decisions and checkpoint writes without the two
    /// interfering.  Precedence: `Crash > TornWrite > BitFlip`.
    pub fn fires_store(&self, site: u64) -> Option<ChaosEvent> {
        if self.class_fires(site, 4, self.crash_in) {
            Some(ChaosEvent::Crash)
        } else if self.class_fires(site, 5, self.torn_write_in) {
            Some(ChaosEvent::TornWrite)
        } else if self.class_fires(site, 6, self.bit_flip_in) {
            Some(ChaosEvent::BitFlip)
        } else {
            None
        }
    }

    /// A deterministic draw in `0..bound` for store site `site` (class 7
    /// stream) — used to pick which byte/bit a [`ChaosEvent::BitFlip`] or
    /// [`ChaosEvent::TornWrite`] hits.  Returns 0 when `bound == 0`.
    pub fn store_draw(&self, site: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        mix(self.seed ^ mix(site.wrapping_add(7 << 32))) % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firing_is_pure_and_seed_dependent() {
        let a = ChaosInjector::new(1)
            .with_panic_rate(3)
            .with_budget_rate(5)
            .with_cancel_rate(7);
        let b = a; // Copy
        let hits_a: Vec<_> = (0..512).map(|s| a.fires(s)).collect();
        let hits_b: Vec<_> = (0..512).map(|s| b.fires(s)).collect();
        assert_eq!(hits_a, hits_b, "pure in (seed, site)");
        let other = ChaosInjector::new(2)
            .with_panic_rate(3)
            .with_budget_rate(5)
            .with_cancel_rate(7);
        let hits_other: Vec<_> = (0..512).map(|s| other.fires(s)).collect();
        assert_ne!(hits_a, hits_other, "different seeds differ");
    }

    #[test]
    fn disabled_classes_never_fire() {
        let quiet = ChaosInjector::new(99);
        assert!((0..4096).all(|s| quiet.fires(s).is_none()));
    }

    #[test]
    fn rate_one_fires_everywhere_with_panic_precedence() {
        let loud = ChaosInjector::new(5)
            .with_panic_rate(1)
            .with_budget_rate(1)
            .with_cancel_rate(1);
        assert!((0..64).all(|s| loud.fires(s) == Some(ChaosEvent::Panic)));
        let budget = ChaosInjector::new(5)
            .with_budget_rate(1)
            .with_cancel_rate(1);
        assert!((0..64).all(|s| budget.fires(s) == Some(ChaosEvent::Budget)));
        let cancel = ChaosInjector::new(5).with_cancel_rate(1);
        assert!((0..64).all(|s| cancel.fires(s) == Some(ChaosEvent::Cancel)));
    }

    #[test]
    fn rates_are_roughly_respected() {
        let chaos = ChaosInjector::new(1234).with_panic_rate(8);
        let hits = (0..8000).filter(|&s| chaos.fires(s).is_some()).count();
        // 1-in-8 over 8000 sites: expect ~1000, allow a generous band.
        assert!((600..1400).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn store_classes_are_independent_of_process_classes() {
        let armed = ChaosInjector::new(31)
            .with_panic_rate(4)
            .with_budget_rate(4)
            .with_cancel_rate(4);
        let both = armed
            .with_crash_rate(4)
            .with_torn_write_rate(4)
            .with_bit_flip_rate(4);
        // Arming store classes never changes the process-class decisions.
        for site in 0..512 {
            assert_eq!(armed.fires(site), both.fires(site));
        }
        // And an injector with only process classes never fires a store
        // event.
        assert!((0..512).all(|s| armed.fires_store(s).is_none()));
        // Precedence and rate-1 behavior mirror the process family.
        let crash = ChaosInjector::new(5)
            .with_crash_rate(1)
            .with_torn_write_rate(1)
            .with_bit_flip_rate(1);
        assert!((0..64).all(|s| crash.fires_store(s) == Some(ChaosEvent::Crash)));
        let torn = ChaosInjector::new(5)
            .with_torn_write_rate(1)
            .with_bit_flip_rate(1);
        assert!((0..64).all(|s| torn.fires_store(s) == Some(ChaosEvent::TornWrite)));
        let flip = ChaosInjector::new(5).with_bit_flip_rate(1);
        assert!((0..64).all(|s| flip.fires_store(s) == Some(ChaosEvent::BitFlip)));
    }

    #[test]
    fn store_draw_is_pure_and_bounded() {
        let chaos = ChaosInjector::new(123);
        for site in 0..256 {
            let d = chaos.store_draw(site, 17);
            assert!(d < 17);
            assert_eq!(d, chaos.store_draw(site, 17));
        }
        assert_eq!(chaos.store_draw(9, 0), 0);
        // Different sites spread across the range.
        let distinct: std::collections::BTreeSet<u64> =
            (0..256).map(|s| chaos.store_draw(s, 1 << 20)).collect();
        assert!(distinct.len() > 200);
    }

    #[test]
    fn classes_are_decorrelated() {
        // With equal rates, sites hit by the panic stream must not be the
        // same set as those hit by the budget stream.
        let p = ChaosInjector::new(77).with_panic_rate(4);
        let b = ChaosInjector::new(77).with_budget_rate(4);
        let panic_sites: Vec<u64> = (0..256).filter(|&s| p.fires(s).is_some()).collect();
        let budget_sites: Vec<u64> = (0..256).filter(|&s| b.fires(s).is_some()).collect();
        assert_ne!(panic_sites, budget_sites);
    }
}
