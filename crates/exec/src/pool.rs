//! The persistent worker pool: spawn once, submit rounds, sync at barriers.
//!
//! ## Pool lifecycle
//!
//! A [`WorkerPool`] is a lightweight handle: an [`ExecPolicy`] plus the
//! [`PoolStats`] counters.  Threads live inside a **session**
//! ([`WorkerPool::session`]): the worker set is spawned exactly once when the
//! session opens, stays parked between rounds, and is joined when the session
//! closes.  A campaign that previously paid one `std::thread::scope` spawn
//! per 64-pattern block (≈150 spawns per worker on a 10k-pattern run) now
//! pays exactly one worker set per campaign — [`PoolStats::spawns`] makes
//! that assertable.
//!
//! ## Rounds and barriers
//!
//! Work is submitted in **rounds**: [`Session::submit`] publishes a round
//! input plus a chunk count through a channel-free injector (a mutex-guarded
//! round descriptor plus an atomic `(round, chunk)` claim cursor — no queue,
//! no allocation per job), and wakes the parked workers.  Idle workers claim
//! chunk indices with a compare-and-swap on the packed cursor, so a worker
//! that finishes early immediately steals the next chunk.  [`Session::wait`]
//! is the **block-boundary barrier**: it blocks the driver until every chunk
//! of the in-flight round has completed and returns the chunk results in
//! chunk-index order (deterministic ordered reduction — never in completion
//! order).  Between `wait` and the next `submit` the driver owns the world:
//! it may update any shared state (fault-dropping flags, covered sets)
//! without synchronization hazards, because every worker is parked on the
//! round condvar.  The mutex handshake of `submit` establishes the
//! happens-before edge that publishes those updates to the workers.
//!
//! At most one round may be in flight per session, but `submit` returns
//! without waiting: a driver can overlap its own serial work (fault-dropping
//! replay, good-circuit simulation of the next block) with the workers'
//! current round, then `wait` at the barrier — the pipelining used by the
//! digital ATPG and the PPSFP campaign loop.
//!
//! ## Determinism
//!
//! Results are slotted by chunk index and the per-round input is immutable
//! while the round runs, so a session's outputs are a pure function of
//! `(inputs, chunk counts, job)` — never of the worker count or scheduling
//! order.  Worker scratch (created once per worker by `init`) must not leak
//! state between chunks in a way that changes results; see the determinism
//! contract on [`crate::par_map_chunks_with`].
//!
//! ## Panics
//!
//! A panic inside a job is caught on the worker; what happens next is the
//! pool's [`PanicPolicy`]:
//!
//! * [`PanicPolicy::FailFast`] (default) — the panic is relayed through the
//!   round descriptor and re-raised on the driver at the next barrier,
//!   aborting the round early.
//! * [`PanicPolicy::Isolate`] — the panic is converted into a per-chunk
//!   [`ChunkPanic`] record, the worker re-initializes its scratch state
//!   (whatever the job left behind is suspect) and keeps claiming chunks;
//!   the driver reads per-chunk `Result`s at the
//!   [`Session::wait_results`] barrier and decides fault-level outcomes
//!   itself.  One poisoned chunk never unwinds the campaign.
//!
//! Under either policy the session shuts its workers down cleanly even when
//! the driver itself unwinds.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, RwLock};

use crate::ExecPolicy;

/// What a session does with a panic caught inside a chunk job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PanicPolicy {
    /// Relay the panic to the driver and re-raise it at the next barrier,
    /// abandoning the rest of the round (the pre-existing behavior).
    #[default]
    FailFast,
    /// Record the panic as a per-chunk [`ChunkPanic`], re-initialize the
    /// worker's scratch state, and finish the round; the driver reads
    /// per-chunk `Result`s from [`Session::wait_results`].
    Isolate,
}

/// A panic caught inside one chunk job under [`PanicPolicy::Isolate`].
///
/// Carries the chunk index and the panic message (stringified payload), not
/// the payload itself, so it is `Clone` and safe to store in reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkPanic {
    /// Chunk index (within its round) whose job panicked.
    pub chunk: usize,
    /// Stringified panic payload (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for ChunkPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chunk {} panicked: {}", self.chunk, self.message)
    }
}

impl std::error::Error for ChunkPanic {}

/// Stringifies a caught panic payload (the conventional `&str` / `String`
/// payloads verbatim; anything else gets a placeholder).
fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Lifetime counters of a [`WorkerPool`], for tests and diagnostics.
///
/// All counters accumulate over the pool's lifetime (across sessions) and
/// are updated with relaxed atomics — read them only from the thread that
/// drives the pool, after the sessions of interest have closed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned.  One session spawns its worker set exactly
    /// once, so a whole PPSFP campaign contributes `workers` here no matter
    /// how many 64-pattern blocks (rounds) it runs.  Serial sessions spawn
    /// nothing.
    pub spawns: u64,
    /// Chunk jobs executed (on workers or inline on the serial path).
    pub jobs: u64,
    /// Round barriers completed ([`Session::wait`] returns).
    pub barriers: u64,
}

/// A persistent worker-pool handle: an [`ExecPolicy`] plus lifetime
/// [`PoolStats`].
///
/// The handle itself owns no threads — see the [module docs](self) for the
/// session lifecycle.  One pool can be threaded through every stage of a
/// larger flow (the mixed-signal ATPG passes a single pool to the digital,
/// analog and conversion stages) so the stats describe the whole run.
///
/// # Example
///
/// ```
/// use msatpg_exec::{ExecPolicy, WorkerPool};
///
/// let pool = WorkerPool::new(ExecPolicy::Threads(2));
/// let sums = pool.run_chunks(
///     &[1u32, 2, 3, 4],
///     2,                                  // items per chunk
///     || (),                              // per-worker scratch
///     |(), _chunk, _offset, items| items.iter().sum::<u32>(),
/// );
/// assert_eq!(sums, vec![3, 7]);           // chunk order, not completion order
/// assert_eq!(pool.stats().spawns, 2);     // one worker set for the session
/// ```
pub struct WorkerPool {
    policy: ExecPolicy,
    panic_policy: PanicPolicy,
    spawns: AtomicU64,
    jobs: AtomicU64,
    barriers: AtomicU64,
}

impl WorkerPool {
    /// Creates a pool handle executing under `policy` (with the default
    /// [`PanicPolicy::FailFast`]).
    pub fn new(policy: ExecPolicy) -> Self {
        WorkerPool {
            policy,
            panic_policy: PanicPolicy::FailFast,
            spawns: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
        }
    }

    /// Sets the pool's [`PanicPolicy`] (builder style).
    pub fn with_panic_policy(mut self, panic_policy: PanicPolicy) -> Self {
        self.panic_policy = panic_policy;
        self
    }

    /// The policy this pool resolves workers from.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// How this pool's sessions treat panics caught inside chunk jobs.
    pub fn panic_policy(&self) -> PanicPolicy {
        self.panic_policy
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            spawns: self.spawns.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
        }
    }

    /// Opens a session: spawns one worker set (at most `width` workers, and
    /// never more than the policy resolves to), runs `driver` with a
    /// [`Session`] handle for submitting rounds, then drains and joins the
    /// workers.
    ///
    /// * `width` — an upper bound on the chunks any round of this session
    ///   will carry; spawning more workers than that could never help.
    /// * `init` — builds one worker-local scratch state per worker (called
    ///   once per worker, or once lazily on the inline path).
    /// * `job` — executes chunk `ci` of the current round against the round
    ///   input; must be a pure function of `(&mut scratch, input, ci)` for
    ///   the session output to be policy-independent.
    /// * `driver` — runs on the calling thread and submits rounds.
    ///
    /// When the policy (or `width`) resolves to a single worker the session
    /// runs inline on the caller's thread with zero spawn cost and identical
    /// semantics (minus the submit/wait overlap).
    ///
    /// # Panics
    ///
    /// Re-raises a panic from any job at the barrier, and propagates driver
    /// panics; in both cases the workers are shut down and joined first.
    pub fn session<I, R, S, Out>(
        &self,
        width: usize,
        init: impl Fn() -> S + Sync,
        job: impl Fn(&mut S, &I, usize) -> R + Sync,
        driver: impl FnOnce(&mut Session<'_, I, R>) -> Out,
    ) -> Out
    where
        I: Send + Sync,
        R: Send,
    {
        let workers = self.policy.workers().min(width.max(1));
        let panic_policy = self.panic_policy;
        if workers <= 1 {
            let mut scratch: Option<S> = None;
            let mut run = |input: I, n_chunks: usize| -> Vec<Result<R, ChunkPanic>> {
                (0..n_chunks)
                    .map(|ci| {
                        self.jobs.fetch_add(1, Ordering::Relaxed);
                        if panic_policy == PanicPolicy::Isolate {
                            let state = scratch.get_or_insert_with(&init);
                            match catch_unwind(AssertUnwindSafe(|| job(state, &input, ci))) {
                                Ok(result) => Ok(result),
                                Err(payload) => {
                                    // The job may have left the scratch in an
                                    // inconsistent state; rebuild it.
                                    scratch = None;
                                    Err(ChunkPanic {
                                        chunk: ci,
                                        message: payload_message(payload.as_ref()),
                                    })
                                }
                            }
                        } else {
                            Ok(job(scratch.get_or_insert_with(&init), &input, ci))
                        }
                    })
                    .collect()
            };
            let mut session = Session {
                pool: self,
                inner: SessionInner::Inline {
                    run: &mut run,
                    pending: None,
                },
            };
            let out = driver(&mut session);
            session.drain();
            return out;
        }
        let shared: Shared<I, R> = Shared {
            state: Mutex::new(RoundState {
                round: 0,
                n_chunks: 0,
                remaining: 0,
                results: Vec::new(),
                shutdown: false,
                panic: None,
            }),
            input: RwLock::new(None),
            cursor: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            panic_policy,
            to_workers: Condvar::new(),
            to_driver: Condvar::new(),
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(&shared, &init, &job, &self.jobs));
            }
            self.spawns.fetch_add(workers as u64, Ordering::Relaxed);
            // The guard shuts the workers down even when `driver` (or a
            // relayed job panic) unwinds, so the scope join below never
            // deadlocks.
            let _guard = ShutdownGuard(&shared);
            let mut session = Session {
                pool: self,
                inner: SessionInner::Threaded {
                    shared: &shared,
                    in_flight: false,
                },
            };
            let out = driver(&mut session);
            session.drain();
            out
        })
    }

    /// Maps fixed-size chunks of `items` through `f` on one single-round
    /// session and returns the chunk results in chunk order.
    ///
    /// This is the persistent-pool backend of [`crate::par_map_chunks_with`]
    /// — same signature semantics, but charged to this pool's stats and
    /// worker set.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero, or propagates a panic raised by `f`.
    pub fn run_chunks<T, S, R>(
        &self,
        items: &[T],
        chunk_size: usize,
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, usize, usize, &[T]) -> R + Sync,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        if items.is_empty() {
            return Vec::new();
        }
        let n_chunks = items.len().div_ceil(chunk_size);
        self.session(
            n_chunks,
            init,
            |state, _input: &(), ci| {
                let offset = ci * chunk_size;
                let end = (offset + chunk_size).min(items.len());
                f(state, ci, offset, &items[offset..end])
            },
            |session| session.run((), n_chunks),
        )
    }
}

/// Handle for submitting rounds to a session's worker set.
///
/// Obtained inside [`WorkerPool::session`]; see the [module docs](self) for
/// round/barrier semantics.
pub struct Session<'a, I, R> {
    pool: &'a WorkerPool,
    inner: SessionInner<'a, I, R>,
}

enum SessionInner<'a, I, R> {
    /// Serial fallback: rounds execute inline at the barrier.
    Inline {
        run: &'a mut (dyn FnMut(I, usize) -> Vec<Result<R, ChunkPanic>> + 'a),
        pending: Option<(I, usize)>,
    },
    Threaded {
        shared: &'a Shared<I, R>,
        in_flight: bool,
    },
}

impl<I, R> Session<'_, I, R> {
    /// Publishes a round of `n_chunks` chunk jobs over `input` to the worker
    /// set and returns immediately; the caller may overlap its own work with
    /// the round and must eventually [`Session::wait`] for it.
    ///
    /// # Panics
    ///
    /// Panics if a round is already in flight (at most one is allowed).
    pub fn submit(&mut self, input: I, n_chunks: usize) {
        match &mut self.inner {
            SessionInner::Inline { pending, .. } => {
                assert!(pending.is_none(), "a round is already in flight");
                *pending = Some((input, n_chunks));
            }
            SessionInner::Threaded { shared, in_flight } => {
                assert!(!*in_flight, "a round is already in flight");
                *write(&shared.input) = Some(input);
                let mut st = lock(&shared.state);
                // A previous round may have ended in a relayed panic; this
                // submit happens in the driver-owned window (no worker is
                // claiming), so clearing the abort flag here lets a driver
                // that survived the panic keep using the session.
                shared.aborted.store(false, Ordering::SeqCst);
                st.round += 1;
                st.n_chunks = n_chunks;
                st.remaining = n_chunks;
                st.results.clear();
                st.results.resize_with(n_chunks, || None);
                // Publish the claim cursor for the new round while holding
                // the lock: a worker can only observe the round number after
                // the cursor (and the input above) are in place.
                shared.cursor.store(st.round << 32, Ordering::SeqCst);
                drop(st);
                shared.to_workers.notify_all();
                *in_flight = true;
            }
        }
    }

    /// The block-boundary barrier: waits for the in-flight round and returns
    /// its chunk results in chunk-index order.
    ///
    /// # Panics
    ///
    /// Panics if no round is in flight.  Re-raises any panic a job of the
    /// round produced — under [`PanicPolicy::FailFast`] the original payload
    /// relayed from the worker, under [`PanicPolicy::Isolate`] a fresh panic
    /// naming the first [`ChunkPanic`] (drivers that opted into isolation
    /// should read [`Session::wait_results`] instead).
    pub fn wait(&mut self) -> Vec<R> {
        self.wait_results()
            .into_iter()
            .map(|slot| match slot {
                Ok(result) => result,
                Err(chunk_panic) => panic!("{chunk_panic}"),
            })
            .collect()
    }

    /// The panic-isolating barrier: waits for the in-flight round and
    /// returns one `Result` per chunk in chunk-index order —
    /// `Err(ChunkPanic)` for chunks whose job panicked under
    /// [`PanicPolicy::Isolate`].
    ///
    /// # Panics
    ///
    /// Panics if no round is in flight.  Under [`PanicPolicy::FailFast`] a
    /// job panic is still re-raised here (isolation is a pool policy, not a
    /// per-barrier choice), so every returned slot is `Ok` under that
    /// policy.
    pub fn wait_results(&mut self) -> Vec<Result<R, ChunkPanic>> {
        let results = match &mut self.inner {
            SessionInner::Inline { run, pending } => {
                let (input, n_chunks) = pending.take().expect("no round is in flight");
                run(input, n_chunks)
            }
            SessionInner::Threaded { shared, in_flight } => {
                assert!(*in_flight, "no round is in flight");
                *in_flight = false;
                let mut st = lock(&shared.state);
                loop {
                    if let Some(payload) = st.panic.take() {
                        drop(st);
                        resume_unwind(payload);
                    }
                    if st.remaining == 0 {
                        break;
                    }
                    st = wait_cv(&shared.to_driver, st);
                }
                let slots = std::mem::take(&mut st.results);
                drop(st);
                // Every chunk is finished, so no worker holds a read guard;
                // drop the round input at the barrier.
                *write(&shared.input) = None;
                slots
                    .into_iter()
                    .map(|slot| slot.expect("every chunk of the round completed"))
                    .collect()
            }
        };
        self.pool.barriers.fetch_add(1, Ordering::Relaxed);
        results
    }

    /// Submits a round and immediately waits at its barrier.
    pub fn run(&mut self, input: I, n_chunks: usize) -> Vec<R> {
        self.submit(input, n_chunks);
        self.wait()
    }

    /// Submits a round and immediately waits at its panic-isolating barrier.
    pub fn run_results(&mut self, input: I, n_chunks: usize) -> Vec<Result<R, ChunkPanic>> {
        self.submit(input, n_chunks);
        self.wait_results()
    }

    /// `true` while a submitted round has not been waited for.
    pub fn in_flight(&self) -> bool {
        match &self.inner {
            SessionInner::Inline { pending, .. } => pending.is_some(),
            SessionInner::Threaded { in_flight, .. } => *in_flight,
        }
    }

    /// Completes any in-flight round (discarding its results, including any
    /// isolated [`ChunkPanic`]s) so the session can close; called
    /// automatically when the driver returns.
    fn drain(&mut self) {
        if self.in_flight() {
            let _ = self.wait_results();
        }
    }
}

struct Shared<I, R> {
    state: Mutex<RoundState<R>>,
    /// The current round's input; written by the driver strictly between
    /// barriers, read-locked by workers only while executing a claimed chunk.
    input: RwLock<Option<I>>,
    /// Packed claim cursor: `round << 32 | next_chunk`.  The round tag makes
    /// a stale worker's claim attempt fail instead of claiming a chunk of a
    /// newer round with an outdated chunk count.
    cursor: AtomicU64,
    /// Set when a job panicked under [`PanicPolicy::FailFast`]: workers stop
    /// claiming, the driver re-raises.
    aborted: AtomicBool,
    /// How workers treat panics caught inside jobs.
    panic_policy: PanicPolicy,
    to_workers: Condvar,
    to_driver: Condvar,
}

struct RoundState<R> {
    round: u64,
    n_chunks: usize,
    remaining: usize,
    results: Vec<Option<Result<R, ChunkPanic>>>,
    shutdown: bool,
    panic: Option<Box<dyn Any + Send>>,
}

struct ShutdownGuard<'a, I, R>(&'a Shared<I, R>);

impl<I, R> Drop for ShutdownGuard<'_, I, R> {
    fn drop(&mut self) {
        let mut st = lock(&self.0.state);
        st.shutdown = true;
        drop(st);
        self.0.to_workers.notify_all();
    }
}

/// Locks a mutex, recovering from poisoning (no invariant of ours can be
/// broken by a poisoned lock: user jobs never run while a lock is held).
fn lock<'m, T>(mutex: &'m Mutex<T>) -> MutexGuard<'m, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn wait_cv<'m, T>(cv: &Condvar, guard: MutexGuard<'m, T>) -> MutexGuard<'m, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write<'l, T>(rw: &'l RwLock<T>) -> std::sync::RwLockWriteGuard<'l, T> {
    rw.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn read<'l, T>(rw: &'l RwLock<T>) -> std::sync::RwLockReadGuard<'l, T> {
    rw.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn worker_loop<I, R, S>(
    shared: &Shared<I, R>,
    init: &(impl Fn() -> S + Sync),
    job: &(impl Fn(&mut S, &I, usize) -> R + Sync),
    jobs: &AtomicU64,
) where
    I: Send + Sync,
    R: Send,
{
    let mut scratch = init();
    let mut seen = 0u64;
    loop {
        // Park until a new round is published (or shutdown).
        let (round, n_chunks) = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.round > seen {
                    break (st.round, st.n_chunks);
                }
                st = wait_cv(&shared.to_workers, st);
            }
        };
        seen = round;
        // Claim chunks of this round until its cursor drains.
        loop {
            if shared.aborted.load(Ordering::Relaxed) {
                break;
            }
            let cur = shared.cursor.load(Ordering::SeqCst);
            if cur >> 32 != round || (cur & 0xFFFF_FFFF) as usize >= n_chunks {
                break;
            }
            if shared
                .cursor
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            let ci = (cur & 0xFFFF_FFFF) as usize;
            let outcome = {
                let guard = read(&shared.input);
                let input = guard.as_ref().expect("input is set for the active round");
                catch_unwind(AssertUnwindSafe(|| job(&mut scratch, input, ci)))
            };
            jobs.fetch_add(1, Ordering::Relaxed);
            if outcome.is_err() && shared.panic_policy == PanicPolicy::Isolate {
                // The job may have left the scratch inconsistent; rebuild it
                // before claiming the next chunk.
                scratch = init();
            }
            let mut st = lock(&shared.state);
            if st.round != round {
                // The driver already abandoned this round (it advances early
                // when a sibling job panicked) and submitted a new one; this
                // straggler's result must not land in the new round's slots.
                break;
            }
            match outcome {
                Ok(result) => st.results[ci] = Some(Ok(result)),
                Err(payload) => match shared.panic_policy {
                    PanicPolicy::Isolate => {
                        st.results[ci] = Some(Err(ChunkPanic {
                            chunk: ci,
                            message: payload_message(payload.as_ref()),
                        }));
                    }
                    PanicPolicy::FailFast => {
                        shared.aborted.store(true, Ordering::Relaxed);
                        if st.panic.is_none() {
                            st.panic = Some(payload);
                        }
                    }
                },
            }
            st.remaining = st.remaining.saturating_sub(1);
            if st.remaining == 0 || st.panic.is_some() {
                shared.to_driver.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn one_spawn_set_across_many_rounds() {
        let pool = WorkerPool::new(ExecPolicy::Threads(4));
        let per_round = pool.session(
            8,
            || (),
            |(), input: &u64, ci| input * 100 + ci as u64,
            |session| {
                (0..10u64)
                    .map(|round| session.run(round, 8))
                    .collect::<Vec<_>>()
            },
        );
        for (round, results) in per_round.iter().enumerate() {
            let expected: Vec<u64> = (0..8).map(|ci| round as u64 * 100 + ci).collect();
            assert_eq!(results, &expected, "round {round}");
        }
        let stats = pool.stats();
        assert_eq!(stats.spawns, 4, "one worker set for the whole session");
        assert_eq!(stats.barriers, 10, "one barrier per round");
        assert_eq!(stats.jobs, 80, "8 chunks x 10 rounds");
    }

    #[test]
    fn serial_session_spawns_nothing() {
        let pool = WorkerPool::new(ExecPolicy::Serial);
        let out = pool.session(
            4,
            || 0u64,
            |state, input: &u64, ci| {
                *state += 1;
                input + ci as u64
            },
            |session| session.run(7, 3),
        );
        assert_eq!(out, vec![7, 8, 9]);
        let stats = pool.stats();
        assert_eq!(stats.spawns, 0);
        assert_eq!(stats.jobs, 3);
        assert_eq!(stats.barriers, 1);
    }

    #[test]
    fn barrier_publishes_driver_updates_to_workers() {
        // The driver mutates shared state strictly between barriers; every
        // job of the following round must observe the latest value.
        let knob = AtomicUsize::new(0);
        let pool = WorkerPool::new(ExecPolicy::Threads(3));
        pool.session(
            6,
            || (),
            |(), _input: &(), _ci| knob.load(Ordering::Relaxed),
            |session| {
                for round in 0..20 {
                    knob.store(round, Ordering::Relaxed);
                    let seen = session.run((), 6);
                    assert!(
                        seen.iter().all(|&v| v == round),
                        "round {round} observed {seen:?}"
                    );
                }
            },
        );
        assert_eq!(pool.stats().barriers, 20);
    }

    #[test]
    fn submit_overlaps_driver_work_and_wait_orders_results() {
        let pool = WorkerPool::new(ExecPolicy::Threads(2));
        let total = pool.session(
            4,
            || (),
            |(), input: &Vec<u64>, ci| input[ci] * 2,
            |session| {
                let mut acc = 0u64;
                let mut pending: Option<Vec<u64>> = Some(vec![1, 2, 3, 4]);
                let mut next = 5u64;
                while let Some(input) = pending.take() {
                    session.submit(input, 4);
                    // Driver-side work while the round runs.
                    if next <= 13 {
                        pending = Some((next..next + 4).collect());
                        next += 4;
                    }
                    let results = session.wait();
                    acc += results.iter().sum::<u64>();
                }
                acc
            },
        );
        // 2 * (1 + 2 + ... + 16)
        assert_eq!(total, 2 * (16 * 17) / 2);
    }

    #[test]
    fn zero_chunk_rounds_complete_immediately() {
        let pool = WorkerPool::new(ExecPolicy::Threads(2));
        let out = pool.session(
            4,
            || (),
            |(), _: &(), ci| ci,
            |session| {
                let empty = session.run((), 0);
                let full = session.run((), 3);
                (empty, full)
            },
        );
        assert!(out.0.is_empty());
        assert_eq!(out.1, vec![0, 1, 2]);
    }

    #[test]
    fn worker_panic_is_reraised_at_the_barrier() {
        let pool = WorkerPool::new(ExecPolicy::Threads(3));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.session(
                6,
                || (),
                |(), _: &(), ci| {
                    if ci == 4 {
                        panic!("chunk 4 exploded");
                    }
                    ci
                },
                |session| session.run((), 6),
            )
        }));
        assert!(caught.is_err(), "the job panic must reach the driver");
        // The pool handle survives a panicked session.
        let ok = pool.session(2, || (), |(), _: &(), ci| ci, |s| s.run((), 2));
        assert_eq!(ok, vec![0, 1]);
    }

    #[test]
    fn session_survives_a_caught_job_panic() {
        // A driver that catches the relayed panic may keep using the same
        // session: the abort flag resets at the next submit and straggler
        // results from the abandoned round are discarded.
        let pool = WorkerPool::new(ExecPolicy::Threads(3));
        let out = pool.session(
            6,
            || (),
            |(), round: &u64, ci| {
                if *round == 0 && ci == 2 {
                    panic!("round 0 exploded");
                }
                round * 10 + ci as u64
            },
            |session| {
                let first = catch_unwind(AssertUnwindSafe(|| session.run(0u64, 6)));
                assert!(first.is_err(), "round 0's panic reaches the barrier");
                session.run(1u64, 6)
            },
        );
        assert_eq!(out, vec![10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn isolate_records_chunk_panics_and_finishes_the_round() {
        for policy in [ExecPolicy::Serial, ExecPolicy::Threads(3)] {
            let pool = WorkerPool::new(policy).with_panic_policy(PanicPolicy::Isolate);
            let out = pool.session(
                6,
                || (),
                |(), _: &(), ci| {
                    if ci == 2 || ci == 4 {
                        panic!("chunk {ci} exploded");
                    }
                    ci * 10
                },
                |session| session.run_results((), 6),
            );
            assert_eq!(out.len(), 6, "{policy:?}: the round runs to completion");
            for (ci, slot) in out.iter().enumerate() {
                if ci == 2 || ci == 4 {
                    let err = slot.as_ref().expect_err("panicked chunk");
                    assert_eq!(err.chunk, ci);
                    assert_eq!(err.message, format!("chunk {ci} exploded"));
                } else {
                    assert_eq!(slot.as_ref().copied(), Ok(ci * 10), "{policy:?}");
                }
            }
        }
    }

    #[test]
    fn isolate_session_is_reusable_after_a_chunk_panic() {
        // Same shape as session_survives_a_caught_job_panic, but without the
        // driver-side catch_unwind: isolation turns the panic into data.
        let pool = WorkerPool::new(ExecPolicy::Threads(3)).with_panic_policy(PanicPolicy::Isolate);
        let out = pool.session(
            6,
            || 0u32,
            |hits, round: &u64, ci| {
                *hits += 1;
                if *round == 0 && ci == 2 {
                    panic!("round 0 exploded");
                }
                round * 10 + ci as u64
            },
            |session| {
                let first = session.run_results(0u64, 6);
                assert_eq!(first.iter().filter(|r| r.is_err()).count(), 1);
                // The next round reuses the same worker set and every chunk
                // succeeds (the panicked worker's scratch was re-initialized).
                session.run(1u64, 6)
            },
        );
        assert_eq!(out, vec![10, 11, 12, 13, 14, 15]);
        assert_eq!(pool.stats().spawns, 3, "no respawn after the panic");
    }

    #[test]
    fn isolate_reinitializes_the_scratch_of_a_panicked_worker() {
        // Serial path so the chunk-to-worker assignment is deterministic:
        // the scratch counter must restart after the panicked chunk.
        let pool = WorkerPool::new(ExecPolicy::Serial).with_panic_policy(PanicPolicy::Isolate);
        let out = pool.session(
            4,
            || 0u32,
            |count, _: &(), ci| {
                *count += 1;
                if ci == 1 {
                    panic!("poisoned");
                }
                *count
            },
            |session| session.run_results((), 4),
        );
        assert_eq!(out[0].as_ref().copied(), Ok(1));
        assert!(out[1].is_err());
        assert_eq!(out[2].as_ref().copied(), Ok(1), "fresh scratch after panic");
        assert_eq!(out[3].as_ref().copied(), Ok(2));
    }

    #[test]
    fn failfast_wait_results_still_reraises() {
        let pool = WorkerPool::new(ExecPolicy::Threads(2));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.session(
                4,
                || (),
                |(), _: &(), ci| {
                    if ci == 1 {
                        panic!("fail fast");
                    }
                    ci
                },
                |session| session.run_results((), 4),
            )
        }));
        assert!(
            caught.is_err(),
            "FailFast is a pool policy, not a barrier choice"
        );
    }

    #[test]
    fn isolate_wait_panics_with_the_chunk_message() {
        // A driver that opted into isolation but reads the plain barrier
        // still gets a panic naming the chunk.
        let pool = WorkerPool::new(ExecPolicy::Serial).with_panic_policy(PanicPolicy::Isolate);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.session(
                2,
                || (),
                |(), _: &(), ci| {
                    if ci == 0 {
                        panic!("boom");
                    }
                    ci
                },
                |session| session.run((), 2),
            )
        }));
        let payload = caught.expect_err("must re-raise");
        let message = payload_message(payload.as_ref());
        assert!(message.contains("chunk 0"), "got {message:?}");
        assert!(message.contains("boom"), "got {message:?}");
    }

    #[test]
    fn width_caps_the_worker_set() {
        let pool = WorkerPool::new(ExecPolicy::Threads(16));
        let out = pool.session(2, || (), |(), _: &(), ci| ci, |session| session.run((), 2));
        assert_eq!(out, vec![0, 1]);
        assert_eq!(
            pool.stats().spawns,
            2,
            "spawning more workers than chunks could never help"
        );
    }

    #[test]
    fn run_chunks_matches_manual_chunking() {
        let items: Vec<u32> = (0..103).collect();
        let pool = WorkerPool::new(ExecPolicy::Threads(3));
        let sums = pool.run_chunks(
            &items,
            10,
            || (),
            |(), _ci, _off, chunk: &[u32]| chunk.iter().sum::<u32>(),
        );
        let expected: Vec<u32> = items.chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }
}
