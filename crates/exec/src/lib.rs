//! # msatpg-exec — the workspace's one concurrency story
//!
//! A std-only **persistent worker pool** with chunked, self-scheduling
//! parallel iteration and block-boundary barriers.  The hot layers of the
//! mixed-signal ATPG flow — PPSFP fault re-evaluation, pipelined per-fault
//! test generation, per-parameter worst-case deviation rows, per-element
//! analog tests — all run on one execution substrate instead of ad-hoc
//! threading.
//!
//! ## Design
//!
//! * **No external dependencies.**  The container builds offline, so the
//!   pool is built on [`std::thread::scope`] (workers may borrow the
//!   caller's data), a mutex/condvar round descriptor and an atomic claim
//!   cursor.
//! * **Persistent workers, round barriers.**  [`WorkerPool::session`]
//!   spawns one worker set for a whole campaign; work is submitted in
//!   rounds through a channel-free injector, and [`Session::wait`] is the
//!   barrier at which the driver reads the round's results and updates
//!   shared state (fault-dropping sets, covered flags) before the next
//!   round.  [`PoolStats`] counts spawns, jobs and barriers so tests can
//!   assert the amortization (one spawn set per campaign, not one per
//!   64-pattern block).  See the [`pool`] module docs for the lifecycle.
//! * **Work stealing by chunk self-scheduling.**  Idle workers claim the
//!   next unprocessed chunk of the current round with a compare-and-swap on
//!   the shared cursor, so a worker that finishes early immediately steals
//!   the next chunk instead of idling behind a static partition.
//! * **Deterministic ordered reduction.**  Every chunk's result is slotted
//!   by chunk index and merged in chunk order, so the output of
//!   [`par_map_chunks`] / [`par_reduce`] / [`Session::wait`] is a pure
//!   function of `(items, chunk_size, f)` — never of the scheduling order
//!   or the worker count.  Callers that keep per-item work
//!   schedule-independent (see [`par_map_chunks_with`]) therefore get
//!   **byte-identical** results for [`ExecPolicy::Serial`], `Threads(2)`,
//!   `Threads(8)`, … — the property the workspace's determinism suite
//!   asserts.
//! * **One policy knob.**  [`ExecPolicy`] is plumbed through the public
//!   options structs of the digital, analog and core crates; `Serial` runs
//!   inline on the caller's thread with zero setup cost.  `Auto` honors the
//!   `MSATPG_THREADS` environment variable so CI can matrix thread counts
//!   without code changes.
//!
//! ## Example
//!
//! ```
//! use msatpg_exec::{par_map_chunks, ExecPolicy};
//!
//! let items: Vec<u64> = (0..1000).collect();
//! let serial = par_map_chunks(ExecPolicy::Serial, &items, 64, |_, _, c| {
//!     c.iter().sum::<u64>()
//! });
//! let threaded = par_map_chunks(ExecPolicy::Threads(4), &items, 64, |_, _, c| {
//!     c.iter().sum::<u64>()
//! });
//! assert_eq!(serial, threaded); // deterministic ordered reduction
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod chaos;
pub mod pool;

pub use cancel::{CancelReason, CancelToken};
pub use chaos::{ChaosEvent, ChaosInjector};
pub use pool::{ChunkPanic, PanicPolicy, PoolStats, Session, WorkerPool};

/// Name of the environment variable [`ExecPolicy::Auto`] consults before
/// falling back to [`std::thread::available_parallelism`].
///
/// # Value grammar
///
/// The value is trimmed and parsed as a positive decimal integer; exactly
/// the values accepted by `usize::from_str` with the result `>= 1` override
/// the hardware thread count.  **Anything else is silently ignored** — the
/// empty string, `"0"`, `"abc"`, `"-2"`, `"1.5"`, unparsable garbage — and
/// [`ExecPolicy::Auto`] falls back to
/// [`std::thread::available_parallelism`].  A malformed value never panics
/// and never serializes the run to one thread: robustness of a campaign
/// must not hinge on a typo in a CI environment block.
pub const THREADS_ENV_VAR: &str = "MSATPG_THREADS";

/// How a parallelizable loop is executed.
///
/// The default everywhere in the workspace is [`ExecPolicy::Serial`]: every
/// parallel entry point produces byte-identical output across policies, so
/// enabling threads is purely a wall-clock decision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecPolicy {
    /// Run inline on the caller's thread (no pool, no spawn overhead).
    #[default]
    Serial,
    /// Run on a scoped pool of exactly `n` workers (`0` and `1` degrade to
    /// the inline serial path).
    Threads(usize),
    /// Run on one worker per hardware thread: the `MSATPG_THREADS`
    /// environment variable when set to a positive integer (so CI can
    /// matrix thread counts without code changes), otherwise
    /// [`std::thread::available_parallelism`].
    Auto,
}

impl ExecPolicy {
    /// The number of workers this policy resolves to on the current host.
    pub fn workers(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Threads(n) => n.max(1),
            ExecPolicy::Auto => env_threads().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        }
    }

    /// `true` when the policy resolves to the inline serial path.
    pub fn is_serial(self) -> bool {
        self.workers() <= 1
    }
}

/// Reads `MSATPG_THREADS`: a positive integer overrides the hardware
/// thread count for [`ExecPolicy::Auto`]; anything else is ignored.
fn env_threads() -> Option<usize> {
    parse_thread_override(&std::env::var(THREADS_ENV_VAR).ok()?)
}

/// The value grammar of `MSATPG_THREADS`, kept pure so it is testable
/// without mutating the process environment (concurrent `setenv`/`getenv`
/// from parallel test threads is undefined behavior on glibc; the live env
/// path is exercised by the CI determinism matrix, which sets the variable
/// before the test process starts).
fn parse_thread_override(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Maps fixed-size chunks of `items` through `f`, possibly in parallel, and
/// returns the chunk results **in chunk order**.
///
/// `f` receives `(chunk_index, item_offset, chunk)` where `item_offset` is
/// the index of `chunk[0]` within `items`.  Because results are slotted by
/// chunk index, the output is independent of the execution policy as long as
/// `f` itself is a pure function of its arguments.
///
/// # Panics
///
/// Panics if `chunk_size` is zero, or propagates a panic raised by `f` on
/// any worker.
pub fn par_map_chunks<T, R, F>(policy: ExecPolicy, items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &[T]) -> R + Sync,
{
    par_map_chunks_with(
        policy,
        items,
        chunk_size,
        || (),
        |(), ci, off, chunk| f(ci, off, chunk),
    )
}

/// Like [`par_map_chunks`], but each worker carries a scratch state created
/// by `init` and reused across every chunk that worker claims.
///
/// # Determinism contract
///
/// The scratch exists to avoid per-chunk allocations (simulation buffers, LU
/// workspaces).  `f`'s **result** must not depend on what previous chunks
/// left in the scratch — chunk-to-worker assignment is scheduling-dependent,
/// so any result that reads stale scratch state would differ from run to
/// run.  State that is invalidated wholesale between items (generation
/// stamps, cleared buffers) satisfies the contract; state that accumulates
/// numerical drift (e.g. an incrementally patched matrix) does not — create
/// such state *inside* `f` instead.
///
/// # Panics
///
/// Panics if `chunk_size` is zero, or propagates a panic raised by `f` on
/// any worker.
pub fn par_map_chunks_with<T, S, R, I, F>(
    policy: ExecPolicy,
    items: &[T],
    chunk_size: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, usize, &[T]) -> R + Sync,
{
    WorkerPool::new(policy).run_chunks(items, chunk_size, init, f)
}

/// Maps chunks in parallel with `map`, then folds the chunk results **in
/// chunk order** on the caller's thread.
///
/// The fold is sequential and ordered, so non-commutative accumulators
/// (ordered vectors, first-hit searches, floating-point sums) behave exactly
/// as in a serial loop regardless of the policy.
///
/// # Panics
///
/// Same conditions as [`par_map_chunks`].
pub fn par_reduce<T, R, A, M, F>(
    policy: ExecPolicy,
    items: &[T],
    chunk_size: usize,
    map: M,
    acc: A,
    fold: F,
) -> A
where
    T: Sync,
    R: Send,
    M: Fn(usize, usize, &[T]) -> R + Sync,
    F: FnMut(A, R) -> A,
{
    par_map_chunks(policy, items, chunk_size, map)
        .into_iter()
        .fold(acc, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn auto_policy_honors_msatpg_threads_values() {
        // The value grammar is tested through the pure parser —
        // `Auto.workers()` re-reads the variable on every call, so CI can
        // matrix thread counts by setting the environment alone (which the
        // determinism matrix does), and no test mutates the process
        // environment from a parallel test thread.
        assert_eq!(parse_thread_override("3"), Some(3));
        assert_eq!(parse_thread_override(" 8 "), Some(8));
        assert_eq!(parse_thread_override("1"), Some(1));
        // Invalid values fall back to the hardware thread count: the
        // documented grammar of THREADS_ENV_VAR ignores anything that is
        // not a positive decimal integer, and never panics.
        for invalid in ["abc", "0", "-2", "lots", "", " ", "1.5", "0x4", "+"] {
            assert_eq!(parse_thread_override(invalid), None, "value {invalid:?}");
        }
        // Whatever the ambient environment says, Auto resolves to >= 1.
        assert!(ExecPolicy::Auto.workers() >= 1);
    }

    #[test]
    fn policy_resolution() {
        assert_eq!(ExecPolicy::Serial.workers(), 1);
        assert!(ExecPolicy::Serial.is_serial());
        assert_eq!(ExecPolicy::Threads(0).workers(), 1);
        assert!(ExecPolicy::Threads(1).is_serial());
        assert_eq!(ExecPolicy::Threads(8).workers(), 8);
        assert!(!ExecPolicy::Threads(8).is_serial());
        assert!(ExecPolicy::Auto.workers() >= 1);
        assert_eq!(ExecPolicy::default(), ExecPolicy::Serial);
    }

    #[test]
    fn chunk_indices_and_offsets_are_consistent() {
        let items: Vec<u32> = (0..103).collect();
        for policy in [ExecPolicy::Serial, ExecPolicy::Threads(3)] {
            let spans = par_map_chunks(policy, &items, 10, |ci, off, chunk| {
                assert_eq!(off, ci * 10);
                assert_eq!(chunk[0], off as u32);
                (ci, off, chunk.len())
            });
            assert_eq!(spans.len(), 11);
            assert_eq!(spans[10], (10, 100, 3), "last chunk is the remainder");
            let total: usize = spans.iter().map(|&(_, _, n)| n).sum();
            assert_eq!(total, items.len());
        }
    }

    #[test]
    fn results_are_ordered_and_policy_independent() {
        let items: Vec<u64> = (0..4096).map(|i| i * 7 + 3).collect();
        let reference = par_map_chunks(ExecPolicy::Serial, &items, 33, |_, _, c| {
            c.iter().map(|&x| x.wrapping_mul(x)).sum::<u64>()
        });
        for threads in [2, 5, 8] {
            let parallel = par_map_chunks(ExecPolicy::Threads(threads), &items, 33, |_, _, c| {
                c.iter().map(|&x| x.wrapping_mul(x)).sum::<u64>()
            });
            assert_eq!(parallel, reference, "{threads} threads");
        }
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let items: Vec<usize> = (0..1000).collect();
        let visits = AtomicU64::new(0);
        let chunks = par_map_chunks(ExecPolicy::Threads(7), &items, 13, |_, _, c| {
            visits.fetch_add(c.len() as u64, Ordering::Relaxed);
            c.to_vec()
        });
        assert_eq!(visits.load(Ordering::Relaxed), 1000);
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, items, "concatenated chunks reproduce the input order");
    }

    #[test]
    fn par_reduce_matches_serial_fold() {
        let items: Vec<i64> = (0..500).map(|i| i - 250).collect();
        let expected: i64 = items.iter().map(|&x| x * 3).sum();
        for policy in [ExecPolicy::Serial, ExecPolicy::Threads(4), ExecPolicy::Auto] {
            let got = par_reduce(
                policy,
                &items,
                17,
                |_, _, c| c.iter().map(|&x| x * 3).sum::<i64>(),
                0i64,
                |a, r| a + r,
            );
            assert_eq!(got, expected, "{policy:?}");
        }
    }

    #[test]
    fn worker_state_is_initialized_per_worker_and_reused() {
        // Count init() calls: the serial path creates one state, a threaded
        // run at most `workers` states (fewer if some workers never claim a
        // chunk before the cursor drains).
        let items: Vec<u8> = vec![0; 64];
        let inits = AtomicU64::new(0);
        let _ = par_map_chunks_with(
            ExecPolicy::Serial,
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u8>::new()
            },
            |scratch, _, _, c| {
                scratch.clear();
                scratch.extend_from_slice(c);
                scratch.len()
            },
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        inits.store(0, Ordering::Relaxed);
        let _ = par_map_chunks_with(
            ExecPolicy::Threads(3),
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u8>::new()
            },
            |scratch, _, _, c| {
                scratch.clear();
                scratch.extend_from_slice(c);
                scratch.len()
            },
        );
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=3).contains(&n), "workers initialized {n} states");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u8; 0] = [];
        let out = par_map_chunks(ExecPolicy::Threads(4), &items, 8, |_, _, c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_never_exceeds_chunk_count() {
        // 2 chunks, 16 requested workers: must not deadlock or misbehave.
        let items: Vec<u32> = (0..20).collect();
        let out = par_map_chunks(ExecPolicy::Threads(16), &items, 10, |ci, _, c| {
            (ci, c.iter().sum::<u32>())
        });
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        let items = [1u8, 2, 3];
        let _ = par_map_chunks(ExecPolicy::Serial, &items, 0, |_, _, c| c.len());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_chunks(ExecPolicy::Threads(4), &items, 8, |_, off, _| {
                if off == 40 {
                    panic!("boom at 40");
                }
                off
            })
        });
        assert!(result.is_err());
    }
}
