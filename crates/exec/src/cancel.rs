//! Cooperative cancellation for long-running ATPG campaigns.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between a driver and
//! the workers (or single-threaded kernels) it governs.  Cancellation is
//! **cooperative**: nothing is interrupted preemptively; instead the kernels
//! poll [`CancelToken::is_cancelled`] at their natural safe points — pool
//! chunk boundaries, BDD operation entry, PPSFP block loops, MNA sweep
//! frequencies — and unwind cleanly (returning structured errors, never
//! panicking) when the token has fired.
//!
//! Three triggers can fire a token:
//!
//! * **Explicit** — [`CancelToken::cancel`], e.g. a service front end
//!   aborting a request.
//! * **Deterministic step quota** — a budget of abstract work units armed
//!   with [`CancelToken::with_step_quota`] and consumed with
//!   [`CancelToken::charge`].  The *determinism contract* is that only the
//!   driver charges the quota, at points whose order does not depend on
//!   scheduling (per fault target in replay order, per pattern block, per
//!   sweep frequency).  Workers merely *observe* the token at chunk
//!   boundaries, which affects wasted speculative work but never the
//!   report: once the quota fires, which faults are aborted is decided by
//!   the driver's deterministic replay order.
//! * **Wall-clock deadline** — [`CancelToken::with_deadline`].  This one is
//!   inherently timing-dependent; use it for operational hard stops, not in
//!   determinism-sensitive tests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Requested,
    /// The deterministic step quota was exhausted by [`CancelToken::charge`].
    StepQuota,
    /// The wall-clock deadline passed.
    Deadline,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Requested => write!(f, "cancellation requested"),
            CancelReason::StepQuota => write!(f, "step quota exhausted"),
            CancelReason::Deadline => write!(f, "deadline passed"),
        }
    }
}

#[derive(Debug)]
struct Inner {
    /// Set once any trigger fires; all observers see the token as cancelled
    /// from then on (a token never un-fires).
    cancelled: AtomicBool,
    /// Which trigger fired first, encoded as `CancelReason as u64 + 1`
    /// (0 = not fired).  Only the first writer wins.
    reason: AtomicU64,
    /// Remaining deterministic step quota (`u64::MAX` = unlimited).
    steps_left: AtomicU64,
    /// Wall-clock hard stop, checked lazily by `is_cancelled`.
    deadline: Option<Instant>,
}

/// A shared, cooperative cancellation signal (see the module docs).
///
/// Cloning is O(1) and all clones observe the same state.  The token is
/// `Send + Sync`; typical use hands one clone to each worker-facing kernel
/// and keeps one in the driver.
///
/// # Example
///
/// ```
/// use msatpg_exec::{CancelReason, CancelToken};
///
/// let token = CancelToken::with_step_quota(10);
/// assert!(!token.is_cancelled());
/// assert!(token.charge(8)); // 2 left
/// assert!(!token.charge(2)); // quota exhausted -> fires
/// assert!(token.is_cancelled());
/// assert_eq!(token.reason(), Some(CancelReason::StepQuota));
/// ```
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    fn build(steps: Option<u64>, deadline: Option<Instant>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: AtomicU64::new(0),
                steps_left: AtomicU64::new(steps.unwrap_or(u64::MAX)),
                deadline,
            }),
        }
    }

    /// A token that fires only on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A token with a deterministic step quota: after `steps` units have
    /// been [`charge`](CancelToken::charge)d the token fires.
    pub fn with_step_quota(steps: u64) -> Self {
        Self::build(Some(steps), None)
    }

    /// A token that fires once `timeout` has elapsed from now.  Inherently
    /// timing-dependent — do not use in determinism-sensitive tests.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::build(None, Instant::now().checked_add(timeout))
    }

    /// A token with both a step quota and a wall-clock deadline; whichever
    /// fires first wins.
    pub fn with_step_quota_and_deadline(steps: u64, timeout: Duration) -> Self {
        Self::build(Some(steps), Instant::now().checked_add(timeout))
    }

    fn fire(&self, reason: CancelReason) {
        // First reason wins; later triggers are ignored.
        let _ = self.inner.reason.compare_exchange(
            0,
            reason as u64 + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Fires the token explicitly.  Idempotent.
    pub fn cancel(&self) {
        self.fire(CancelReason::Requested);
    }

    /// Deducts `steps` units from the deterministic quota, firing the token
    /// when the quota is exhausted.  Returns `true` while the token is
    /// still live (i.e. the charge succeeded without exhausting it).
    /// Without an armed quota this is a no-op that reports liveness.
    ///
    /// Determinism contract: call this only from driver-side code at points
    /// whose order is independent of thread scheduling.
    pub fn charge(&self, steps: u64) -> bool {
        if self.is_cancelled() {
            return false;
        }
        let mut current = self.inner.steps_left.load(Ordering::Relaxed);
        loop {
            if current == u64::MAX {
                // No quota armed: charging is free.
                return true;
            }
            let next = current.saturating_sub(steps);
            match self.inner.steps_left.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    if current <= steps {
                        self.fire(CancelReason::StepQuota);
                        return false;
                    }
                    return true;
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// `true` once any trigger has fired.  Deadline expiry is detected
    /// lazily here (the first observer past the deadline fires the token
    /// for everyone).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.fire(CancelReason::Deadline);
                return true;
            }
        }
        false
    }

    /// The first trigger that fired, or `None` while the token is live.
    pub fn reason(&self) -> Option<CancelReason> {
        if !self.is_cancelled() {
            return None;
        }
        match self.inner.reason.load(Ordering::Relaxed) {
            1 => Some(CancelReason::Requested),
            2 => Some(CancelReason::StepQuota),
            3 => Some(CancelReason::Deadline),
            _ => Some(CancelReason::Requested),
        }
    }

    /// Remaining step quota (`u64::MAX` when no quota was armed).
    pub fn steps_remaining(&self) -> u64 {
        self.inner.steps_left.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        assert_eq!(t.steps_remaining(), u64::MAX);
    }

    #[test]
    fn explicit_cancel_fires_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.reason(), Some(CancelReason::Requested));
        // Idempotent; reason is sticky.
        c.cancel();
        assert_eq!(t.reason(), Some(CancelReason::Requested));
    }

    #[test]
    fn step_quota_fires_exactly_at_exhaustion() {
        let t = CancelToken::with_step_quota(5);
        assert!(t.charge(2));
        assert!(t.charge(2));
        assert_eq!(t.steps_remaining(), 1);
        assert!(!t.charge(1), "fifth unit exhausts the quota");
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::StepQuota));
        assert_eq!(t.steps_remaining(), 0);
        assert!(!t.charge(1), "charges after firing are rejected");
    }

    #[test]
    fn oversized_charge_fires_without_underflow() {
        let t = CancelToken::with_step_quota(3);
        assert!(!t.charge(1000));
        assert_eq!(t.steps_remaining(), 0);
        assert_eq!(t.reason(), Some(CancelReason::StepQuota));
    }

    #[test]
    fn zero_quota_fires_on_first_charge() {
        let t = CancelToken::with_step_quota(0);
        assert!(!t.charge(1));
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_fires_after_timeout() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        // A zero timeout is already past on the first observation.
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn far_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        let q = CancelToken::with_step_quota_and_deadline(2, Duration::from_secs(3600));
        assert!(q.charge(1));
        assert!(!q.charge(1));
        assert_eq!(q.reason(), Some(CancelReason::StepQuota));
    }

    #[test]
    fn explicit_cancel_beats_later_quota() {
        let t = CancelToken::with_step_quota(1);
        t.cancel();
        assert!(!t.charge(5));
        assert_eq!(t.reason(), Some(CancelReason::Requested));
    }
}
