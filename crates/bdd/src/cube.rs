//! Partial assignments (cubes) and satisfying-assignment iteration.

use std::collections::BTreeMap;
use std::fmt;

use crate::manager::BddManager;
use crate::node::{Bdd, VarId};

/// A total-ish assignment of Boolean values to variables.
///
/// Variables that were never assigned read back as `None` from
/// [`Assignment::get`]; [`BddManager::eval`] treats them as `false`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    values: BTreeMap<VarId, bool>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `var` to `value`.
    pub fn set(&mut self, var: VarId, value: bool) {
        self.values.insert(var, value);
    }

    /// Reads the value of `var`, if assigned.
    pub fn get(&self, var: VarId) -> Option<bool> {
        self.values.get(&var).copied()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, bool)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }
}

impl FromIterator<(VarId, bool)> for Assignment {
    fn from_iter<I: IntoIterator<Item = (VarId, bool)>>(iter: I) -> Self {
        Assignment {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(VarId, bool)> for Assignment {
    fn extend<I: IntoIterator<Item = (VarId, bool)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

/// A cube: a conjunction of literals, i.e. a partial assignment describing a
/// set of minterms.
///
/// Cubes are what the ATPG hands back as test vectors: assigned variables are
/// required values, unassigned variables are don't-cares (`X` in the paper's
/// notation, e.g. the vector `{l0,l1,l2,l4} = {0,0,1,X}` of Example 2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cube {
    literals: BTreeMap<VarId, bool>,
}

impl Cube {
    /// Creates the empty cube (the universal set of minterms).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the literal `var = value` to the cube.
    pub fn set(&mut self, var: VarId, value: bool) {
        self.literals.insert(var, value);
    }

    /// Value required for `var`, or `None` when `var` is a don't-care.
    pub fn get(&self, var: VarId) -> Option<bool> {
        self.literals.get(&var).copied()
    }

    /// Number of literals in the cube.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Returns `true` for the empty (universal) cube.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Iterates over `(variable, value)` literals in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, bool)> + '_ {
        self.literals.iter().map(|(&k, &v)| (k, v))
    }

    /// Converts the cube into an [`Assignment`] (don't-cares stay
    /// unassigned).
    pub fn to_assignment(&self) -> Assignment {
        Assignment {
            values: self.literals.clone(),
        }
    }

    /// Renders the cube as a pattern string over the given number of
    /// variables (`0`, `1`, or `X` per position), as customarily printed by
    /// ATPG tools.
    pub fn to_pattern(&self, var_count: usize) -> String {
        (0..var_count as VarId)
            .map(|v| match self.get(v) {
                Some(true) => '1',
                Some(false) => '0',
                None => 'X',
            })
            .collect()
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "(true)");
        }
        let parts: Vec<String> = self
            .literals
            .iter()
            .map(|(v, val)| {
                if *val {
                    format!("x{v}")
                } else {
                    format!("!x{v}")
                }
            })
            .collect();
        write!(f, "{}", parts.join(" & "))
    }
}

impl FromIterator<(VarId, bool)> for Cube {
    fn from_iter<I: IntoIterator<Item = (VarId, bool)>>(iter: I) -> Self {
        Cube {
            literals: iter.into_iter().collect(),
        }
    }
}

/// Iterator over the cubes (root-to-one paths) of a BDD.
///
/// Produced by [`BddManager::cubes`].  The traversal resolves complement
/// edges on the fly (a path satisfies `f` iff it reaches the terminal with
/// even complement parity), so the cube cover of a function is identical
/// whether the engine stored it in positive or negative polarity — and, as
/// the garbage collector never renumbers live nodes, identical before and
/// after any number of [`BddManager::gc`] cycles.
pub struct CubeIter<'a> {
    manager: &'a BddManager,
    stack: Vec<(Bdd, Cube)>,
}

impl<'a> CubeIter<'a> {
    pub(crate) fn new(manager: &'a BddManager, f: Bdd) -> Self {
        let stack = if f.is_zero() {
            Vec::new()
        } else {
            vec![(f, Cube::new())]
        };
        CubeIter { manager, stack }
    }
}

impl<'a> Iterator for CubeIter<'a> {
    type Item = Cube;

    fn next(&mut self) -> Option<Cube> {
        while let Some((node, cube)) = self.stack.pop() {
            if node.is_one() {
                return Some(cube);
            }
            if node.is_zero() {
                continue;
            }
            let var = self.manager.node_var(node);
            // Semantic children: the handle's complement flag pushed down,
            // so `is_zero`/`is_one` checks see the function, not the
            // stored polarity.
            let (low, high) = self.manager.children(node);
            let mut low_cube = cube.clone();
            low_cube.set(var, false);
            let mut high_cube = cube;
            high_cube.set(var, true);
            if !low.is_zero() {
                self.stack.push((low, low_cube));
            }
            if !high.is_zero() {
                self.stack.push((high, high_cube));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_roundtrip() {
        let mut a = Assignment::new();
        assert!(a.is_empty());
        a.set(3, true);
        a.set(1, false);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(3), Some(true));
        assert_eq!(a.get(1), Some(false));
        assert_eq!(a.get(0), None);
        let collected: Vec<_> = a.iter().collect();
        assert_eq!(collected, vec![(1, false), (3, true)]);
    }

    #[test]
    fn cube_pattern_rendering() {
        let mut c = Cube::new();
        c.set(0, false);
        c.set(2, true);
        assert_eq!(c.to_pattern(4), "0X1X");
        assert_eq!(format!("{c}"), "!x0 & x2");
        assert_eq!(format!("{}", Cube::new()), "(true)");
    }

    #[test]
    fn cube_iteration_covers_on_set() {
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let c = m.var("c");
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let cubes: Vec<Cube> = m.cubes(f).collect();
        assert!(!cubes.is_empty());
        // Every cube must satisfy f, and together they must count 5 minterms.
        let mut total = 0u32;
        for cube in &cubes {
            let asg = cube.to_assignment();
            assert!(m.eval(f, &asg), "cube {cube} does not satisfy f");
            total += 1 << (3 - cube.len());
        }
        assert_eq!(total, 5);
    }

    #[test]
    fn cube_iter_of_zero_is_empty() {
        let m = BddManager::new();
        assert_eq!(m.cubes(Bdd::ZERO).count(), 0);
        assert_eq!(m.cubes(Bdd::ONE).count(), 1);
    }

    #[test]
    fn cubes_of_negated_function_cover_the_off_set() {
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let c = m.var("c");
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let nf = m.not(f);
        // (a&b)|c has 5 minterms over 3 variables, its complement the other 3.
        let mut total = 0u32;
        for cube in m.cubes(nf) {
            assert!(!m.eval(f, &cube.to_assignment()));
            total += 1 << (3 - cube.len());
        }
        assert_eq!(total, 3);
    }

    #[test]
    fn cube_enumeration_survives_a_gc_cycle() {
        // Enumerate, collect garbage (with the function protected),
        // enumerate again: both the cube list and pattern renderings must be
        // byte-identical, and so must an enumeration interleaved with fresh
        // allocations that reuse the swept slots.
        let mut m = BddManager::new();
        for i in 0..6 {
            m.var(&format!("x{i}"));
        }
        let mut f = m.zero();
        for i in 0..5u32 {
            let u = m.literal(i, i % 2 == 0);
            let v = m.literal(i + 1, true);
            let t = m.and(u, v);
            f = m.or(f, t);
        }
        let before: Vec<Cube> = m.cubes(f).collect();
        let patterns_before: Vec<String> = before.iter().map(|c| c.to_pattern(6)).collect();
        m.protect(f);
        let report = m.gc();
        assert!(report.reclaimed > 0, "the build left garbage to sweep");
        let after: Vec<Cube> = m.cubes(f).collect();
        assert_eq!(before, after);
        let patterns_after: Vec<String> = after.iter().map(|c| c.to_pattern(6)).collect();
        assert_eq!(patterns_before, patterns_after);
        // Reuse the freed slots with unrelated functions, then enumerate
        // once more: the protected function's cover must not change.
        let y = m.var("x5");
        let z = m.var("x0");
        let _noise = m.xor(y, z);
        let again: Vec<Cube> = m.cubes(f).collect();
        assert_eq!(before, again);
        m.unprotect(f);
    }

    #[test]
    fn from_iterator_impls() {
        let cube: Cube = vec![(0, true), (2, false)].into_iter().collect();
        assert_eq!(cube.get(0), Some(true));
        assert_eq!(cube.get(2), Some(false));
        let asg: Assignment = vec![(1, true)].into_iter().collect();
        assert_eq!(asg.get(1), Some(true));
        let mut asg2 = Assignment::new();
        asg2.extend(vec![(5, false)]);
        assert_eq!(asg2.get(5), Some(false));
    }
}
