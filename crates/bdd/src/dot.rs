//! Export of BDDs to Graphviz DOT and to an indented text tree.
//!
//! Used to regenerate Figure 6 of the paper (the OBDDs of `Vo1`/`Vo2` built
//! with the composite values `l0 = D`, `l2 = D̄`).
//!
//! ## Rendering convention (complement edges)
//!
//! The engine stores only one polarity of each function; negation lives on
//! the edges.  Both exporters therefore render the *stored* structure and
//! mark the complement arcs explicitly:
//!
//! * every DOT edge is labelled `0` (low/else) or `1` (high/then);
//! * **complement arcs are drawn as dashed edges** — by the canonical
//!   invariant the high edge is never complemented, so every dashed arc is
//!   a low edge whose target function is negated along the way.  The entry
//!   arc from the graph-name stub is dashed iff the root handle itself is
//!   complemented;
//! * there is a single terminal box `1`; the constant `0` is a dashed
//!   (complemented) arc into it.
//!
//! Node identifiers are assigned in traversal order, never from arena
//! indices, so the output is byte-identical before and after
//! [`BddManager::gc`] cycles and independent of free-slot reuse.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::manager::BddManager;
use crate::node::Bdd;

/// Assigns dense, traversal-ordered identifiers to the nodes reachable from
/// `f` (complement flags stripped), depth-first, low child before high.
fn number_nodes(m: &BddManager, f: Bdd) -> (Vec<Bdd>, HashMap<u32, usize>) {
    let mut order: Vec<Bdd> = Vec::new();
    let mut ids: HashMap<u32, usize> = HashMap::new();
    let mut stack = vec![f.regular()];
    while let Some(n) = stack.pop() {
        if n.is_terminal() || ids.contains_key(&n.index()) {
            continue;
        }
        ids.insert(n.index(), order.len());
        order.push(n);
        let (low, high) = m.stored_children(n);
        // Push high first so the low child is numbered first (DFS preorder
        // in low-then-high order).
        stack.push(high.regular());
        stack.push(low.regular());
    }
    (order, ids)
}

/// DOT name of an edge target: an interior node id or the terminal box.
fn target_name(ids: &HashMap<u32, usize>, child: Bdd) -> String {
    if child.is_terminal() {
        "terminal".to_owned()
    } else {
        format!("n{}", ids[&child.index()])
    }
}

/// Renders `f` as a Graphviz DOT digraph.
///
/// Edges are labelled `0` (low) / `1` (high); dashed edges are complement
/// arcs (see the crate docs).  The output depends only on the
/// function's structure — node ids are traversal-ordered — so it is stable
/// across garbage collections.
pub fn to_dot(m: &BddManager, f: Bdd, graph_name: &str) -> String {
    let (order, ids) = number_nodes(m, f);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{graph_name}\" {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  entry [label=\"{graph_name}\", shape=plaintext];");
    let _ = writeln!(out, "  terminal [label=\"1\", shape=box];");
    for (id, &n) in order.iter().enumerate() {
        let _ = writeln!(
            out,
            "  n{id} [label=\"{}\", shape=circle];",
            m.var_name(m.node_var(n))
        );
    }
    // The entry arc carries the root handle's polarity.
    let root_style = if f.is_complement() {
        ", style=dashed"
    } else {
        ""
    };
    let _ = writeln!(
        out,
        "  entry -> {} [label=\"\"{root_style}];",
        target_name(&ids, f)
    );
    for (id, &n) in order.iter().enumerate() {
        let (low, high) = m.stored_children(n);
        let low_style = if low.is_complement() {
            ", style=dashed"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{id} -> {} [label=\"0\"{low_style}];",
            target_name(&ids, low)
        );
        // Canonical invariant: the high edge is never complemented.
        let _ = writeln!(out, "  n{id} -> {} [label=\"1\"];", target_name(&ids, high));
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders `f` as an indented text tree (shared nodes are printed once and
/// referenced by `@id` afterwards), convenient for terminal output.
///
/// A leading `~` marks a complement arc: the subtree (or `@id` reference)
/// below it denotes the negation of the printed structure.  Terminals print
/// as `1`/`0` with the arc's polarity already folded in.
pub fn to_text_tree(m: &BddManager, f: Bdd) -> String {
    let mut out = String::new();
    let mut printed: HashMap<u32, usize> = HashMap::new();
    fn rec(
        m: &BddManager,
        f: Bdd,
        depth: usize,
        out: &mut String,
        printed: &mut HashMap<u32, usize>,
    ) {
        let indent = "  ".repeat(depth);
        if f.is_zero() {
            let _ = writeln!(out, "{indent}0");
            return;
        }
        if f.is_one() {
            let _ = writeln!(out, "{indent}1");
            return;
        }
        let polarity = if f.is_complement() { "~" } else { "" };
        if let Some(id) = printed.get(&f.index()) {
            let _ = writeln!(out, "{indent}{polarity}@{id}");
            return;
        }
        let id = printed.len();
        printed.insert(f.index(), id);
        let (low, high) = m.stored_children(f);
        let _ = writeln!(
            out,
            "{indent}{polarity}{} (#{id})",
            m.var_name(m.node_var(f))
        );
        rec(m, low, depth + 1, out, printed);
        rec(m, high, depth + 1, out, printed);
    }
    rec(m, f, 0, &mut out, &mut printed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_variables() {
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let f = m.and(a, b);
        let dot = to_dot(&m, f, "test");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("\"a\""));
        assert!(dot.contains("\"b\""));
        assert!(dot.contains("terminal"));
        assert!(dot.contains("label=\"0\""));
        assert!(dot.contains("label=\"1\""));
    }

    #[test]
    fn complement_arcs_render_dashed() {
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let f = m.and(a, b);
        let nf = m.not(f);
        // A complemented root puts a dashed style on the entry arc.
        let dot_nf = to_dot(&m, nf, "nf");
        assert!(
            dot_nf.contains("entry -> n0 [label=\"\", style=dashed];"),
            "complemented root must dash the entry arc:\n{dot_nf}"
        );
        let dot_f = to_dot(&m, f, "f");
        assert!(
            dot_f.contains("entry -> n0 [label=\"\"];"),
            "regular root keeps a solid entry arc:\n{dot_f}"
        );
        // a AND b stores low edges to the complemented terminal (0 = ~1):
        // every such arc is dashed, and no high edge ever is.
        assert!(dot_f.contains("[label=\"0\", style=dashed];"));
        for line in dot_f.lines() {
            if line.contains("label=\"1\"") && line.contains("->") {
                assert!(
                    !line.contains("dashed"),
                    "high edges are never complement arcs: {line}"
                );
            }
        }
    }

    #[test]
    fn negated_function_shares_the_drawing() {
        // f and !f differ only in the entry arc — the stored structure (and
        // therefore every node/edge line) is identical.
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let c = m.var("c");
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let nf = m.not(f);
        let body = |dot: &str| {
            dot.lines()
                .filter(|l| !l.contains("entry"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(body(&to_dot(&m, f, "g")), body(&to_dot(&m, nf, "g")));
    }

    #[test]
    fn dot_output_is_stable_across_gc() {
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let c = m.var("c");
        let f = {
            let ab = m.and(a, b);
            let bc = m.xor(b, c);
            m.or(ab, bc)
        };
        let before = to_dot(&m, f, "stable");
        let tree_before = to_text_tree(&m, f);
        m.protect(f);
        let report = m.gc();
        assert!(report.reclaimed > 0);
        assert_eq!(to_dot(&m, f, "stable"), before);
        assert_eq!(to_text_tree(&m, f), tree_before);
        // Allocate into the freed slots, then render again: traversal-order
        // ids keep the output byte-identical.  (`f` is the only handle that
        // survived the collection; `a`/`b`/`c` literal nodes were swept.)
        let d = m.var("d");
        let _noise = m.xor(d, f);
        assert_eq!(to_dot(&m, f, "stable"), before);
        assert_eq!(to_text_tree(&m, f), tree_before);
        m.unprotect(f);
    }

    #[test]
    fn text_tree_shares_nodes() {
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let c = m.var("c");
        // f = (a AND c) OR (b AND c): the BDD shares the `c` node.
        let f = {
            let ac = m.and(a, c);
            let bc = m.and(b, c);
            m.or(ac, bc)
        };
        let tree = to_text_tree(&m, f);
        assert!(tree.contains('a'));
        assert!(tree.contains('@'), "shared node should be referenced");
    }

    #[test]
    fn text_tree_marks_complement_arcs() {
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let f = m.and(a, b);
        let nf = m.not(f);
        let tree = to_text_tree(&m, nf);
        assert!(tree.starts_with('~'), "complemented root is marked: {tree}");
    }

    #[test]
    fn terminals_render() {
        let m = BddManager::new();
        assert_eq!(to_text_tree(&m, Bdd::ONE).trim(), "1");
        assert_eq!(to_text_tree(&m, Bdd::ZERO).trim(), "0");
        let dot = to_dot(&m, Bdd::ZERO, "zero");
        assert!(dot.contains("entry -> terminal [label=\"\", style=dashed];"));
    }
}
