//! Export of BDDs to Graphviz DOT and to an indented text tree.
//!
//! Used to regenerate Figure 6 of the paper (the OBDDs of `Vo1`/`Vo2` built
//! with the composite values `l0 = D`, `l2 = D̄`).

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use crate::manager::BddManager;
use crate::node::Bdd;

/// Renders `f` as a Graphviz DOT digraph.
///
/// Solid edges are `high` (variable = 1) edges, dashed edges are `low`
/// (variable = 0) edges, matching the usual BDD drawing convention.
pub fn to_dot(m: &BddManager, f: Bdd, graph_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{graph_name}\" {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node0 [label=\"0\", shape=box];");
    let _ = writeln!(out, "  node1 [label=\"1\", shape=box];");
    let mut seen: HashSet<Bdd> = HashSet::new();
    let mut stack = vec![f];
    while let Some(n) = stack.pop() {
        if n.is_terminal() || !seen.insert(n) {
            continue;
        }
        let node = m.node(n);
        let _ = writeln!(
            out,
            "  node{} [label=\"{}\", shape=circle];",
            n.index(),
            m.var_name(node.var)
        );
        let _ = writeln!(
            out,
            "  node{} -> node{} [style=dashed];",
            n.index(),
            node.low.index()
        );
        let _ = writeln!(out, "  node{} -> node{};", n.index(), node.high.index());
        stack.push(node.low);
        stack.push(node.high);
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders `f` as an indented text tree (shared nodes are printed once and
/// referenced by `@id` afterwards), convenient for terminal output.
pub fn to_text_tree(m: &BddManager, f: Bdd) -> String {
    let mut out = String::new();
    let mut printed: HashMap<Bdd, usize> = HashMap::new();
    fn rec(
        m: &BddManager,
        f: Bdd,
        depth: usize,
        out: &mut String,
        printed: &mut HashMap<Bdd, usize>,
    ) {
        let indent = "  ".repeat(depth);
        if f.is_zero() {
            let _ = writeln!(out, "{indent}0");
            return;
        }
        if f.is_one() {
            let _ = writeln!(out, "{indent}1");
            return;
        }
        if let Some(id) = printed.get(&f) {
            let _ = writeln!(out, "{indent}@{id}");
            return;
        }
        let id = printed.len();
        printed.insert(f, id);
        let node = m.node(f);
        let _ = writeln!(out, "{indent}{} (#{id})", m.var_name(node.var));
        rec(m, node.low, depth + 1, out, printed);
        rec(m, node.high, depth + 1, out, printed);
    }
    rec(m, f, 0, &mut out, &mut printed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_variables() {
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let f = m.and(a, b);
        let dot = to_dot(&m, f, "test");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("\"a\""));
        assert!(dot.contains("\"b\""));
        assert!(dot.contains("node0"));
        assert!(dot.contains("node1"));
    }

    #[test]
    fn text_tree_shares_nodes() {
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let c = m.var("c");
        // f = (a AND c) OR (b AND c): the BDD shares the `c` node.
        let f = {
            let ac = m.and(a, c);
            let bc = m.and(b, c);
            m.or(ac, bc)
        };
        let tree = to_text_tree(&m, f);
        assert!(tree.contains('a'));
        assert!(tree.contains('@'), "shared node should be referenced");
    }

    #[test]
    fn terminals_render() {
        let m = BddManager::new();
        assert_eq!(to_text_tree(&m, Bdd::ONE).trim(), "1");
        assert_eq!(to_text_tree(&m, Bdd::ZERO).trim(), "0");
    }
}
