//! Textual serialization of BDDs (a dddmp-style node-list format).
//!
//! The exchange format follows the spirit of CUDD's `dddmp` text dumps: a
//! small header, the variable order, then one line per node referencing its
//! children by identifier.  Two properties matter more than the surface
//! syntax:
//!
//! * **stability** — node identifiers are assigned in traversal order
//!   (depth-first, low child before high), never from arena indices, so the
//!   output is byte-identical before and after [`BddManager::gc`] cycles
//!   and independent of free-list slot reuse — the same convention as the
//!   DOT exporter;
//! * **complement edges** — the engine stores one polarity per function and
//!   keeps negation on the edges.  A reference is `T` (the `1` terminal),
//!   a 1-based node id, or either prefixed with `-` for a complement arc
//!   (`-T` is the constant `0`).  The canonical invariant — a stored high
//!   edge is never complemented — is part of the format and is *checked* on
//!   import, which makes a flipped polarity bit a detectable corruption
//!   rather than a silently wrong function.
//!
//! Import rebuilds the function through the manager's own hash-consing
//! ([`BddManager::try_ite`] per node, children first), so a loaded BDD is
//! automatically reduced and shares structure with whatever the target
//! manager already holds.  Every malformed byte — unknown keyword, dangling
//! reference, variable-order violation, truncated node list — surfaces as a
//! structured [`BddStoreError`], never a panic.
//!
//! The on-disk envelope (checksums, versioning, atomic writes) lives in
//! `msatpg_core::store`; this module is only the payload codec.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::budget::BddError;
use crate::manager::BddManager;
use crate::node::{Bdd, VarId};

/// Version tag emitted in the `.ver` line; bump on incompatible changes.
pub const FORMAT_VERSION: &str = "msatpg-dddmp-1";

/// A failure while parsing or rebuilding a serialized BDD.
#[derive(Debug)]
pub enum BddStoreError {
    /// The text is not a well-formed document (the message says why, the
    /// line number is 1-based; line 0 means the document as a whole).
    Parse {
        /// 1-based line of the offending input (0 = whole document).
        line: usize,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Rebuilding the function hit a manager-side failure (budget, cancel).
    Bdd(BddError),
}

impl fmt::Display for BddStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddStoreError::Parse { line, reason } => {
                write!(f, "BDD store parse error at line {line}: {reason}")
            }
            BddStoreError::Bdd(e) => write!(f, "BDD store rebuild failed: {e}"),
        }
    }
}

impl Error for BddStoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BddStoreError::Parse { .. } => None,
            BddStoreError::Bdd(e) => Some(e),
        }
    }
}

impl From<BddError> for BddStoreError {
    fn from(e: BddError) -> Self {
        BddStoreError::Bdd(e)
    }
}

fn parse_err(line: usize, reason: impl Into<String>) -> BddStoreError {
    BddStoreError::Parse {
        line,
        reason: reason.into(),
    }
}

/// Assigns dense, traversal-ordered 1-based identifiers to the nodes
/// reachable from `f` (complement flags stripped), depth-first, low child
/// before high — the same ordering as the DOT exporter, so ids are stable
/// across garbage collection and free-slot reuse.
fn number_nodes(m: &BddManager, f: Bdd) -> (Vec<Bdd>, HashMap<u32, usize>) {
    let mut order: Vec<Bdd> = Vec::new();
    let mut ids: HashMap<u32, usize> = HashMap::new();
    let mut stack = vec![f.regular()];
    while let Some(n) = stack.pop() {
        if n.is_terminal() || ids.contains_key(&n.index()) {
            continue;
        }
        ids.insert(n.index(), order.len() + 1);
        order.push(n);
        let (low, high) = m.stored_children(n);
        stack.push(high.regular());
        stack.push(low.regular());
    }
    (order, ids)
}

/// Formats an edge target: `T`/`-T` for the terminals, `id`/`-id` for
/// interior nodes (`-` marks a complement arc).
fn ref_of(ids: &HashMap<u32, usize>, child: Bdd) -> String {
    let sign = if child.is_complement() { "-" } else { "" };
    if child.is_terminal() {
        format!("{sign}T")
    } else {
        match ids.get(&child.index()) {
            Some(id) => format!("{sign}{id}"),
            // Unreachable: every child of a numbered node is numbered.
            None => format!("{sign}?"),
        }
    }
}

/// Serializes `f` to the textual node-list format.
///
/// The output depends only on the function's structure and the manager's
/// variable order, so it is byte-stable across GC cycles.  Newlines in
/// `name` are replaced by spaces (the name occupies one header line).
pub fn export_bdd(m: &BddManager, f: Bdd, name: &str) -> String {
    let (order, ids) = number_nodes(m, f);
    let clean_name: String = name
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, ".ver {FORMAT_VERSION}");
    let _ = writeln!(out, ".bdd {clean_name}");
    let _ = writeln!(out, ".nvars {}", m.var_count());
    // Variables are listed in *ordering position* (level order) and node
    // records reference them by position in this list, so a dump taken
    // after reordering is still internally consistent: variable indices
    // strictly increase along every edge.  For a never-reordered manager
    // level order equals declaration order and the output is unchanged.
    for &v in m.var_order() {
        let _ = writeln!(out, ".var {}", m.var_name(v));
    }
    let _ = writeln!(out, ".nnodes {}", order.len());
    let _ = writeln!(out, ".root {}", ref_of(&ids, f));
    for (i, &n) in order.iter().enumerate() {
        let (low, high) = m.stored_children(n);
        let _ = writeln!(
            out,
            ".node {} {} {} {}",
            i + 1,
            m.level_of(m.node_var(n)),
            ref_of(&ids, low),
            ref_of(&ids, high)
        );
    }
    out.push_str(".end\n");
    out
}

/// A parsed (but not yet resolved) edge reference.
#[derive(Clone, Copy)]
enum Ref {
    Terminal { complement: bool },
    Node { id: usize, complement: bool },
}

fn parse_ref(token: &str, line: usize, nnodes: usize) -> Result<Ref, BddStoreError> {
    let (complement, body) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    if body == "T" {
        return Ok(Ref::Terminal { complement });
    }
    let id: usize = body
        .parse()
        .map_err(|_| parse_err(line, format!("malformed node reference `{token}`")))?;
    if id == 0 || id > nnodes {
        return Err(parse_err(
            line,
            format!("node reference {id} outside 1..={nnodes}"),
        ));
    }
    Ok(Ref::Node { id, complement })
}

/// One `.node` record: variable (as an index into the `.var` list) and the
/// two child references.
struct NodeRecord {
    var: usize,
    low: Ref,
    high: Ref,
}

/// The fully parsed document, validated but not yet rebuilt.
struct Document {
    name: String,
    vars: Vec<VarId>,
    root: Ref,
    nodes: Vec<NodeRecord>,
}

/// Reads one expected `.keyword value` line.
fn expect_line<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    keyword: &str,
) -> Result<(usize, &'a str), BddStoreError> {
    match lines.next() {
        Some((no, text)) => match text.strip_prefix(keyword) {
            Some(rest) if rest.is_empty() || rest.starts_with(' ') => {
                Ok((no, rest.trim_start_matches(' ')))
            }
            _ => Err(parse_err(no, format!("expected `{keyword}`, got `{text}`"))),
        },
        None => Err(parse_err(
            0,
            format!("unexpected end of input: missing `{keyword}`"),
        )),
    }
}

fn parse_count(value: &str, line: usize, what: &str) -> Result<usize, BddStoreError> {
    value
        .parse()
        .map_err(|_| parse_err(line, format!("malformed {what} count `{value}`")))
}

/// Parses the document and declares its variables in `m`.
///
/// The listed variables must resolve, in file order, to strictly increasing
/// *ordering positions* (levels) in the target manager: loading into a
/// fresh manager always succeeds, loading into a manager whose existing
/// order disagrees is a structured error (the function would otherwise be
/// silently reordered).
fn parse_document(m: &mut BddManager, text: &str) -> Result<Document, BddStoreError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty());

    let (no, ver) = expect_line(&mut lines, ".ver")?;
    if ver != FORMAT_VERSION {
        return Err(parse_err(
            no,
            format!("unsupported format version `{ver}` (expected `{FORMAT_VERSION}`)"),
        ));
    }
    let (_, name) = expect_line(&mut lines, ".bdd")?;
    let name = name.to_owned();
    let (no, nvars) = expect_line(&mut lines, ".nvars")?;
    let nvars = parse_count(nvars, no, "variable")?;
    let mut vars: Vec<VarId> = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let (no, var_name) = expect_line(&mut lines, ".var")?;
        if var_name.is_empty() {
            return Err(parse_err(no, "empty variable name"));
        }
        let id = m.var_id(var_name);
        if let Some(&prev) = vars.last() {
            if m.level_of(id) <= m.level_of(prev) {
                return Err(parse_err(
                    no,
                    format!(
                        "variable `{var_name}` breaks the target manager's order \
                         (level {} after {})",
                        m.level_of(id),
                        m.level_of(prev)
                    ),
                ));
            }
        }
        vars.push(id);
    }
    let (no, nnodes) = expect_line(&mut lines, ".nnodes")?;
    let nnodes = parse_count(nnodes, no, "node")?;
    let (no, root) = expect_line(&mut lines, ".root")?;
    let root = parse_ref(root, no, nnodes)?;

    let mut nodes: Vec<Option<NodeRecord>> = Vec::new();
    nodes.resize_with(nnodes, || None);
    for _ in 0..nnodes {
        let (no, rest) = expect_line(&mut lines, ".node")?;
        let mut fields = rest.split_whitespace();
        let (id, var, low, high) =
            match (fields.next(), fields.next(), fields.next(), fields.next()) {
                (Some(a), Some(b), Some(c), Some(d)) => (a, b, c, d),
                _ => return Err(parse_err(no, "expected `.node <id> <var> <low> <high>`")),
            };
        if fields.next().is_some() {
            return Err(parse_err(no, "trailing fields on `.node` line"));
        }
        let id: usize = id
            .parse()
            .map_err(|_| parse_err(no, format!("malformed node id `{id}`")))?;
        if id == 0 || id > nnodes {
            return Err(parse_err(no, format!("node id {id} outside 1..={nnodes}")));
        }
        let var: usize = var
            .parse()
            .map_err(|_| parse_err(no, format!("malformed variable index `{var}`")))?;
        if var >= nvars {
            return Err(parse_err(
                no,
                format!("variable index {var} outside 0..{nvars}"),
            ));
        }
        let low = parse_ref(low, no, nnodes)?;
        let high = parse_ref(high, no, nnodes)?;
        if let Ref::Node {
            complement: true, ..
        }
        | Ref::Terminal { complement: true } = high
        {
            return Err(parse_err(
                no,
                "complemented high edge violates the canonical form",
            ));
        }
        let slot = nodes
            .get_mut(id - 1)
            .ok_or_else(|| parse_err(no, format!("node id {id} outside 1..={nnodes}")))?;
        if slot.is_some() {
            return Err(parse_err(no, format!("duplicate node id {id}")));
        }
        *slot = Some(NodeRecord { var, low, high });
    }
    let (_, _) = expect_line(&mut lines, ".end")?;
    if let Some((extra, text)) = lines.next() {
        return Err(parse_err(
            extra,
            format!("trailing content `{text}` after .end"),
        ));
    }

    // Every id declared in `.nnodes` must be defined, and the variable
    // order must strictly increase along every edge — which also rules out
    // reference cycles and bounds the rebuild depth by the variable count.
    let mut resolved: Vec<NodeRecord> = Vec::with_capacity(nnodes);
    for (i, slot) in nodes.into_iter().enumerate() {
        match slot {
            Some(rec) => resolved.push(rec),
            None => return Err(parse_err(0, format!("node id {} is never defined", i + 1))),
        }
    }
    for (i, rec) in resolved.iter().enumerate() {
        for child in [rec.low, rec.high] {
            if let Ref::Node { id, .. } = child {
                let child_var = resolved
                    .get(id - 1)
                    .map(|r| r.var)
                    .ok_or_else(|| parse_err(0, format!("dangling reference to node {id}")))?;
                if child_var <= rec.var {
                    return Err(parse_err(
                        0,
                        format!(
                            "node {} (var {}) references node {id} (var {child_var}): \
                             variable order must strictly increase",
                            i + 1,
                            rec.var
                        ),
                    ));
                }
            }
        }
    }
    Ok(Document {
        name,
        vars,
        root,
        nodes: resolved,
    })
}

/// Rebuilds the node for `id`, children first, memoizing and protecting
/// every interior result so an auto-GC pass during construction cannot
/// sweep it.  Depth is bounded by the variable count (checked above).
fn build_node(
    m: &mut BddManager,
    doc: &Document,
    memo: &mut Vec<Option<Bdd>>,
    protected: &mut Vec<Bdd>,
    id: usize,
) -> Result<Bdd, BddStoreError> {
    if let Some(Some(b)) = memo.get(id - 1) {
        return Ok(*b);
    }
    let rec = doc
        .nodes
        .get(id - 1)
        .ok_or_else(|| parse_err(0, format!("dangling reference to node {id}")))?;
    let var = *doc
        .vars
        .get(rec.var)
        .ok_or_else(|| parse_err(0, format!("variable index {} out of range", rec.var)))?;
    let (low_ref, high_ref) = (rec.low, rec.high);
    let low = resolve_ref(m, doc, memo, protected, low_ref)?;
    let high = resolve_ref(m, doc, memo, protected, high_ref)?;
    let lit = m.literal(var, true);
    let node = m.try_ite(lit, high, low)?;
    if !node.is_terminal() {
        m.protect(node);
        protected.push(node);
    }
    if let Some(slot) = memo.get_mut(id - 1) {
        *slot = Some(node);
    }
    Ok(node)
}

fn resolve_ref(
    m: &mut BddManager,
    doc: &Document,
    memo: &mut Vec<Option<Bdd>>,
    protected: &mut Vec<Bdd>,
    r: Ref,
) -> Result<Bdd, BddStoreError> {
    match r {
        Ref::Terminal { complement: false } => Ok(Bdd::ONE),
        Ref::Terminal { complement: true } => Ok(Bdd::ZERO),
        Ref::Node { id, complement } => {
            let node = build_node(m, doc, memo, protected, id)?;
            Ok(node.toggled_if(complement))
        }
    }
}

/// Parses `text` and rebuilds the function in `m`, returning the handle and
/// the stored name.
///
/// Variables are declared in `m` as needed (see the ordering contract in
/// the module docs).  The rebuilt function is *not* left protected; protect
/// it before the next [`BddManager::gc`] if it must survive one.  On any
/// malformed input this returns [`BddStoreError::Parse`]; manager-side
/// failures (budget exhaustion, cancellation) surface as
/// [`BddStoreError::Bdd`] with the underlying [`BddError`] as
/// [`Error::source`].
pub fn import_bdd(m: &mut BddManager, text: &str) -> Result<(Bdd, String), BddStoreError> {
    let doc = parse_document(m, text)?;
    let mut memo: Vec<Option<Bdd>> = vec![None; doc.nodes.len()];
    let mut protected: Vec<Bdd> = Vec::new();
    let result = resolve_ref(m, &doc, &mut memo, &mut protected, doc.root);
    for &n in &protected {
        m.unprotect(n);
    }
    let root = result?;
    Ok((root, doc.name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(m: &mut BddManager) -> Bdd {
        let a = m.var("a");
        let b = m.var("b");
        let c = m.var("c");
        let ab = m.and(a, b);
        let bc = m.xor(b, c);
        m.or(ab, bc)
    }

    #[test]
    fn roundtrip_preserves_function_and_bytes() {
        let mut m = BddManager::new();
        let f = sample(&mut m);
        let text = export_bdd(&m, f, "sample");
        let mut m2 = BddManager::new();
        let (g, name) = import_bdd(&mut m2, &text).unwrap();
        assert_eq!(name, "sample");
        assert_eq!(m.sat_count(f), m2.sat_count(g));
        assert_eq!(
            m.cubes(f).collect::<Vec<_>>(),
            m2.cubes(g).collect::<Vec<_>>()
        );
        // Re-export of the import is byte-identical (canonical form).
        assert_eq!(export_bdd(&m2, g, "sample"), text);
    }

    #[test]
    fn export_is_stable_across_gc_and_reallocation() {
        let mut m = BddManager::new();
        let f = sample(&mut m);
        let before = export_bdd(&m, f, "stable");
        m.protect(f);
        let report = m.gc();
        assert!(report.reclaimed > 0);
        assert_eq!(export_bdd(&m, f, "stable"), before);
        // Allocate into the freed slots (no new variables, which would
        // legitimately extend the `.var` header): traversal-ordered ids
        // keep the output byte-identical despite free-list reuse.
        let a = m.var("a");
        let c = m.var("c");
        let _noise = m.xor(a, c);
        assert_eq!(export_bdd(&m, f, "stable"), before);
        m.unprotect(f);
    }

    #[test]
    fn complemented_roots_and_terminals_roundtrip() {
        let mut m = BddManager::new();
        let f = sample(&mut m);
        let nf = m.not(f);
        let text = export_bdd(&m, nf, "neg");
        let mut m2 = BddManager::new();
        let (g, _) = import_bdd(&mut m2, &text).unwrap();
        assert_eq!(m.sat_count(nf), m2.sat_count(g));

        for (k, name) in [(Bdd::ONE, "one"), (Bdd::ZERO, "zero")] {
            let text = export_bdd(&m, k, name);
            let mut fresh = BddManager::new();
            let (g, back) = import_bdd(&mut fresh, &text).unwrap();
            assert_eq!(g, k);
            assert_eq!(back, name);
        }
    }

    #[test]
    fn import_into_shared_manager_reuses_structure() {
        let mut m = BddManager::new();
        let f = sample(&mut m);
        let text = export_bdd(&m, f, "shared");
        let live_before = m.live_node_count();
        let (g, _) = import_bdd(&mut m, &text).unwrap();
        assert_eq!(g, f, "hash consing must find the existing function");
        assert_eq!(m.live_node_count(), live_before);
    }

    #[test]
    fn conflicting_variable_order_is_an_error() {
        let mut m = BddManager::new();
        let f = sample(&mut m); // declares a, b, c
        let text = export_bdd(&m, f, "ordered");
        let mut other = BddManager::new();
        other.var("c"); // c before a/b conflicts with the document order
        let err = import_bdd(&mut other, &text).unwrap_err();
        assert!(matches!(err, BddStoreError::Parse { .. }), "{err}");
    }

    #[test]
    fn malformed_documents_are_structured_errors() {
        let mut m = BddManager::new();
        let f = sample(&mut m);
        let good = export_bdd(&m, f, "target");
        // Truncation at every line boundary.
        let lines: Vec<&str> = good.lines().collect();
        for cut in 0..lines.len() {
            let partial = lines[..cut].join("\n");
            let mut fresh = BddManager::new();
            assert!(
                import_bdd(&mut fresh, &partial).is_err(),
                "truncation after {cut} lines must fail"
            );
        }
        // Assorted corruptions.
        let cases = [
            good.replace(".ver msatpg-dddmp-1", ".ver msatpg-dddmp-9"),
            good.replace(".nnodes", ".nnodes x"),
            good.replace(".node 1 ", ".node 7 "),
            good.replace(".node 1 ", ".node one "),
            good.replace(".root ", ".root 999"),
            format!("{good}.node 9 9 T T\n"),
        ];
        for (i, bad) in cases.iter().enumerate() {
            let mut fresh = BddManager::new();
            let err = import_bdd(&mut fresh, bad);
            assert!(
                matches!(err, Err(BddStoreError::Parse { .. })),
                "case {i} must be a parse error, got {err:?}"
            );
        }
    }

    #[test]
    fn complemented_high_edge_is_rejected() {
        // Hand-written document with a `-T` high edge.
        let text = "\
.ver msatpg-dddmp-1
.bdd broken
.nvars 1
.var a
.nnodes 1
.root 1
.node 1 0 T -T
.end
";
        let mut m = BddManager::new();
        let err = import_bdd(&mut m, text).unwrap_err();
        assert!(format!("{err}").contains("canonical"), "{err}");
    }

    #[test]
    fn variable_order_violation_in_nodes_is_rejected() {
        let text = "\
.ver msatpg-dddmp-1
.bdd cyclic
.nvars 2
.var a
.var b
.nnodes 2
.root 1
.node 1 1 -T 2
.node 2 0 T 1
.end
";
        let mut m = BddManager::new();
        let err = import_bdd(&mut m, text).unwrap_err();
        assert!(
            format!("{err}").contains("order must strictly increase"),
            "{err}"
        );
    }

    #[test]
    fn error_source_chains_to_bdd_error() {
        use crate::budget::BddBudget;
        use std::error::Error as _;
        let mut m = BddManager::new();
        let mut f = m.one();
        for i in 0..8 {
            let v = m.var(&format!("v{i}"));
            f = m.xor(f, v);
        }
        let text = export_bdd(&m, f, "big");
        let mut tiny = BddManager::new();
        tiny.set_budget(BddBudget::UNLIMITED.with_max_steps(1));
        let err = import_bdd(&mut tiny, &text).unwrap_err();
        assert!(matches!(err, BddStoreError::Bdd(_)), "{err:?}");
        assert!(err.source().is_some(), "source() must expose the BddError");
    }
}
