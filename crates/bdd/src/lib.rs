//! Ordered binary decision diagrams (OBDDs) for the mixed-signal ATPG.
//!
//! This crate provides the reduced, ordered BDD package that the
//! backtrack-free test generator of Ayari, BenHamida & Kaminska (DATE 1995)
//! relies on.  The central type is [`BddManager`], a hash-consing node store
//! with memoized `apply`/`ite` operations, cofactoring, quantification,
//! Boolean difference and satisfying-assignment enumeration.
//!
//! # Engine
//!
//! The manager follows the arena layout of modern BDD packages
//! (rsdd, OBDDimal):
//!
//! * nodes live in a contiguous arena indexed by the `u32` inside [`Bdd`]
//!   — child traversal is an array access, and handles stay valid for the
//!   manager's lifetime (no garbage collection);
//! * hash consing goes through an open-addressed, linear-probed unique
//!   table keyed by an FNV-1a hash of `(var, low, high)` — `mk_node` is one
//!   probe with no heap allocation and no cryptographic hashing;
//! * `apply`/`ite` memoization uses fixed-size, direct-mapped **lossy**
//!   caches: a collision overwrites the resident entry, bounding cache
//!   memory for arbitrarily long runs while keeping hit rates high for the
//!   clustered access patterns of BDD recursion.  [`BddManager::stats`]
//!   reports occupancy and hit/miss counters ([`CacheStats`]), and
//!   [`BddManager::clear_caches`] / [`BddManager::reset_cache_stats`] give
//!   long ATPG campaigns explicit control points.
//!
//! Operations are `O(|f|·|g|)` as usual for reduced OBDDs; the overhaul
//! changes the constants, not the asymptotics (≈4× on the 24-bit
//! carry-chain build versus the previous `HashMap`-based engine — see
//! `BENCH_kernels.json` and the `bdd_ops` bench).
//!
//! # Example
//!
//! ```
//! use msatpg_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let a = m.var("a");
//! let b = m.var("b");
//! let f = m.and(a, b);
//! // Boolean difference with respect to `a`: df/da = f|a=0 XOR f|a=1 = b.
//! let diff = m.boolean_difference(f, m.var_index("a").unwrap());
//! assert_eq!(diff, b);
//! ```
//!
//! The terminals are exposed as [`BddManager::zero`] and [`BddManager::one`];
//! every other node is created through the manager and is automatically
//! reduced (no duplicate nodes, no redundant tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod dot;
mod expr;
mod manager;
mod node;

pub use cube::{Assignment, Cube, CubeIter};
pub use dot::{to_dot, to_text_tree};
pub use expr::Expr;
pub use manager::{BddManager, BddStats, CacheStats};
pub use node::{Bdd, VarId};
