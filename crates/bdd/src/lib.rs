//! Ordered binary decision diagrams (OBDDs) for the mixed-signal ATPG.
//!
//! This crate provides the reduced, ordered BDD package that the
//! backtrack-free test generator of Ayari, BenHamida & Kaminska (DATE 1995)
//! relies on.  The central type is [`BddManager`], a hash-consing node store
//! with memoized `apply`/`ite` operations, cofactoring, quantification,
//! Boolean difference and satisfying-assignment enumeration.
//!
//! # Engine
//!
//! The manager follows the arena layout of modern BDD packages
//! (rsdd, OBDDimal, CUDD), with two memory-focused additions:
//!
//! * **complement edges** — a [`Bdd`] handle is a tagged pointer whose low
//!   bit negates the referenced function.  Only one polarity of each
//!   function is stored (the high edge of a node is never complemented),
//!   so `f` and `!f` share every node, [`BddManager::not`] is an O(1) bit
//!   flip, and the unique-table population of negation-heavy constraint
//!   builds roughly halves (measured in the `bdd_memory` section of
//!   `BENCH_kernels.json`);
//! * **node-level garbage collection** — long-lived functions are
//!   registered as counted roots ([`BddManager::protect`] /
//!   [`BddManager::unprotect`]); [`BddManager::gc`] mark-and-sweeps
//!   everything unreachable onto a free list, rebuilds the open-addressed
//!   unique table and invalidates the lossy operation caches.  Live
//!   handles are never renumbered, so cube enumeration, DOT export and
//!   every `TestPlan` built on top are byte-identical with collection on
//!   or off.  A watermark armed via [`BddManager::set_auto_gc`] triggers
//!   collection automatically at operation entry;
//! * **dynamic variable reordering** — the global order is a permutation
//!   (`var` ↔ level) maintained beside the arena, so [`VarId`]s are never
//!   renumbered.  Adjacent-level swap ([`BddManager::try_swap_adjacent`])
//!   rewrites the affected nodes in place (handles stay valid) and
//!   sifting ([`BddManager::try_sift`]) walks every variable to a locally
//!   optimal level under a growth cap, governed by the same budget and
//!   cancellation machinery.  A [`DvoSchedule`] armed via
//!   [`BddManager::set_dvo`] reorders automatically at the auto-GC safe
//!   points; see [`reorder`] for the swap mechanics on complement edges;
//!
//! and the performance plumbing carried over from the arena overhaul:
//!
//! * nodes live in a contiguous arena indexed by [`Bdd::index`] — child
//!   traversal is an array access;
//! * hash consing goes through an open-addressed, linear-probed unique
//!   table keyed by an FNV-1a hash of `(var, low, high)` — `mk_node` is one
//!   probe with no heap allocation and no cryptographic hashing;
//! * `apply`/`ite` memoization uses fixed-size, direct-mapped **lossy**
//!   caches: a collision overwrites the resident entry, bounding cache
//!   memory for arbitrarily long runs.  [`BddManager::stats`] reports
//!   occupancy, hit/miss counters ([`CacheStats`]) and the GC counters
//!   (peak live nodes, reclaim totals).
//!
//! Operations are `O(|f|·|g|)` as usual for reduced OBDDs; complement
//! edges change the constants (and `not` to O(1)), not the asymptotics —
//! see `BENCH_kernels.json` and the `bdd_ops` bench.
//!
//! # Resource governance
//!
//! Symbolic blow-up is survivable: a [`BddBudget`] caps the live node
//! count and/or the number of apply steps, and an external
//! `CancelToken` (from `msatpg-exec`, attached via
//! [`BddManager::set_cancel_token`]) imposes deadlines and shared step
//! quotas.  The fallible `try_*` operation variants ([`BddManager::try_and`],
//! [`BddManager::try_ite`], …) return a structured [`BddError`] —
//! `NodeBudgetExceeded`, `StepBudgetExceeded` or `Cancelled`, each carrying
//! the limit and the observed value — instead of panicking or growing
//! without bound.  The manager stays fully usable after any such error:
//! call [`BddManager::gc`] and [`BddManager::reset_steps`] to return to the
//! protected baseline and retry or move on.  The infallible API is
//! unchanged for ungoverned clients ([`BddBudget::UNLIMITED`] is the
//! default).
//!
//! # Example
//!
//! ```
//! use msatpg_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let a = m.var("a");
//! let b = m.var("b");
//! let f = m.and(a, b);
//! // Boolean difference with respect to `a`: df/da = f|a=0 XOR f|a=1 = b.
//! let diff = m.boolean_difference(f, m.var_index("a").unwrap());
//! assert_eq!(diff, b);
//!
//! // Negation is free, and only one polarity is ever stored.
//! let nf = m.not(f);
//! assert_eq!(m.size(f), m.size(nf));
//!
//! // Reclaim everything not reachable from a protected root.
//! m.protect(f);
//! let report = m.gc();
//! assert_eq!(report.live_after, m.size(f));
//! ```
//!
//! The terminals are exposed as [`BddManager::zero`] and [`BddManager::one`];
//! every other node is created through the manager and is automatically
//! reduced (no duplicate nodes, no redundant tests, one polarity per
//! function).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
mod cube;
mod dot;
mod expr;
mod manager;
mod node;
pub mod reorder;
pub mod store;

pub use budget::{BddBudget, BddError};
pub use cube::{Assignment, Cube, CubeIter};
pub use dot::{to_dot, to_text_tree};
pub use expr::Expr;
pub use manager::{BddManager, BddStats, CacheStats, GcReport};
pub use node::{Bdd, VarId};
pub use reorder::{DvoSchedule, SiftReport};
pub use store::{export_bdd, import_bdd, BddStoreError};
