//! Ordered binary decision diagrams (OBDDs) for the mixed-signal ATPG.
//!
//! This crate provides the reduced, ordered BDD package that the
//! backtrack-free test generator of Ayari, BenHamida & Kaminska (DATE 1995)
//! relies on.  The central type is [`BddManager`], a hash-consing node store
//! with memoized `apply`/`ite` operations, cofactoring, quantification,
//! Boolean difference and satisfying-assignment enumeration.
//!
//! # Example
//!
//! ```
//! use msatpg_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let a = m.var("a");
//! let b = m.var("b");
//! let f = m.and(a, b);
//! // Boolean difference with respect to `a`: df/da = f|a=0 XOR f|a=1 = b.
//! let diff = m.boolean_difference(f, m.var_index("a").unwrap());
//! assert_eq!(diff, b);
//! ```
//!
//! The terminals are exposed as [`BddManager::zero`] and [`BddManager::one`];
//! every other node is created through the manager and is automatically
//! reduced (no duplicate nodes, no redundant tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod dot;
mod expr;
mod manager;
mod node;

pub use cube::{Assignment, Cube, CubeIter};
pub use dot::{to_dot, to_text_tree};
pub use expr::Expr;
pub use manager::{BddManager, BddStats};
pub use node::{Bdd, VarId};
