//! The BDD manager: arena node store, open-addressed unique table and
//! fixed-size lossy operation caches.
//!
//! ## Engine layout
//!
//! * **Node arena** — every internal node lives in one contiguous
//!   `Vec<Node>` indexed by the `u32` inside [`Bdd`]; indices 0 and 1 are
//!   the terminals.  Child lookups are a single bounds-checked array access,
//!   and the arena is never garbage-collected, so `Bdd` handles stay valid
//!   for the manager's lifetime.
//! * **Unique table** — hash consing uses an open-addressed,
//!   linear-probed table of node indices keyed by an FNV-1a hash of
//!   `(var, low, high)` (rsdd/OBDDimal style) instead of a SipHash
//!   `HashMap<Node, Bdd>`: no per-entry heap boxes, no DoS-resistant (slow)
//!   hashing, and resizing rehashes plain `u32`s.
//! * **Apply / ITE caches** — memoization uses direct-mapped, fixed-size
//!   lossy caches: a colliding entry simply overwrites the previous one.
//!   This bounds cache memory for arbitrarily long ATPG runs (the unbounded
//!   `HashMap` caches of the previous engine grew monotonically) while
//!   keeping the hit rate high for the clustered access patterns of
//!   `apply`/`ite` recursions.  Hit/miss counters are exposed through
//!   [`BddManager::stats`] and the caches can be reset with
//!   [`BddManager::clear_caches`].

use std::collections::HashMap;
use std::fmt;

use crate::cube::{Assignment, Cube, CubeIter};
use crate::node::{Bdd, Node, VarId};

/// Binary operation codes used as keys of the apply cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    And,
    Or,
    Xor,
}

/// log2 of the number of slots in the apply cache.
const APPLY_CACHE_BITS: usize = 14;
/// log2 of the number of slots in the ITE cache.
const ITE_CACHE_BITS: usize = 14;
/// Initial capacity (slots) of the unique table; always a power of two.
const UNIQUE_INITIAL_SLOTS: usize = 1 << 10;
/// Sentinel marking an empty cache slot / unique-table slot.
const EMPTY: u32 = u32::MAX;

/// FNV-1a over a few words, with a final avalanche so the low bits (used to
/// index power-of-two tables) depend on every input bit.
#[inline]
fn fnv_mix(words: [u32; 3]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        h ^= u64::from(w);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 29;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^ (h >> 32)
}

/// Hit/miss counters of one memoization cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of cache probes.
    pub lookups: u64,
    /// Number of probes that returned a previously computed result.
    pub hits: u64,
}

impl CacheStats {
    /// Number of probes that missed.
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Fraction of lookups served from the cache (`0.0` when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Statistics about the state of a [`BddManager`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BddStats {
    /// Number of live internal nodes (excluding the two terminals).
    pub node_count: usize,
    /// Number of declared variables.
    pub var_count: usize,
    /// Number of entries currently stored in the apply and ITE caches.
    pub cache_entries: usize,
    /// Total slot capacity of the apply and ITE caches (fixed).
    pub cache_capacity: usize,
    /// Slot capacity of the unique (hash-consing) table.
    pub unique_capacity: usize,
    /// Apply-cache hit/miss counters.
    pub apply_cache: CacheStats,
    /// ITE-cache hit/miss counters.
    pub ite_cache: CacheStats,
}

impl fmt::Display for BddStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} variables, {}/{} cached results (apply {:.0}% / ite {:.0}% hits)",
            self.node_count,
            self.var_count,
            self.cache_entries,
            self.cache_capacity,
            self.apply_cache.hit_rate() * 100.0,
            self.ite_cache.hit_rate() * 100.0,
        )
    }
}

/// One slot of the direct-mapped apply cache.
#[derive(Clone, Copy)]
struct ApplyEntry {
    f: u32,
    g: u32,
    op: u8,
    result: u32,
}

const APPLY_EMPTY: ApplyEntry = ApplyEntry {
    f: EMPTY,
    g: EMPTY,
    op: u8::MAX,
    result: EMPTY,
};

/// One slot of the direct-mapped ITE cache.
#[derive(Clone, Copy)]
struct IteEntry {
    f: u32,
    g: u32,
    h: u32,
    result: u32,
}

const ITE_EMPTY: IteEntry = IteEntry {
    f: EMPTY,
    g: EMPTY,
    h: EMPTY,
    result: EMPTY,
};

/// Open-addressed, linear-probed hash-consing table mapping node contents to
/// their arena index.
#[derive(Clone)]
struct UniqueTable {
    /// Node indices; `EMPTY` marks a vacant slot.  Length is a power of two.
    slots: Vec<u32>,
    len: usize,
}

impl UniqueTable {
    fn new() -> Self {
        UniqueTable {
            slots: vec![EMPTY; UNIQUE_INITIAL_SLOTS],
            len: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Finds the node `(var, low, high)` in the table, or the vacant slot
    /// where it belongs.  Returns `Ok(node_index)` or `Err(slot_index)`.
    #[inline]
    fn probe(&self, nodes: &[Node], var: VarId, low: Bdd, high: Bdd) -> Result<u32, usize> {
        let mask = self.mask();
        let mut slot = fnv_mix([var, low.0, high.0]) as usize & mask;
        loop {
            let idx = self.slots[slot];
            if idx == EMPTY {
                return Err(slot);
            }
            let node = &nodes[idx as usize];
            if node.var == var && node.low == low && node.high == high {
                return Ok(idx);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Inserts a node index at a vacant slot previously returned by
    /// [`UniqueTable::probe`], growing (and rehashing) at 75 % load.
    fn insert(&mut self, nodes: &[Node], slot: usize, idx: u32) {
        self.slots[slot] = idx;
        self.len += 1;
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow(nodes);
        }
    }

    fn grow(&mut self, nodes: &[Node]) {
        let new_cap = self.slots.len() * 2;
        let mut new_slots = vec![EMPTY; new_cap];
        let mask = new_cap - 1;
        for &idx in self.slots.iter().filter(|&&i| i != EMPTY) {
            let node = &nodes[idx as usize];
            let mut slot = fnv_mix([node.var, node.low.0, node.high.0]) as usize & mask;
            while new_slots[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            new_slots[slot] = idx;
        }
        self.slots = new_slots;
    }
}

/// A reduced ordered BDD node store with memoized Boolean operations.
///
/// All [`Bdd`] references handed out by a manager stay valid for the
/// manager's lifetime; the manager never garbage-collects nodes.  Variables
/// are declared with [`BddManager::var`] (by name) or
/// [`BddManager::new_var`], and their declaration order is the global
/// variable ordering.
///
/// # Example
///
/// ```
/// use msatpg_bdd::BddManager;
///
/// let mut m = BddManager::new();
/// let x = m.var("x");
/// let y = m.var("y");
/// let f = m.or(x, y);
/// let g = m.not(f);
/// let h = m.nor(x, y);
/// assert_eq!(g, h); // canonical representation
/// ```
#[derive(Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: UniqueTable,
    apply_cache: Vec<ApplyEntry>,
    ite_cache: Vec<IteEntry>,
    apply_stats: CacheStats,
    ite_stats: CacheStats,
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("nodes", &self.nodes.len())
            .field("vars", &self.names.len())
            .finish()
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager containing only the two terminal nodes.
    pub fn new() -> Self {
        let terminal = Node {
            var: VarId::MAX,
            low: Bdd::ZERO,
            high: Bdd::ONE,
        };
        // Index 0 and 1 are reserved for the terminals; their stored contents
        // are never inspected, but the arena slots must exist.
        BddManager {
            nodes: vec![terminal, terminal],
            unique: UniqueTable::new(),
            apply_cache: vec![APPLY_EMPTY; 1 << APPLY_CACHE_BITS],
            ite_cache: vec![ITE_EMPTY; 1 << ITE_CACHE_BITS],
            apply_stats: CacheStats::default(),
            ite_stats: CacheStats::default(),
            names: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The constant-false function.
    #[inline]
    pub fn zero(&self) -> Bdd {
        Bdd::ZERO
    }

    /// The constant-true function.
    #[inline]
    pub fn one(&self) -> Bdd {
        Bdd::ONE
    }

    /// Converts a `bool` into the corresponding terminal.
    #[inline]
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::ONE
        } else {
            Bdd::ZERO
        }
    }

    /// Number of declared variables.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.names.len()
    }

    /// Returns statistics about the manager, including cache hit rates.
    pub fn stats(&self) -> BddStats {
        let apply_entries = self.apply_cache.iter().filter(|e| e.op != u8::MAX).count();
        let ite_entries = self.ite_cache.iter().filter(|e| e.f != EMPTY).count();
        BddStats {
            node_count: self.nodes.len().saturating_sub(2),
            var_count: self.names.len(),
            cache_entries: apply_entries + ite_entries,
            cache_capacity: self.apply_cache.len() + self.ite_cache.len(),
            unique_capacity: self.unique.slots.len(),
            apply_cache: self.apply_stats,
            ite_cache: self.ite_stats,
        }
    }

    /// Empties the apply and ITE caches (the node arena and unique table are
    /// untouched, so every existing [`Bdd`] stays valid).  Long ATPG runs
    /// can call this between targets; with the fixed-size lossy caches it
    /// mainly serves to drop stale entries and restart hit-rate measurement
    /// via [`BddManager::reset_cache_stats`].
    pub fn clear_caches(&mut self) {
        self.apply_cache.fill(APPLY_EMPTY);
        self.ite_cache.fill(ITE_EMPTY);
    }

    /// Resets the cache hit/miss counters to zero.
    pub fn reset_cache_stats(&mut self) {
        self.apply_stats = CacheStats::default();
        self.ite_stats = CacheStats::default();
    }

    /// Declares a new variable with an auto-generated name and returns the
    /// BDD of its positive literal.
    pub fn new_var(&mut self) -> Bdd {
        let name = format!("v{}", self.names.len());
        self.var(&name)
    }

    /// Returns the positive literal of the named variable, declaring the
    /// variable if it does not exist yet.
    ///
    /// Variables are ordered by declaration order.
    pub fn var(&mut self, name: &str) -> Bdd {
        let id = self.var_id(name);
        self.literal(id, true)
    }

    /// Returns (declaring if necessary) the [`VarId`] of the named variable.
    pub fn var_id(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as VarId;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a variable id by name without declaring it.
    pub fn var_index(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Name of a declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not declared by this manager.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var as usize]
    }

    /// Names of all declared variables in ordering position.
    pub fn var_names(&self) -> &[String] {
        &self.names
    }

    /// Returns the literal `var` (if `positive`) or `!var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` has not been declared.
    pub fn literal(&mut self, var: VarId, positive: bool) -> Bdd {
        assert!(
            (var as usize) < self.names.len(),
            "literal of undeclared variable {var}"
        );
        if positive {
            self.mk_node(var, Bdd::ZERO, Bdd::ONE)
        } else {
            self.mk_node(var, Bdd::ONE, Bdd::ZERO)
        }
    }

    /// Level (ordering position) of the root variable of `f`, or `VarId::MAX`
    /// for terminals.
    #[inline]
    pub fn root_var(&self, f: Bdd) -> VarId {
        if f.is_terminal() {
            VarId::MAX
        } else {
            self.nodes[f.0 as usize].var
        }
    }

    /// Low (else) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn low(&self, f: Bdd) -> Bdd {
        assert!(!f.is_terminal(), "terminal nodes have no children");
        self.nodes[f.0 as usize].low
    }

    /// High (then) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn high(&self, f: Bdd) -> Bdd {
        assert!(!f.is_terminal(), "terminal nodes have no children");
        self.nodes[f.0 as usize].high
    }

    fn mk_node(&mut self, var: VarId, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        match self.unique.probe(&self.nodes, var, low, high) {
            Ok(idx) => Bdd(idx),
            Err(slot) => {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node { var, low, high });
                self.unique.insert(&self.nodes, slot, idx);
                Bdd(idx)
            }
        }
    }

    // ------------------------------------------------------------------
    // Boolean operations
    // ------------------------------------------------------------------

    /// Logical negation of `f`.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd::ZERO, Bdd::ONE)
    }

    /// Logical conjunction `f AND g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::And, f, g)
    }

    /// Logical disjunction `f OR g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or `f XOR g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Xor, f, g)
    }

    /// `NOT (f AND g)`.
    pub fn nand(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let t = self.and(f, g);
        self.not(t)
    }

    /// `NOT (f OR g)`.
    pub fn nor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let t = self.or(f, g);
        self.not(t)
    }

    /// `NOT (f XOR g)` (logical equivalence).
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let t = self.xor(f, g);
        self.not(t)
    }

    /// Logical implication `f -> g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Conjunction of an iterator of functions (`one()` for an empty input).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = Bdd::ONE;
        for f in fs {
            acc = self.and(acc, f);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }

    /// Disjunction of an iterator of functions (`zero()` for an empty input).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = Bdd::ZERO;
        for f in fs {
            acc = self.or(acc, f);
            if acc.is_one() {
                break;
            }
        }
        acc
    }

    /// If-then-else: `(f AND g) OR (NOT f AND h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f.is_one() {
            return g;
        }
        if f.is_zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        let slot = (fnv_mix([f.0, g.0, h.0]) as usize) & (self.ite_cache.len() - 1);
        self.ite_stats.lookups += 1;
        let entry = self.ite_cache[slot];
        if entry.f == f.0 && entry.g == g.0 && entry.h == h.0 {
            self.ite_stats.hits += 1;
            return Bdd(entry.result);
        }
        let top = self.root_var(f).min(self.root_var(g)).min(self.root_var(h));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let result = self.mk_node(top, low, high);
        // Direct-mapped and lossy: colliding keys overwrite each other.
        self.ite_cache[slot] = IteEntry {
            f: f.0,
            g: g.0,
            h: h.0,
            result: result.0,
        };
        result
    }

    fn cofactors_at(&self, f: Bdd, var: VarId) -> (Bdd, Bdd) {
        if f.is_terminal() || self.root_var(f) != var {
            (f, f)
        } else {
            let n = self.nodes[f.0 as usize];
            (n.low, n.high)
        }
    }

    fn apply(&mut self, op: Op, f: Bdd, g: Bdd) -> Bdd {
        // Terminal short-circuits.
        match op {
            Op::And => {
                if f.is_zero() || g.is_zero() {
                    return Bdd::ZERO;
                }
                if f.is_one() {
                    return g;
                }
                if g.is_one() {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            Op::Or => {
                if f.is_one() || g.is_one() {
                    return Bdd::ONE;
                }
                if f.is_zero() {
                    return g;
                }
                if g.is_zero() {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            Op::Xor => {
                if f == g {
                    return Bdd::ZERO;
                }
                if f.is_zero() {
                    return g;
                }
                if g.is_zero() {
                    return f;
                }
            }
        }
        // Commutative: normalize operand order for better cache hit rate.
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let op_code = op as u8;
        let slot =
            (fnv_mix([f.0, g.0, u32::from(op_code)]) as usize) & (self.apply_cache.len() - 1);
        self.apply_stats.lookups += 1;
        let entry = self.apply_cache[slot];
        if entry.f == f.0 && entry.g == g.0 && entry.op == op_code {
            self.apply_stats.hits += 1;
            return Bdd(entry.result);
        }
        let top = self.root_var(f).min(self.root_var(g));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let low = self.apply(op, f0, g0);
        let high = self.apply(op, f1, g1);
        let result = self.mk_node(top, low, high);
        // Direct-mapped and lossy: colliding keys overwrite each other.
        self.apply_cache[slot] = ApplyEntry {
            f: f.0,
            g: g.0,
            op: op_code,
            result: result.0,
        };
        result
    }

    // ------------------------------------------------------------------
    // Cofactors, composition, quantification
    // ------------------------------------------------------------------

    /// Restriction (cofactor) of `f` with variable `var` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, var: VarId, value: bool) -> Bdd {
        if f.is_terminal() {
            return f;
        }
        let node = self.nodes[f.0 as usize];
        if node.var > var {
            return f;
        }
        if node.var == var {
            return if value { node.high } else { node.low };
        }
        let low = self.restrict(node.low, var, value);
        let high = self.restrict(node.high, var, value);
        self.mk_node(node.var, low, high)
    }

    /// Restriction of `f` under a partial assignment.
    pub fn restrict_all(&mut self, f: Bdd, assignment: &Assignment) -> Bdd {
        let mut acc = f;
        for (var, value) in assignment.iter() {
            acc = self.restrict(acc, var, value);
        }
        acc
    }

    /// Functional composition: substitute function `g` for variable `var` in
    /// `f`, i.e. `f[var := g]`.
    pub fn compose(&mut self, f: Bdd, var: VarId, g: Bdd) -> Bdd {
        let f1 = self.restrict(f, var, true);
        let f0 = self.restrict(f, var, false);
        self.ite(g, f1, f0)
    }

    /// Existential quantification over `var`: `f|var=0 OR f|var=1`.
    pub fn exists(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.or(f0, f1)
    }

    /// Universal quantification over `var`: `f|var=0 AND f|var=1`.
    pub fn forall(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.and(f0, f1)
    }

    /// Existential quantification over a set of variables.
    pub fn exists_all(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        let mut acc = f;
        for &v in vars {
            acc = self.exists(acc, v);
        }
        acc
    }

    /// Boolean difference of `f` with respect to `var`:
    /// `df/dvar = f|var=0 XOR f|var=1`.
    ///
    /// The Boolean difference is `1` exactly for the input combinations under
    /// which the value of `var` is observable at `f` — the propagation
    /// condition used by the BDD-based test generator.
    pub fn boolean_difference(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.xor(f0, f1)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Evaluates `f` under a total assignment (missing variables default to
    /// `false`).
    pub fn eval(&self, f: Bdd, assignment: &Assignment) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let node = self.nodes[cur.0 as usize];
            let value = assignment.get(node.var).unwrap_or(false);
            cur = if value { node.high } else { node.low };
        }
        cur.is_one()
    }

    /// Returns `true` if `f` contains a test of variable `var`.
    pub fn depends_on(&self, f: Bdd, var: VarId) -> bool {
        self.support(f).contains(&var)
    }

    /// Set of variables tested anywhere inside `f`, in ordering position.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n.0 as usize];
            vars.insert(node.var);
            stack.push(node.low);
            stack.push(node.high);
        }
        vars.into_iter().collect()
    }

    /// Number of internal nodes reachable from `f` (the BDD's size).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0usize;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.nodes[n.0 as usize];
            stack.push(node.low);
            stack.push(node.high);
        }
        count
    }

    /// Finds one satisfying assignment of `f`, or `None` if `f` is
    /// unsatisfiable.  Variables not mentioned in the returned [`Cube`] are
    /// don't-cares.
    pub fn sat_one(&self, f: Bdd) -> Option<Cube> {
        if f.is_zero() {
            return None;
        }
        let mut cube = Cube::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let node = self.nodes[cur.0 as usize];
            if !node.high.is_zero() {
                cube.set(node.var, true);
                cur = node.high;
            } else {
                cube.set(node.var, false);
                cur = node.low;
            }
        }
        Some(cube)
    }

    /// Counts satisfying assignments of `f` over the full set of declared
    /// variables.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        let n = self.var_count() as u32;
        let mut memo: HashMap<Bdd, u128> = HashMap::new();
        self.sat_count_rec(f, 0, n, &mut memo)
    }

    fn sat_count_rec(
        &self,
        f: Bdd,
        from_level: u32,
        total_vars: u32,
        memo: &mut HashMap<Bdd, u128>,
    ) -> u128 {
        // Number of assignments below `f` assuming its root is at
        // `from_level`.
        let level = if f.is_terminal() {
            total_vars
        } else {
            self.nodes[f.0 as usize].var
        };
        let skipped = (level - from_level) as u32;
        let base = if f.is_zero() {
            0
        } else if f.is_one() {
            1
        } else if let Some(&c) = memo.get(&f) {
            c
        } else {
            let node = self.nodes[f.0 as usize];
            let low = self.sat_count_rec(node.low, node.var + 1, total_vars, memo);
            let high = self.sat_count_rec(node.high, node.var + 1, total_vars, memo);
            let c = low + high;
            memo.insert(f, c);
            c
        };
        base << skipped
    }

    /// Iterator over the prime-free cube cover of `f` (one cube per path from
    /// the root to the `1` terminal).
    pub fn cubes(&self, f: Bdd) -> CubeIter<'_> {
        CubeIter::new(self, f)
    }

    pub(crate) fn node(&self, f: Bdd) -> Node {
        self.nodes[f.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_vars(m: &mut BddManager) -> (Bdd, Bdd, Bdd) {
        (m.var("a"), m.var("b"), m.var("c"))
    }

    #[test]
    fn constants_and_literals() {
        let mut m = BddManager::new();
        assert!(m.zero().is_zero());
        assert!(m.one().is_one());
        assert_eq!(m.constant(true), m.one());
        assert_eq!(m.constant(false), m.zero());
        let a = m.var("a");
        let not_a = m.not(a);
        let a_again = m.not(not_a);
        assert_eq!(a, a_again);
    }

    #[test]
    fn and_or_terminal_rules() {
        let mut m = BddManager::new();
        let (a, _, _) = three_vars(&mut m);
        assert_eq!(m.and(a, m.one()), a);
        assert_eq!(m.and(a, m.zero()), m.zero());
        assert_eq!(m.or(a, m.zero()), a);
        assert_eq!(m.or(a, m.one()), m.one());
        assert_eq!(m.xor(a, a), m.zero());
        assert_eq!(m.xor(a, m.zero()), a);
    }

    #[test]
    fn de_morgan() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let lhs = {
            let ab = m.and(a, b);
            m.not(ab)
        };
        let rhs = {
            let na = m.not(a);
            let nb = m.not(b);
            m.or(na, nb)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_matches_definition() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let ite = m.ite(a, b, c);
        let expected = {
            let ab = m.and(a, b);
            let na = m.not(a);
            let nac = m.and(na, c);
            m.or(ab, nac)
        };
        assert_eq!(ite, expected);
    }

    #[test]
    fn restrict_and_compose() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let va = m.var_index("a").unwrap();
        let f_a1 = m.restrict(f, va, true);
        let expected = m.or(b, c);
        assert_eq!(f_a1, expected);
        let f_a0 = m.restrict(f, va, false);
        assert_eq!(f_a0, c);
        // compose a := c  gives (c AND b) OR c = c OR (b AND c) = c... careful:
        let composed = m.compose(f, va, c);
        let expect2 = {
            let cb = m.and(c, b);
            m.or(cb, c)
        };
        assert_eq!(composed, expect2);
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let f = m.and(a, b);
        let va = m.var_index("a").unwrap();
        assert_eq!(m.exists(f, va), b);
        assert_eq!(m.forall(f, va), m.zero());
        let g = m.or(a, b);
        assert_eq!(m.exists(g, va), m.one());
        assert_eq!(m.forall(g, va), b);
    }

    #[test]
    fn boolean_difference_detects_observability() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        // f = (a AND b) OR c : a is observable iff b=1 AND c=0.
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let va = m.var_index("a").unwrap();
        let diff = m.boolean_difference(f, va);
        let expected = {
            let nc = m.not(c);
            m.and(b, nc)
        };
        assert_eq!(diff, expected);
    }

    #[test]
    fn eval_and_sat() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let mut asg = Assignment::new();
        asg.set(0, true);
        asg.set(1, true);
        asg.set(2, false);
        assert!(m.eval(f, &asg));
        asg.set(1, false);
        assert!(!m.eval(f, &asg));
        let cube = m.sat_one(f).expect("satisfiable");
        let full = cube.to_assignment();
        assert!(m.eval(f, &full));
        assert_eq!(m.sat_one(m.zero()), None);
    }

    #[test]
    fn sat_count_small_function() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        // Truth table over 3 variables: (a&b)|c has 5 minterms.
        assert_eq!(m.sat_count(f), 5);
        assert_eq!(m.sat_count(m.one()), 8);
        assert_eq!(m.sat_count(m.zero()), 0);
    }

    #[test]
    fn support_and_size() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let _ = c;
        let f = m.and(a, b);
        assert_eq!(m.support(f), vec![0, 1]);
        assert_eq!(m.size(f), 2);
        assert_eq!(m.size(m.one()), 0);
        assert!(m.depends_on(f, 0));
        assert!(!m.depends_on(f, 2));
    }

    #[test]
    fn canonical_equality_of_equivalent_formulas() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        // (a XOR b) XOR c is associative/commutative.
        let l = {
            let ab = m.xor(a, b);
            m.xor(ab, c)
        };
        let r = {
            let bc = m.xor(b, c);
            m.xor(a, bc)
        };
        assert_eq!(l, r);
    }

    #[test]
    fn stats_reports_nodes() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let _f = m.and(a, b);
        let stats = m.stats();
        assert!(stats.node_count >= 3);
        assert_eq!(stats.var_count, 3);
        assert!(format!("{stats}").contains("nodes"));
    }

    #[test]
    fn cache_stats_are_consistent_after_mixed_workload() {
        // Build a 12-bit adder carry chain, negate, quantify, count — a mix
        // of apply, ite and restrict traffic — then check the counters are
        // coherent with one another and with a cache clear.
        let mut m = BddManager::new();
        let mut carry = m.zero();
        for i in 0..12 {
            let a = m.var(&format!("a{i}"));
            let b = m.var(&format!("b{i}"));
            let ab = m.and(a, b);
            let axb = m.xor(a, b);
            let ac = m.and(axb, carry);
            carry = m.or(ab, ac);
        }
        let not_carry = m.not(carry);
        let v0 = m.var_index("a0").unwrap();
        let _ = m.exists(carry, v0);
        let _ = m.boolean_difference(carry, v0);
        let stats = m.stats();
        // Counters are coherent.
        assert!(stats.apply_cache.lookups > 0);
        assert!(stats.apply_cache.hits <= stats.apply_cache.lookups);
        assert_eq!(
            stats.apply_cache.hits + stats.apply_cache.misses(),
            stats.apply_cache.lookups
        );
        assert!(stats.ite_cache.lookups > 0);
        assert!(stats.ite_cache.hits <= stats.ite_cache.lookups);
        assert!(stats.apply_cache.hit_rate() >= 0.0 && stats.apply_cache.hit_rate() <= 1.0);
        // Occupancy is bounded by the fixed capacity.
        assert!(stats.cache_entries > 0);
        assert!(stats.cache_entries <= stats.cache_capacity);
        // A recomputation after clearing produces the same canonical node
        // (clearing only drops memoized results, never nodes).
        m.clear_caches();
        assert_eq!(m.stats().cache_entries, 0);
        let recomputed = m.not(carry);
        assert_eq!(recomputed, not_carry);
        // Stats survive the clear; resetting zeroes them.
        assert!(m.stats().apply_cache.lookups >= stats.apply_cache.lookups);
        m.reset_cache_stats();
        assert_eq!(m.stats().apply_cache.lookups, 0);
        assert_eq!(m.stats().ite_cache.hits, 0);
    }

    #[test]
    fn unique_table_grows_and_stays_canonical() {
        // Create far more nodes than the initial unique-table capacity and
        // verify hash consing still deduplicates: rebuilding the same
        // function yields the identical handle.
        let mut m = BddManager::new();
        let mut acc = m.zero();
        for i in 0..2_000u32 {
            let v = m.var(&format!("x{}", i % 64));
            let k = m.constant(i % 3 == 0);
            let t = m.xor(v, k);
            acc = m.or(acc, t);
        }
        let stats = m.stats();
        assert!(stats.unique_capacity >= UNIQUE_INITIAL_SLOTS);
        let a = m.var("x1");
        let b = m.var("x2");
        let f1 = m.and(a, b);
        let f2 = m.and(a, b);
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn literal_of_undeclared_variable_panics() {
        let mut m = BddManager::new();
        let _ = m.literal(3, true);
    }
}
