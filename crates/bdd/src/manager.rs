//! The BDD manager: hash-consed node store and memoized operations.

use std::collections::HashMap;
use std::fmt;

use crate::cube::{Assignment, Cube, CubeIter};
use crate::node::{Bdd, Node, VarId};

/// Binary operation codes used as keys of the apply cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    And,
    Or,
    Xor,
}

/// Statistics about the state of a [`BddManager`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Number of live internal nodes (excluding the two terminals).
    pub node_count: usize,
    /// Number of declared variables.
    pub var_count: usize,
    /// Number of entries currently stored in the apply cache.
    pub cache_entries: usize,
}

impl fmt::Display for BddStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} variables, {} cached results",
            self.node_count, self.var_count, self.cache_entries
        )
    }
}

/// A reduced ordered BDD node store with memoized Boolean operations.
///
/// All [`Bdd`] references handed out by a manager stay valid for the
/// manager's lifetime; the manager never garbage-collects nodes.  Variables
/// are declared with [`BddManager::var`] (by name) or
/// [`BddManager::new_var`], and their declaration order is the global
/// variable ordering.
///
/// # Example
///
/// ```
/// use msatpg_bdd::BddManager;
///
/// let mut m = BddManager::new();
/// let x = m.var("x");
/// let y = m.var("y");
/// let f = m.or(x, y);
/// let g = m.not(f);
/// let h = m.nor(x, y);
/// assert_eq!(g, h); // canonical representation
/// ```
#[derive(Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    apply_cache: HashMap<(Op, Bdd, Bdd), Bdd>,
    ite_cache: HashMap<(Bdd, Bdd, Bdd), Bdd>,
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("nodes", &self.nodes.len())
            .field("vars", &self.names.len())
            .finish()
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager containing only the two terminal nodes.
    pub fn new() -> Self {
        let terminal = Node {
            var: VarId::MAX,
            low: Bdd::ZERO,
            high: Bdd::ONE,
        };
        // Index 0 and 1 are reserved for the terminals; their stored contents
        // are never inspected, but the vector slots must exist.
        BddManager {
            nodes: vec![terminal, terminal],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            ite_cache: HashMap::new(),
            names: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The constant-false function.
    #[inline]
    pub fn zero(&self) -> Bdd {
        Bdd::ZERO
    }

    /// The constant-true function.
    #[inline]
    pub fn one(&self) -> Bdd {
        Bdd::ONE
    }

    /// Converts a `bool` into the corresponding terminal.
    #[inline]
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::ONE
        } else {
            Bdd::ZERO
        }
    }

    /// Number of declared variables.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.names.len()
    }

    /// Returns statistics about the manager.
    pub fn stats(&self) -> BddStats {
        BddStats {
            node_count: self.nodes.len().saturating_sub(2),
            var_count: self.names.len(),
            cache_entries: self.apply_cache.len() + self.ite_cache.len(),
        }
    }

    /// Declares a new variable with an auto-generated name and returns the
    /// BDD of its positive literal.
    pub fn new_var(&mut self) -> Bdd {
        let name = format!("v{}", self.names.len());
        self.var(&name)
    }

    /// Returns the positive literal of the named variable, declaring the
    /// variable if it does not exist yet.
    ///
    /// Variables are ordered by declaration order.
    pub fn var(&mut self, name: &str) -> Bdd {
        let id = self.var_id(name);
        self.literal(id, true)
    }

    /// Returns (declaring if necessary) the [`VarId`] of the named variable.
    pub fn var_id(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as VarId;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a variable id by name without declaring it.
    pub fn var_index(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Name of a declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not declared by this manager.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var as usize]
    }

    /// Names of all declared variables in ordering position.
    pub fn var_names(&self) -> &[String] {
        &self.names
    }

    /// Returns the literal `var` (if `positive`) or `!var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` has not been declared.
    pub fn literal(&mut self, var: VarId, positive: bool) -> Bdd {
        assert!(
            (var as usize) < self.names.len(),
            "literal of undeclared variable {var}"
        );
        if positive {
            self.mk_node(var, Bdd::ZERO, Bdd::ONE)
        } else {
            self.mk_node(var, Bdd::ONE, Bdd::ZERO)
        }
    }

    /// Level (ordering position) of the root variable of `f`, or `VarId::MAX`
    /// for terminals.
    #[inline]
    pub fn root_var(&self, f: Bdd) -> VarId {
        if f.is_terminal() {
            VarId::MAX
        } else {
            self.nodes[f.0 as usize].var
        }
    }

    /// Low (else) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn low(&self, f: Bdd) -> Bdd {
        assert!(!f.is_terminal(), "terminal nodes have no children");
        self.nodes[f.0 as usize].low
    }

    /// High (then) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn high(&self, f: Bdd) -> Bdd {
        assert!(!f.is_terminal(), "terminal nodes have no children");
        self.nodes[f.0 as usize].high
    }

    fn mk_node(&mut self, var: VarId, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&existing) = self.unique.get(&node) {
            return existing;
        }
        let id = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    // ------------------------------------------------------------------
    // Boolean operations
    // ------------------------------------------------------------------

    /// Logical negation of `f`.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd::ZERO, Bdd::ONE)
    }

    /// Logical conjunction `f AND g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::And, f, g)
    }

    /// Logical disjunction `f OR g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or `f XOR g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Xor, f, g)
    }

    /// `NOT (f AND g)`.
    pub fn nand(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let t = self.and(f, g);
        self.not(t)
    }

    /// `NOT (f OR g)`.
    pub fn nor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let t = self.or(f, g);
        self.not(t)
    }

    /// `NOT (f XOR g)` (logical equivalence).
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let t = self.xor(f, g);
        self.not(t)
    }

    /// Logical implication `f -> g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Conjunction of an iterator of functions (`one()` for an empty input).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = Bdd::ONE;
        for f in fs {
            acc = self.and(acc, f);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }

    /// Disjunction of an iterator of functions (`zero()` for an empty input).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = Bdd::ZERO;
        for f in fs {
            acc = self.or(acc, f);
            if acc.is_one() {
                break;
            }
        }
        acc
    }

    /// If-then-else: `(f AND g) OR (NOT f AND h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f.is_one() {
            return g;
        }
        if f.is_zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self
            .root_var(f)
            .min(self.root_var(g))
            .min(self.root_var(h));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let result = self.mk_node(top, low, high);
        self.ite_cache.insert((f, g, h), result);
        result
    }

    fn cofactors_at(&self, f: Bdd, var: VarId) -> (Bdd, Bdd) {
        if f.is_terminal() || self.root_var(f) != var {
            (f, f)
        } else {
            let n = self.nodes[f.0 as usize];
            (n.low, n.high)
        }
    }

    fn apply(&mut self, op: Op, f: Bdd, g: Bdd) -> Bdd {
        // Terminal short-circuits.
        match op {
            Op::And => {
                if f.is_zero() || g.is_zero() {
                    return Bdd::ZERO;
                }
                if f.is_one() {
                    return g;
                }
                if g.is_one() {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            Op::Or => {
                if f.is_one() || g.is_one() {
                    return Bdd::ONE;
                }
                if f.is_zero() {
                    return g;
                }
                if g.is_zero() {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            Op::Xor => {
                if f == g {
                    return Bdd::ZERO;
                }
                if f.is_zero() {
                    return g;
                }
                if g.is_zero() {
                    return f;
                }
            }
        }
        // Commutative: normalize operand order for better cache hit rate.
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        if let Some(&r) = self.apply_cache.get(&(op, f, g)) {
            return r;
        }
        let top = self.root_var(f).min(self.root_var(g));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let low = self.apply(op, f0, g0);
        let high = self.apply(op, f1, g1);
        let result = self.mk_node(top, low, high);
        self.apply_cache.insert((op, f, g), result);
        result
    }

    // ------------------------------------------------------------------
    // Cofactors, composition, quantification
    // ------------------------------------------------------------------

    /// Restriction (cofactor) of `f` with variable `var` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, var: VarId, value: bool) -> Bdd {
        if f.is_terminal() {
            return f;
        }
        let node = self.nodes[f.0 as usize];
        if node.var > var {
            return f;
        }
        if node.var == var {
            return if value { node.high } else { node.low };
        }
        let low = self.restrict(node.low, var, value);
        let high = self.restrict(node.high, var, value);
        self.mk_node(node.var, low, high)
    }

    /// Restriction of `f` under a partial assignment.
    pub fn restrict_all(&mut self, f: Bdd, assignment: &Assignment) -> Bdd {
        let mut acc = f;
        for (var, value) in assignment.iter() {
            acc = self.restrict(acc, var, value);
        }
        acc
    }

    /// Functional composition: substitute function `g` for variable `var` in
    /// `f`, i.e. `f[var := g]`.
    pub fn compose(&mut self, f: Bdd, var: VarId, g: Bdd) -> Bdd {
        let f1 = self.restrict(f, var, true);
        let f0 = self.restrict(f, var, false);
        self.ite(g, f1, f0)
    }

    /// Existential quantification over `var`: `f|var=0 OR f|var=1`.
    pub fn exists(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.or(f0, f1)
    }

    /// Universal quantification over `var`: `f|var=0 AND f|var=1`.
    pub fn forall(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.and(f0, f1)
    }

    /// Existential quantification over a set of variables.
    pub fn exists_all(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        let mut acc = f;
        for &v in vars {
            acc = self.exists(acc, v);
        }
        acc
    }

    /// Boolean difference of `f` with respect to `var`:
    /// `df/dvar = f|var=0 XOR f|var=1`.
    ///
    /// The Boolean difference is `1` exactly for the input combinations under
    /// which the value of `var` is observable at `f` — the propagation
    /// condition used by the BDD-based test generator.
    pub fn boolean_difference(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.xor(f0, f1)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Evaluates `f` under a total assignment (missing variables default to
    /// `false`).
    pub fn eval(&self, f: Bdd, assignment: &Assignment) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let node = self.nodes[cur.0 as usize];
            let value = assignment.get(node.var).unwrap_or(false);
            cur = if value { node.high } else { node.low };
        }
        cur.is_one()
    }

    /// Returns `true` if `f` contains a test of variable `var`.
    pub fn depends_on(&self, f: Bdd, var: VarId) -> bool {
        self.support(f).contains(&var)
    }

    /// Set of variables tested anywhere inside `f`, in ordering position.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n.0 as usize];
            vars.insert(node.var);
            stack.push(node.low);
            stack.push(node.high);
        }
        vars.into_iter().collect()
    }

    /// Number of internal nodes reachable from `f` (the BDD's size).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0usize;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = self.nodes[n.0 as usize];
            stack.push(node.low);
            stack.push(node.high);
        }
        count
    }

    /// Finds one satisfying assignment of `f`, or `None` if `f` is
    /// unsatisfiable.  Variables not mentioned in the returned [`Cube`] are
    /// don't-cares.
    pub fn sat_one(&self, f: Bdd) -> Option<Cube> {
        if f.is_zero() {
            return None;
        }
        let mut cube = Cube::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let node = self.nodes[cur.0 as usize];
            if !node.high.is_zero() {
                cube.set(node.var, true);
                cur = node.high;
            } else {
                cube.set(node.var, false);
                cur = node.low;
            }
        }
        Some(cube)
    }

    /// Counts satisfying assignments of `f` over the full set of declared
    /// variables.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        let n = self.var_count() as u32;
        let mut memo: HashMap<Bdd, u128> = HashMap::new();
        self.sat_count_rec(f, 0, n, &mut memo)
    }

    fn sat_count_rec(
        &self,
        f: Bdd,
        from_level: u32,
        total_vars: u32,
        memo: &mut HashMap<Bdd, u128>,
    ) -> u128 {
        // Number of assignments below `f` assuming its root is at
        // `from_level`.
        let level = if f.is_terminal() {
            total_vars
        } else {
            self.nodes[f.0 as usize].var
        };
        let skipped = (level - from_level) as u32;
        let base = if f.is_zero() {
            0
        } else if f.is_one() {
            1
        } else if let Some(&c) = memo.get(&f) {
            c
        } else {
            let node = self.nodes[f.0 as usize];
            let low = self.sat_count_rec(node.low, node.var + 1, total_vars, memo);
            let high = self.sat_count_rec(node.high, node.var + 1, total_vars, memo);
            let c = low + high;
            memo.insert(f, c);
            c
        };
        base << skipped
    }

    /// Iterator over the prime-free cube cover of `f` (one cube per path from
    /// the root to the `1` terminal).
    pub fn cubes(&self, f: Bdd) -> CubeIter<'_> {
        CubeIter::new(self, f)
    }

    pub(crate) fn node(&self, f: Bdd) -> Node {
        self.nodes[f.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_vars(m: &mut BddManager) -> (Bdd, Bdd, Bdd) {
        (m.var("a"), m.var("b"), m.var("c"))
    }

    #[test]
    fn constants_and_literals() {
        let mut m = BddManager::new();
        assert!(m.zero().is_zero());
        assert!(m.one().is_one());
        assert_eq!(m.constant(true), m.one());
        assert_eq!(m.constant(false), m.zero());
        let a = m.var("a");
        let not_a = m.not(a);
        let a_again = m.not(not_a);
        assert_eq!(a, a_again);
    }

    #[test]
    fn and_or_terminal_rules() {
        let mut m = BddManager::new();
        let (a, _, _) = three_vars(&mut m);
        assert_eq!(m.and(a, m.one()), a);
        assert_eq!(m.and(a, m.zero()), m.zero());
        assert_eq!(m.or(a, m.zero()), a);
        assert_eq!(m.or(a, m.one()), m.one());
        assert_eq!(m.xor(a, a), m.zero());
        assert_eq!(m.xor(a, m.zero()), a);
    }

    #[test]
    fn de_morgan() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let lhs = {
            let ab = m.and(a, b);
            m.not(ab)
        };
        let rhs = {
            let na = m.not(a);
            let nb = m.not(b);
            m.or(na, nb)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_matches_definition() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let ite = m.ite(a, b, c);
        let expected = {
            let ab = m.and(a, b);
            let na = m.not(a);
            let nac = m.and(na, c);
            m.or(ab, nac)
        };
        assert_eq!(ite, expected);
    }

    #[test]
    fn restrict_and_compose() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let va = m.var_index("a").unwrap();
        let f_a1 = m.restrict(f, va, true);
        let expected = m.or(b, c);
        assert_eq!(f_a1, expected);
        let f_a0 = m.restrict(f, va, false);
        assert_eq!(f_a0, c);
        // compose a := c  gives (c AND b) OR c = c OR (b AND c) = c... careful:
        let composed = m.compose(f, va, c);
        let expect2 = {
            let cb = m.and(c, b);
            m.or(cb, c)
        };
        assert_eq!(composed, expect2);
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let f = m.and(a, b);
        let va = m.var_index("a").unwrap();
        assert_eq!(m.exists(f, va), b);
        assert_eq!(m.forall(f, va), m.zero());
        let g = m.or(a, b);
        assert_eq!(m.exists(g, va), m.one());
        assert_eq!(m.forall(g, va), b);
    }

    #[test]
    fn boolean_difference_detects_observability() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        // f = (a AND b) OR c : a is observable iff b=1 AND c=0.
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let va = m.var_index("a").unwrap();
        let diff = m.boolean_difference(f, va);
        let expected = {
            let nc = m.not(c);
            m.and(b, nc)
        };
        assert_eq!(diff, expected);
    }

    #[test]
    fn eval_and_sat() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let mut asg = Assignment::new();
        asg.set(0, true);
        asg.set(1, true);
        asg.set(2, false);
        assert!(m.eval(f, &asg));
        asg.set(1, false);
        assert!(!m.eval(f, &asg));
        let cube = m.sat_one(f).expect("satisfiable");
        let full = cube.to_assignment();
        assert!(m.eval(f, &full));
        assert_eq!(m.sat_one(m.zero()), None);
    }

    #[test]
    fn sat_count_small_function() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        // Truth table over 3 variables: (a&b)|c has 5 minterms.
        assert_eq!(m.sat_count(f), 5);
        assert_eq!(m.sat_count(m.one()), 8);
        assert_eq!(m.sat_count(m.zero()), 0);
    }

    #[test]
    fn support_and_size() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let _ = c;
        let f = m.and(a, b);
        assert_eq!(m.support(f), vec![0, 1]);
        assert_eq!(m.size(f), 2);
        assert_eq!(m.size(m.one()), 0);
        assert!(m.depends_on(f, 0));
        assert!(!m.depends_on(f, 2));
    }

    #[test]
    fn canonical_equality_of_equivalent_formulas() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        // (a XOR b) XOR c is associative/commutative.
        let l = {
            let ab = m.xor(a, b);
            m.xor(ab, c)
        };
        let r = {
            let bc = m.xor(b, c);
            m.xor(a, bc)
        };
        assert_eq!(l, r);
    }

    #[test]
    fn stats_reports_nodes() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let _f = m.and(a, b);
        let stats = m.stats();
        assert!(stats.node_count >= 3);
        assert_eq!(stats.var_count, 3);
        assert!(format!("{stats}").contains("nodes"));
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn literal_of_undeclared_variable_panics() {
        let mut m = BddManager::new();
        let _ = m.literal(3, true);
    }
}
