//! The BDD manager: complement-edged arena node store, open-addressed
//! unique table, fixed-size lossy operation caches and a mark-and-sweep
//! node-level garbage collector.
//!
//! ## Engine layout
//!
//! * **Complement edges** — a [`Bdd`] is a tagged pointer: bit 0 negates the
//!   referenced function.  Only one polarity of each function is stored
//!   (canonical invariant: the high/then edge of a stored node is never
//!   complemented), which roughly halves unique-table population on
//!   negation-heavy workloads and makes [`BddManager::not`] an O(1) bit
//!   flip.  There is a single terminal node; `false` is its complement.
//! * **Node arena** — every internal node lives in one contiguous
//!   `Vec<Node>` indexed by [`Bdd::index`]; index 0 is the terminal.  Child
//!   lookups are a single bounds-checked array access.  Nodes freed by the
//!   garbage collector go onto a free list and their slots are reused, so
//!   live handles are never renumbered.
//! * **Unique table** — hash consing uses an open-addressed, linear-probed
//!   table of node indices keyed by an FNV-1a hash of `(var, low, high)`
//!   (rsdd/OBDDimal style) instead of a SipHash `HashMap<Node, Bdd>`: no
//!   per-entry heap boxes, no DoS-resistant (slow) hashing, and resizing
//!   rehashes plain `u32`s.  [`BddManager::gc`] rebuilds it over the
//!   surviving nodes.
//! * **Apply / ITE caches** — memoization uses direct-mapped, fixed-size
//!   lossy caches: a colliding entry simply overwrites the previous one.
//!   This bounds cache memory for arbitrarily long ATPG runs while keeping
//!   the hit rate high for the clustered access patterns of `apply`/`ite`
//!   recursions.  Hit/miss counters are exposed through
//!   [`BddManager::stats`]; the caches are invalidated wholesale by
//!   [`BddManager::gc`] (freed node indices may be reused) and can be reset
//!   manually with [`BddManager::clear_caches`].
//!
//! ## Garbage collection
//!
//! External [`Bdd`] handles are plain `Copy` indices, so the manager cannot
//! observe drops; instead, long-lived functions are registered as **counted
//! roots** with [`BddManager::protect`] / [`BddManager::unprotect`].
//! [`BddManager::gc`] marks every node reachable from the registered roots
//! (plus the operands the manager itself is currently holding) and sweeps
//! the rest onto the free list.  Collection runs only at *safe points*:
//! explicit [`BddManager::gc`] / [`BddManager::gc_if_above`] calls, or —
//! when a watermark is armed with [`BddManager::set_auto_gc`] — on entry to
//! the public Boolean operations, whose operands are pinned for the
//! duration of the call.
//!
//! **Auto-GC contract:** with a watermark armed, any handle the caller
//! keeps across manager calls must be protected (or reachable from a
//! protected root); unprotected handles may dangle after a collection.
//! With auto-GC disarmed (the default) the engine behaves exactly like the
//! non-collecting arena manager it replaced: every handle stays valid for
//! the manager's lifetime unless an explicit `gc()` is requested.

use std::collections::HashMap;
use std::fmt;

use msatpg_exec::CancelToken;

use crate::budget::{BddBudget, BddError};
use crate::cube::{Assignment, Cube, CubeIter};
use crate::node::{Bdd, Node, VarId};

/// Binary operation codes used as keys of the apply cache.
///
/// `Or` is not in the list: with complement edges it is derived as
/// `!(AND(!f, !g))` for free, so conjunction and disjunction share one set
/// of cache entries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    And,
    Xor,
}

/// How [`BddManager::cofactor_combine`] merges the two cofactors (the shared
/// body of `forall` / `exists` / `boolean_difference`).
#[derive(Clone, Copy)]
enum CofactorOp {
    And,
    Or,
    Xor,
}

/// log2 of the number of slots in the apply cache.
const APPLY_CACHE_BITS: usize = 14;
/// log2 of the number of slots in the ITE cache.
const ITE_CACHE_BITS: usize = 14;
/// Initial capacity (slots) of the unique table; always a power of two.
const UNIQUE_INITIAL_SLOTS: usize = 1 << 10;
/// Sentinel marking an empty cache slot / unique-table slot.
const EMPTY: u32 = u32::MAX;
/// How many recursion steps pass between polls of an armed
/// [`CancelToken`] (amortizes the atomic load / deadline clock read).
const CANCEL_POLL_INTERVAL: u64 = 256;
/// `Node::var` sentinel of a swept (free-listed) arena slot.
pub(crate) const FREED: VarId = VarId::MAX - 1;

/// FNV-1a over a few words, with a final avalanche so the low bits (used to
/// index power-of-two tables) depend on every input bit.
#[inline]
fn fnv_mix(words: [u32; 3]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        h ^= u64::from(w);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 29;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^ (h >> 32)
}

/// Unwraps a fallible-operation result on behalf of the infallible wrapper
/// APIs.  With no budget and no cancel token armed the error is impossible;
/// with one armed, calling an infallible operation is a contract violation
/// (the caller opted into resource governance but ignored the fallible
/// API), reported as a panic at the caller's site.
#[track_caller]
fn expect_ok(result: Result<Bdd, BddError>) -> Bdd {
    match result {
        Ok(f) => f,
        Err(err) => panic!(
            "infallible BDD operation interrupted: {err}; \
             use the try_* APIs when a budget or cancel token is armed"
        ),
    }
}

/// Hit/miss counters of one memoization cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of cache probes.
    pub lookups: u64,
    /// Number of probes that returned a previously computed result.
    pub hits: u64,
}

impl CacheStats {
    /// Number of probes that missed.
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Fraction of lookups served from the cache (`0.0` when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Statistics about the state of a [`BddManager`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BddStats {
    /// Number of live internal nodes (excluding the terminal).
    pub node_count: usize,
    /// High-water mark of `node_count` over the manager's lifetime (the
    /// peak unique-table population).
    pub peak_live_nodes: usize,
    /// Total internal nodes ever created (free-list reuses count again).
    pub created_nodes: u64,
    /// Arena slots currently on the free list (swept, awaiting reuse).
    pub free_nodes: usize,
    /// Number of completed [`BddManager::gc`] passes.
    pub gc_runs: u64,
    /// Total nodes reclaimed across all GC passes.
    pub gc_reclaimed: u64,
    /// Number of registered root entries (distinct protected nodes).
    pub protected_roots: usize,
    /// Number of declared variables.
    pub var_count: usize,
    /// Number of entries currently stored in the apply and ITE caches.
    pub cache_entries: usize,
    /// Total slot capacity of the apply and ITE caches (fixed).
    pub cache_capacity: usize,
    /// Slot capacity of the unique (hash-consing) table.
    pub unique_capacity: usize,
    /// Apply-cache hit/miss counters.
    pub apply_cache: CacheStats,
    /// ITE-cache hit/miss counters.
    pub ite_cache: CacheStats,
}

impl fmt::Display for BddStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes live (peak {}), {} variables, {} GC runs ({} reclaimed), \
             {}/{} cached results (apply {:.0}% / ite {:.0}% hits)",
            self.node_count,
            self.peak_live_nodes,
            self.var_count,
            self.gc_runs,
            self.gc_reclaimed,
            self.cache_entries,
            self.cache_capacity,
            self.apply_cache.hit_rate() * 100.0,
            self.ite_cache.hit_rate() * 100.0,
        )
    }
}

/// Outcome of one [`BddManager::gc`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Live internal nodes before the pass.
    pub live_before: usize,
    /// Live internal nodes after the pass.
    pub live_after: usize,
    /// Nodes swept onto the free list by this pass
    /// (`live_before - live_after`).
    pub reclaimed: usize,
}

/// One slot of the direct-mapped apply cache.
#[derive(Clone, Copy)]
struct ApplyEntry {
    f: u32,
    g: u32,
    op: u8,
    result: u32,
}

const APPLY_EMPTY: ApplyEntry = ApplyEntry {
    f: EMPTY,
    g: EMPTY,
    op: u8::MAX,
    result: EMPTY,
};

/// One slot of the direct-mapped ITE cache.
#[derive(Clone, Copy)]
struct IteEntry {
    f: u32,
    g: u32,
    h: u32,
    result: u32,
}

const ITE_EMPTY: IteEntry = IteEntry {
    f: EMPTY,
    g: EMPTY,
    h: EMPTY,
    result: EMPTY,
};

/// Open-addressed, linear-probed hash-consing table mapping node contents to
/// their arena index.
#[derive(Clone)]
pub(crate) struct UniqueTable {
    /// Node indices; `EMPTY` marks a vacant slot.  Length is a power of two.
    slots: Vec<u32>,
    pub(crate) len: usize,
}

impl UniqueTable {
    fn new() -> Self {
        Self::with_slots(UNIQUE_INITIAL_SLOTS)
    }

    fn with_slots(slots: usize) -> Self {
        UniqueTable {
            slots: vec![EMPTY; slots],
            len: 0,
        }
    }

    /// A fresh table sized so `live` entries sit under 50 % load.
    pub(crate) fn for_live(live: usize) -> Self {
        let want = (live.max(1) * 2).next_power_of_two();
        Self::with_slots(want.max(UNIQUE_INITIAL_SLOTS))
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Finds the node `(var, low, high)` in the table, or the vacant slot
    /// where it belongs.  Returns `Ok(node_index)` or `Err(slot_index)`.
    #[inline]
    pub(crate) fn probe(
        &self,
        nodes: &[Node],
        var: VarId,
        low: Bdd,
        high: Bdd,
    ) -> Result<u32, usize> {
        let mask = self.mask();
        let mut slot = fnv_mix([var, low.0, high.0]) as usize & mask;
        loop {
            let idx = self.slots[slot];
            if idx == EMPTY {
                return Err(slot);
            }
            let node = &nodes[idx as usize];
            if node.var == var && node.low == low && node.high == high {
                return Ok(idx);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Inserts a node index at a vacant slot previously returned by
    /// [`UniqueTable::probe`], growing (and rehashing) at 75 % load.
    fn insert(&mut self, nodes: &[Node], slot: usize, idx: u32) {
        self.slots[slot] = idx;
        self.len += 1;
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow(nodes);
        }
    }

    /// Inserts a node index into whatever slot its hash chain ends at (used
    /// when rebuilding after a sweep; the caller sizes the table up front).
    pub(crate) fn insert_rehash(&mut self, nodes: &[Node], idx: u32) {
        let node = &nodes[idx as usize];
        let mask = self.mask();
        let mut slot = fnv_mix([node.var, node.low.0, node.high.0]) as usize & mask;
        while self.slots[slot] != EMPTY {
            slot = (slot + 1) & mask;
        }
        self.slots[slot] = idx;
        self.len += 1;
    }

    fn grow(&mut self, nodes: &[Node]) {
        let new_cap = self.slots.len() * 2;
        let mut new_slots = vec![EMPTY; new_cap];
        let mask = new_cap - 1;
        for &idx in self.slots.iter().filter(|&&i| i != EMPTY) {
            let node = &nodes[idx as usize];
            let mut slot = fnv_mix([node.var, node.low.0, node.high.0]) as usize & mask;
            while new_slots[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            new_slots[slot] = idx;
        }
        self.slots = new_slots;
    }
}

/// A reduced ordered BDD node store with complement edges, memoized Boolean
/// operations and a mark-and-sweep garbage collector.
///
/// Variables are declared with [`BddManager::var`] (by name) or
/// [`BddManager::new_var`], and their declaration order is the *initial*
/// global variable ordering.  Reordering (adjacent-level swap and sifting,
/// see [`BddManager::try_sift`]) permutes the variable-to-level maps
/// without renumbering any [`VarId`] or invalidating any handle.  Handles
/// stay valid for the manager's lifetime unless garbage collection is
/// requested; see the crate docs for the root registry and the auto-GC
/// contract.
///
/// # Example
///
/// ```
/// use msatpg_bdd::BddManager;
///
/// let mut m = BddManager::new();
/// let x = m.var("x");
/// let y = m.var("y");
/// let f = m.or(x, y);
/// let g = m.not(f); // O(1): complement edges store only one polarity
/// let h = m.nor(x, y);
/// assert_eq!(g, h); // canonical representation
///
/// // Reclaim everything not reachable from a registered root.
/// m.protect(f);
/// let report = m.gc();
/// assert_eq!(report.live_after, m.size(f));
/// ```
#[derive(Clone)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    /// Arena indices swept by the collector, ready for reuse.
    pub(crate) free: Vec<u32>,
    pub(crate) unique: UniqueTable,
    apply_cache: Vec<ApplyEntry>,
    ite_cache: Vec<IteEntry>,
    apply_stats: CacheStats,
    ite_stats: CacheStats,
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
    /// Ordering position of each declared variable (`var2level[var]`);
    /// identity until a reorder permutes it.
    pub(crate) var2level: Vec<u32>,
    /// Inverse permutation: the variable sitting at each ordering position.
    pub(crate) level2var: Vec<VarId>,
    /// Reordering schedule honoured at the auto-GC safe points.
    dvo: crate::reorder::DvoSchedule,
    /// Counted external roots: node index -> registration count.
    roots: HashMap<u32, usize>,
    /// Operand pin stack: handles the manager itself holds across nested
    /// public operations, marked by the collector alongside the roots.
    pins: Vec<Bdd>,
    /// Live-node watermark that arms collection at operation entry.
    auto_gc_watermark: Option<usize>,
    /// Resource quotas enforced by the fallible (`try_*`) operations.
    budget: BddBudget,
    /// Recursion steps counted since the last [`BddManager::reset_steps`].
    steps_used: u64,
    /// Cooperative cancellation signal polled at operation entry and every
    /// [`CANCEL_POLL_INTERVAL`] recursion steps.
    cancel: Option<CancelToken>,
    peak_live: usize,
    created: u64,
    gc_runs: u64,
    gc_reclaimed: u64,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("live_nodes", &self.live_node_count())
            .field("vars", &self.names.len())
            .field("gc_runs", &self.gc_runs)
            .finish()
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager containing only the terminal node.
    pub fn new() -> Self {
        let terminal = Node {
            var: VarId::MAX,
            low: Bdd::ZERO,
            high: Bdd::ONE,
        };
        // Index 0 is the single terminal; its stored contents are never
        // inspected, but the arena slot must exist.
        BddManager {
            nodes: vec![terminal],
            free: Vec::new(),
            unique: UniqueTable::new(),
            apply_cache: vec![APPLY_EMPTY; 1 << APPLY_CACHE_BITS],
            ite_cache: vec![ITE_EMPTY; 1 << ITE_CACHE_BITS],
            apply_stats: CacheStats::default(),
            ite_stats: CacheStats::default(),
            names: Vec::new(),
            by_name: HashMap::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            dvo: crate::reorder::DvoSchedule::Never,
            roots: HashMap::new(),
            pins: Vec::new(),
            auto_gc_watermark: None,
            budget: BddBudget::UNLIMITED,
            steps_used: 0,
            cancel: None,
            peak_live: 0,
            created: 0,
            gc_runs: 0,
            gc_reclaimed: 0,
        }
    }

    /// The constant-false function.
    #[inline]
    pub fn zero(&self) -> Bdd {
        Bdd::ZERO
    }

    /// The constant-true function.
    #[inline]
    pub fn one(&self) -> Bdd {
        Bdd::ONE
    }

    /// Converts a `bool` into the corresponding constant function.
    #[inline]
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::ONE
        } else {
            Bdd::ZERO
        }
    }

    /// Number of declared variables.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.names.len()
    }

    /// Number of live internal nodes (the current unique-table population).
    #[inline]
    pub fn live_node_count(&self) -> usize {
        self.nodes.len() - 1 - self.free.len()
    }

    /// Returns statistics about the manager, including cache hit rates and
    /// garbage-collection counters.
    pub fn stats(&self) -> BddStats {
        let apply_entries = self.apply_cache.iter().filter(|e| e.op != u8::MAX).count();
        let ite_entries = self.ite_cache.iter().filter(|e| e.f != EMPTY).count();
        BddStats {
            node_count: self.live_node_count(),
            peak_live_nodes: self.peak_live,
            created_nodes: self.created,
            free_nodes: self.free.len(),
            gc_runs: self.gc_runs,
            gc_reclaimed: self.gc_reclaimed,
            protected_roots: self.roots.len(),
            var_count: self.names.len(),
            cache_entries: apply_entries + ite_entries,
            cache_capacity: self.apply_cache.len() + self.ite_cache.len(),
            unique_capacity: self.unique.slots.len(),
            apply_cache: self.apply_stats,
            ite_cache: self.ite_stats,
        }
    }

    /// Empties the apply and ITE caches (the node arena and unique table are
    /// untouched, so every existing [`Bdd`] stays valid).  [`BddManager::gc`]
    /// does this implicitly; calling it directly mainly serves to drop stale
    /// entries and restart hit-rate measurement via
    /// [`BddManager::reset_cache_stats`].
    pub fn clear_caches(&mut self) {
        self.apply_cache.fill(APPLY_EMPTY);
        self.ite_cache.fill(ITE_EMPTY);
    }

    /// Resets the cache hit/miss counters to zero.
    pub fn reset_cache_stats(&mut self) {
        self.apply_stats = CacheStats::default();
        self.ite_stats = CacheStats::default();
    }

    // ------------------------------------------------------------------
    // Root registry and garbage collection
    // ------------------------------------------------------------------

    /// Registers `f` as an external root: the node (and everything reachable
    /// from it) survives every garbage collection until a matching
    /// [`BddManager::unprotect`].  Registrations are counted, so protecting
    /// the same function twice requires two unprotects.  Terminals need no
    /// protection and are ignored.
    pub fn protect(&mut self, f: Bdd) {
        if !f.is_terminal() {
            *self.roots.entry(f.index()).or_insert(0) += 1;
        }
    }

    /// Releases one registration of `f` made by [`BddManager::protect`].
    ///
    /// # Panics
    ///
    /// Panics if `f` is not currently registered (an unbalanced unprotect is
    /// always a caller bug that would otherwise surface as a dangling handle
    /// much later).
    pub fn unprotect(&mut self, f: Bdd) {
        if f.is_terminal() {
            return;
        }
        let count = self
            .roots
            .get_mut(&f.index())
            .expect("unprotect of a handle that was never protected");
        *count -= 1;
        if *count == 0 {
            self.roots.remove(&f.index());
        }
    }

    /// Number of distinct nodes currently registered as roots.
    pub fn protected_count(&self) -> usize {
        self.roots.len()
    }

    /// Arms (`Some(watermark)`) or disarms (`None`) automatic collection:
    /// when armed, entry to a public Boolean operation first runs
    /// [`BddManager::gc`] if the live-node count is at or above the
    /// watermark (the operation's own operands are pinned for the call).
    /// After an automatic pass the watermark is raised to at least four
    /// times the surviving population, so a build that genuinely needs more
    /// nodes does not thrash the collector.
    ///
    /// See the crate docs for the contract: with auto-GC armed,
    /// every handle held across manager calls must be protected.
    pub fn set_auto_gc(&mut self, watermark: Option<usize>) {
        self.auto_gc_watermark = watermark;
    }

    /// The currently armed auto-GC watermark, if any.
    pub fn auto_gc(&self) -> Option<usize> {
        self.auto_gc_watermark
    }

    /// Sets the dynamic-variable-ordering schedule honoured at the auto-GC
    /// safe points (see [`crate::reorder::DvoSchedule`]).  The same handle
    /// contract as [`BddManager::set_auto_gc`] applies while a
    /// [`crate::reorder::DvoSchedule::SizeTriggered`] schedule is armed:
    /// every handle held across manager calls must be protected.
    pub fn set_dvo(&mut self, schedule: crate::reorder::DvoSchedule) {
        self.dvo = schedule;
    }

    /// The currently armed reordering schedule.
    pub fn dvo(&self) -> crate::reorder::DvoSchedule {
        self.dvo
    }

    // ------------------------------------------------------------------
    // Resource governance: budgets and cancellation
    // ------------------------------------------------------------------

    /// Arms (or, with [`BddBudget::UNLIMITED`], disarms) resource quotas for
    /// the fallible `try_*` operations and resets the step counter.
    ///
    /// With a node quota armed, arm [`BddManager::set_auto_gc`] with a
    /// watermark at or below the quota so dead nodes are collected at
    /// operation entry before the quota can fire (see [`crate::budget`]).
    /// While any quota (or a cancel token) is armed, use the `try_*`
    /// operations: the infallible ones panic when interrupted.
    pub fn set_budget(&mut self, budget: BddBudget) {
        self.budget = budget;
        self.steps_used = 0;
    }

    /// The currently armed budget.
    pub fn budget(&self) -> BddBudget {
        self.budget
    }

    /// Recursion steps consumed since the last [`BddManager::reset_steps`]
    /// (or [`BddManager::set_budget`]).
    pub fn steps_used(&self) -> u64 {
        self.steps_used
    }

    /// Resets the recursion-step counter, re-opening the full
    /// [`BddBudget::max_steps`] quota — the per-fault-target reset point of
    /// the ATPG drivers.
    pub fn reset_steps(&mut self) {
        self.steps_used = 0;
    }

    /// Arms (or disarms) a cooperative [`CancelToken`]: fallible operations
    /// poll it at entry and every `CANCEL_POLL_INTERVAL` (256) recursion steps,
    /// returning [`BddError::Cancelled`] once it has fired.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The currently armed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Per-recursion-step bookkeeping of the fallible operations: counts the
    /// step against [`BddBudget::max_steps`] and periodically polls the
    /// cancel token.
    #[inline]
    pub(crate) fn step(&mut self) -> Result<(), BddError> {
        self.steps_used += 1;
        if let Some(limit) = self.budget.max_steps {
            if self.steps_used > limit {
                return Err(BddError::StepBudgetExceeded { limit });
            }
        }
        if self.cancel.is_some() && self.steps_used % CANCEL_POLL_INTERVAL == 0 {
            self.poll_cancel()?;
        }
        Ok(())
    }

    /// Operation-entry poll of the armed cancel token.
    #[inline]
    pub(crate) fn poll_cancel(&self) -> Result<(), BddError> {
        match &self.cancel {
            Some(token) if token.is_cancelled() => Err(BddError::Cancelled),
            _ => Ok(()),
        }
    }

    /// Runs [`BddManager::gc`] only if the live-node count is at or above
    /// `watermark`; the cheap explicit safe-point check for drivers that
    /// hold unprotected intermediates and therefore cannot arm auto-GC.
    pub fn gc_if_above(&mut self, watermark: usize) -> Option<GcReport> {
        if self.live_node_count() >= watermark {
            Some(self.gc())
        } else {
            None
        }
    }

    /// Mark-and-sweep collection: marks every node reachable from the
    /// registered roots (and the manager's own pinned operands), sweeps all
    /// other internal nodes onto the free list, rebuilds the unique table
    /// over the survivors and invalidates the apply/ITE caches (freed
    /// indices may be reused, so stale cache entries would alias).
    ///
    /// Live handles are never renumbered: a protected function compares
    /// equal to itself, and to any post-collection rebuild of the same
    /// function, across arbitrarily many passes.
    pub fn gc(&mut self) -> GcReport {
        let live_before = self.live_node_count();
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        let mut stack: Vec<u32> = self.roots.keys().copied().collect();
        stack.extend(
            self.pins
                .iter()
                .filter(|f| !f.is_terminal())
                .map(|f| f.index()),
        );
        while let Some(idx) = stack.pop() {
            if marked[idx as usize] {
                continue;
            }
            marked[idx as usize] = true;
            let node = self.nodes[idx as usize];
            if !node.low.is_terminal() {
                stack.push(node.low.index());
            }
            if !node.high.is_terminal() {
                stack.push(node.high.index());
            }
        }
        let mut reclaimed = 0usize;
        for idx in 1..self.nodes.len() {
            if !marked[idx] && self.nodes[idx].var != FREED {
                self.nodes[idx] = Node {
                    var: FREED,
                    low: Bdd::ONE,
                    high: Bdd::ONE,
                };
                self.free.push(idx as u32);
                reclaimed += 1;
            }
        }
        let live_after = live_before - reclaimed;
        self.unique = UniqueTable::for_live(live_after);
        for idx in 1..self.nodes.len() {
            if marked[idx] {
                self.unique.insert_rehash(&self.nodes, idx as u32);
            }
        }
        self.clear_caches();
        self.gc_runs += 1;
        self.gc_reclaimed += reclaimed as u64;
        GcReport {
            live_before,
            live_after,
            reclaimed,
        }
    }

    /// Auto-GC safe point: called on entry to the public Boolean operations
    /// after their operands are pinned.
    fn checkpoint(&mut self) {
        if let Some(watermark) = self.auto_gc_watermark {
            if self.live_node_count() >= watermark {
                self.gc();
                let floor = self.live_node_count().saturating_mul(4);
                self.auto_gc_watermark = Some(watermark.max(floor));
            }
        }
        // Size-triggered reordering shares the safe point: operands are
        // pinned, so sifting (which GCs internally) cannot sweep them, and
        // swaps never renumber handles.  An interrupted sift (budget or
        // cancel) is abandoned silently — the operation itself will report
        // the exhaustion if it persists.
        if let crate::reorder::DvoSchedule::SizeTriggered(watermark) = self.dvo {
            if self.live_node_count() >= watermark {
                let _ = self.try_sift();
                let floor = self.live_node_count().saturating_mul(2);
                self.dvo = crate::reorder::DvoSchedule::SizeTriggered(watermark.max(floor));
            }
        }
    }

    #[inline]
    fn pin_mark(&self) -> usize {
        self.pins.len()
    }

    #[inline]
    fn pin(&mut self, f: Bdd) {
        if !f.is_terminal() {
            self.pins.push(f);
        }
    }

    #[inline]
    fn unpin_to(&mut self, mark: usize) {
        self.pins.truncate(mark);
    }

    // ------------------------------------------------------------------
    // Variables and literals
    // ------------------------------------------------------------------

    /// Declares a new variable with an auto-generated name and returns the
    /// BDD of its positive literal.
    pub fn new_var(&mut self) -> Bdd {
        let name = format!("v{}", self.names.len());
        self.var(&name)
    }

    /// Returns the positive literal of the named variable, declaring the
    /// variable if it does not exist yet.
    ///
    /// Variables are ordered by declaration order.
    pub fn var(&mut self, name: &str) -> Bdd {
        let id = self.var_id(name);
        self.literal(id, true)
    }

    /// Returns (declaring if necessary) the [`VarId`] of the named variable.
    pub fn var_id(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as VarId;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        // New variables enter the ordering at the bottom (deepest level),
        // which extends any reordered permutation without disturbing it.
        self.var2level.push(self.level2var.len() as u32);
        self.level2var.push(id);
        id
    }

    /// Looks up a variable id by name without declaring it.
    pub fn var_index(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Name of a declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not declared by this manager.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var as usize]
    }

    /// Names of all declared variables in ordering position.
    pub fn var_names(&self) -> &[String] {
        &self.names
    }

    /// Returns the literal `var` (if `positive`) or `!var`.
    ///
    /// With complement edges both polarities share one stored node, so this
    /// never allocates more than one node per variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` has not been declared.
    pub fn literal(&mut self, var: VarId, positive: bool) -> Bdd {
        assert!(
            (var as usize) < self.names.len(),
            "literal of undeclared variable {var}"
        );
        // One hash-consed node per variable: charge it against the node
        // quota like any other allocation, but stay infallible (a budget
        // too small for the variables themselves is a configuration bug).
        let positive_literal = expect_ok(self.mk_node(var, Bdd::ZERO, Bdd::ONE));
        if positive {
            positive_literal
        } else {
            !positive_literal
        }
    }

    /// Root variable of `f` (its identity, *not* its ordering position), or
    /// `VarId::MAX` for terminals.  Use [`BddManager::level_of`] to map a
    /// variable to its current position in the ordering.
    #[inline]
    pub fn root_var(&self, f: Bdd) -> VarId {
        if f.is_terminal() {
            VarId::MAX
        } else {
            self.nodes[f.index() as usize].var
        }
    }

    /// Current ordering position (level) of a declared variable: level 0 is
    /// the root end of the order.  Declaration order is the initial order;
    /// reordering permutes levels without renumbering [`VarId`]s.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not declared by this manager.
    #[inline]
    pub fn level_of(&self, var: VarId) -> u32 {
        self.var2level[var as usize]
    }

    /// The variable currently sitting at ordering position `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `0..var_count()`.
    #[inline]
    pub fn var_at_level(&self, level: u32) -> VarId {
        self.level2var[level as usize]
    }

    /// The current variable order, root end first.
    pub fn var_order(&self) -> &[VarId] {
        &self.level2var
    }

    /// Level of the root variable of `f`, or `u32::MAX` for terminals (which
    /// sit below every variable).
    #[inline]
    pub(crate) fn root_level(&self, f: Bdd) -> u32 {
        if f.is_terminal() {
            u32::MAX
        } else {
            self.var2level[self.nodes[f.index() as usize].var as usize]
        }
    }

    /// Low (else) cofactor of a non-terminal node, with the handle's
    /// complement flag resolved (this is the *semantic* child: the function
    /// of `f` under `root_var(f) = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn low(&self, f: Bdd) -> Bdd {
        assert!(!f.is_terminal(), "terminal nodes have no children");
        self.children(f).0
    }

    /// High (then) cofactor of a non-terminal node, with the handle's
    /// complement flag resolved.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn high(&self, f: Bdd) -> Bdd {
        assert!(!f.is_terminal(), "terminal nodes have no children");
        self.children(f).1
    }

    /// Semantic `(low, high)` cofactors of a non-terminal handle: the stored
    /// children with the handle's complement flag pushed down.
    #[inline]
    pub(crate) fn children(&self, f: Bdd) -> (Bdd, Bdd) {
        let node = self.nodes[f.index() as usize];
        let flip = f.is_complement();
        (node.low.toggled_if(flip), node.high.toggled_if(flip))
    }

    pub(crate) fn mk_node(&mut self, var: VarId, low: Bdd, high: Bdd) -> Result<Bdd, BddError> {
        if low == high {
            return Ok(low);
        }
        // Canonical complement form: the high edge is never complemented.
        // A would-be complemented then-edge stores the negated node instead
        // and returns its complement, so f and !f share one arena slot.
        if high.is_complement() {
            return Ok(!self.mk_raw(var, !low, !high)?);
        }
        self.mk_raw(var, low, high)
    }

    fn mk_raw(&mut self, var: VarId, low: Bdd, high: Bdd) -> Result<Bdd, BddError> {
        debug_assert!(!high.is_complement(), "canonical high edge is regular");
        match self.unique.probe(&self.nodes, var, low, high) {
            Ok(idx) => Ok(Bdd(idx << 1)),
            Err(slot) => {
                // The node-allocation point is where the node quota is
                // enforced: hash-consed hits above never grow the
                // population, so they stay infallible.
                if let Some(limit) = self.budget.max_live_nodes {
                    if self.live_node_count() >= limit {
                        return Err(BddError::NodeBudgetExceeded { limit });
                    }
                }
                let node = Node { var, low, high };
                let idx = match self.free.pop() {
                    Some(idx) => {
                        self.nodes[idx as usize] = node;
                        idx
                    }
                    None => {
                        let idx = self.nodes.len() as u32;
                        assert!(idx < u32::MAX >> 1, "BDD arena exhausted");
                        self.nodes.push(node);
                        idx
                    }
                };
                self.unique.insert(&self.nodes, slot, idx);
                self.created += 1;
                self.peak_live = self.peak_live.max(self.live_node_count());
                Ok(Bdd(idx << 1))
            }
        }
    }

    // ------------------------------------------------------------------
    // Boolean operations
    // ------------------------------------------------------------------

    /// Logical negation of `f` — an O(1) complement-flag flip (also
    /// available as `!f` on the handle itself).
    #[inline]
    pub fn not(&self, f: Bdd) -> Bdd {
        !f
    }

    /// Logical conjunction `f AND g`.
    ///
    /// Infallible wrapper over [`BddManager::try_and`]; panics if a budget
    /// or cancel token interrupts the operation.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        expect_ok(self.try_and(f, g))
    }

    /// Fallible conjunction: `Err` when the armed [`BddBudget`] or
    /// [`CancelToken`] interrupts the operation (the partial build is
    /// abandoned; manager and operands stay valid).
    pub fn try_and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        self.poll_cancel()?;
        let mark = self.pin_mark();
        self.pin(f);
        self.pin(g);
        self.checkpoint();
        let result = self.and_rec(f, g);
        self.unpin_to(mark);
        result
    }

    /// Logical disjunction `f OR g` (derived: `!(!f AND !g)`, sharing the
    /// conjunction's cache entries).
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        !self.and(!f, !g)
    }

    /// Fallible disjunction (see [`BddManager::try_and`]).
    pub fn try_or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(!self.try_and(!f, !g)?)
    }

    /// Exclusive or `f XOR g`.
    ///
    /// Infallible wrapper over [`BddManager::try_xor`]; panics if a budget
    /// or cancel token interrupts the operation.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        expect_ok(self.try_xor(f, g))
    }

    /// Fallible exclusive or (see [`BddManager::try_and`]).
    pub fn try_xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        self.poll_cancel()?;
        let mark = self.pin_mark();
        self.pin(f);
        self.pin(g);
        self.checkpoint();
        let result = self.xor_rec(f, g);
        self.unpin_to(mark);
        result
    }

    /// `NOT (f AND g)`.
    pub fn nand(&mut self, f: Bdd, g: Bdd) -> Bdd {
        !self.and(f, g)
    }

    /// Fallible NAND (see [`BddManager::try_and`]).
    pub fn try_nand(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(!self.try_and(f, g)?)
    }

    /// `NOT (f OR g)`.
    pub fn nor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.and(!f, !g)
    }

    /// Fallible NOR (see [`BddManager::try_and`]).
    pub fn try_nor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        self.try_and(!f, !g)
    }

    /// `NOT (f XOR g)` (logical equivalence).
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        !self.xor(f, g)
    }

    /// Fallible XNOR (see [`BddManager::try_and`]).
    pub fn try_xnor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(!self.try_xor(f, g)?)
    }

    /// Logical implication `f -> g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        !self.and(f, !g)
    }

    /// Fallible implication (see [`BddManager::try_and`]).
    pub fn try_implies(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(!self.try_and(f, !g)?)
    }

    /// Conjunction of an iterator of functions (`one()` for an empty input).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        expect_ok(self.try_and_all(fs))
    }

    /// Fallible conjunction of an iterator of functions (see
    /// [`BddManager::try_and`]).
    pub fn try_and_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Result<Bdd, BddError> {
        // Fast path: with auto-GC disarmed no collection can fire mid-fold,
        // so stream the iterator without buffering or pinning (this is the
        // per-gate hot loop of the symbolic netlist builds).
        if self.auto_gc_watermark.is_none() {
            let mut acc = Bdd::ONE;
            for f in fs {
                acc = self.try_and(acc, f)?;
                if acc.is_zero() {
                    break;
                }
            }
            return Ok(acc);
        }
        let mark = self.pin_mark();
        let items: Vec<Bdd> = fs.into_iter().collect();
        for &f in &items {
            self.pin(f);
        }
        let mut acc = Bdd::ONE;
        let mut interrupted = None;
        for f in items {
            match self.try_and(acc, f) {
                Ok(next) => acc = next,
                Err(err) => {
                    interrupted = Some(err);
                    break;
                }
            }
            if acc.is_zero() {
                break;
            }
        }
        self.unpin_to(mark);
        match interrupted {
            Some(err) => Err(err),
            None => Ok(acc),
        }
    }

    /// Disjunction of an iterator of functions (`zero()` for an empty input).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        expect_ok(self.try_or_all(fs))
    }

    /// Fallible disjunction of an iterator of functions (see
    /// [`BddManager::try_and`]).
    pub fn try_or_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Result<Bdd, BddError> {
        if self.auto_gc_watermark.is_none() {
            let mut acc = Bdd::ZERO;
            for f in fs {
                acc = self.try_or(acc, f)?;
                if acc.is_one() {
                    break;
                }
            }
            return Ok(acc);
        }
        let mark = self.pin_mark();
        let items: Vec<Bdd> = fs.into_iter().collect();
        for &f in &items {
            self.pin(f);
        }
        let mut acc = Bdd::ZERO;
        let mut interrupted = None;
        for f in items {
            match self.try_or(acc, f) {
                Ok(next) => acc = next,
                Err(err) => {
                    interrupted = Some(err);
                    break;
                }
            }
            if acc.is_one() {
                break;
            }
        }
        self.unpin_to(mark);
        match interrupted {
            Some(err) => Err(err),
            None => Ok(acc),
        }
    }

    /// If-then-else: `(f AND g) OR (NOT f AND h)`.
    ///
    /// Infallible wrapper over [`BddManager::try_ite`]; panics if a budget
    /// or cancel token interrupts the operation.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        expect_ok(self.try_ite(f, g, h))
    }

    /// Fallible if-then-else (see [`BddManager::try_and`]).
    pub fn try_ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd, BddError> {
        self.poll_cancel()?;
        let mark = self.pin_mark();
        self.pin(f);
        self.pin(g);
        self.pin(h);
        self.checkpoint();
        let result = self.ite_rec(f, g, h);
        self.unpin_to(mark);
        result
    }

    fn and_rec(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        // Terminal short-circuits, including the complement-edge rule
        // f AND !f = 0 that needs no recursion at all.
        if f.is_zero() || g.is_zero() || f == !g {
            return Ok(Bdd::ZERO);
        }
        if f.is_one() || f == g {
            return Ok(g);
        }
        if g.is_one() {
            return Ok(f);
        }
        self.step()?;
        // Commutative: normalize operand order for better cache hit rate.
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let op_code = Op::And as u8;
        let slot =
            (fnv_mix([f.0, g.0, u32::from(op_code)]) as usize) & (self.apply_cache.len() - 1);
        self.apply_stats.lookups += 1;
        let entry = self.apply_cache[slot];
        if entry.f == f.0 && entry.g == g.0 && entry.op == op_code {
            self.apply_stats.hits += 1;
            return Ok(Bdd(entry.result));
        }
        // The split variable is the one at the shallower *level*; with a
        // reordered manager the numerically smaller VarId need not be it.
        let top = if self.root_level(f) <= self.root_level(g) {
            self.root_var(f)
        } else {
            self.root_var(g)
        };
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let low = self.and_rec(f0, g0)?;
        let high = self.and_rec(f1, g1)?;
        let result = self.mk_node(top, low, high)?;
        // Direct-mapped and lossy: colliding keys overwrite each other.
        self.apply_cache[slot] = ApplyEntry {
            f: f.0,
            g: g.0,
            op: op_code,
            result: result.0,
        };
        Ok(result)
    }

    fn xor_rec(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        if f == g {
            return Ok(Bdd::ZERO);
        }
        if f == !g {
            return Ok(Bdd::ONE);
        }
        if f.is_zero() {
            return Ok(g);
        }
        if f.is_one() {
            return Ok(!g);
        }
        if g.is_zero() {
            return Ok(f);
        }
        if g.is_one() {
            return Ok(!f);
        }
        self.step()?;
        // XOR ignores complements up to output parity: strip both flags so
        // all four polarities of a pair share one cache entry.
        let parity = f.is_complement() != g.is_complement();
        let (f, g) = (f.regular(), g.regular());
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let op_code = Op::Xor as u8;
        let slot =
            (fnv_mix([f.0, g.0, u32::from(op_code)]) as usize) & (self.apply_cache.len() - 1);
        self.apply_stats.lookups += 1;
        let entry = self.apply_cache[slot];
        if entry.f == f.0 && entry.g == g.0 && entry.op == op_code {
            self.apply_stats.hits += 1;
            return Ok(Bdd(entry.result).toggled_if(parity));
        }
        let top = if self.root_level(f) <= self.root_level(g) {
            self.root_var(f)
        } else {
            self.root_var(g)
        };
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let low = self.xor_rec(f0, g0)?;
        let high = self.xor_rec(f1, g1)?;
        let result = self.mk_node(top, low, high)?;
        self.apply_cache[slot] = ApplyEntry {
            f: f.0,
            g: g.0,
            op: op_code,
            result: result.0,
        };
        Ok(result.toggled_if(parity))
    }

    fn ite_rec(&mut self, f: Bdd, mut g: Bdd, mut h: Bdd) -> Result<Bdd, BddError> {
        // Terminal cases.
        if f.is_one() {
            return Ok(g);
        }
        if f.is_zero() {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        // Operand coincidences reduce the triple to a binary operation that
        // shares the apply cache.
        if f == g {
            g = Bdd::ONE;
        } else if f == !g {
            g = Bdd::ZERO;
        }
        if f == h {
            h = Bdd::ZERO;
        } else if f == !h {
            h = Bdd::ONE;
        }
        if g.is_one() && h.is_zero() {
            return Ok(f);
        }
        if g.is_zero() && h.is_one() {
            return Ok(!f);
        }
        if g == h {
            return Ok(g);
        }
        if g.is_one() {
            return Ok(!self.and_rec(!f, !h)?); // f OR h
        }
        if g.is_zero() {
            return self.and_rec(!f, h);
        }
        if h.is_zero() {
            return self.and_rec(f, g);
        }
        if h.is_one() {
            return Ok(!self.and_rec(f, !g)?); // !f OR g
        }
        self.step()?;
        // Complement normalization for the cache: the condition and the
        // then-branch are stored regular, the result carries the parity.
        let (mut f, mut g, mut h) = (f, g, h);
        if f.is_complement() {
            std::mem::swap(&mut g, &mut h);
            f = !f;
        }
        let flip = g.is_complement();
        if flip {
            g = !g;
            h = !h;
        }
        let slot = (fnv_mix([f.0, g.0, h.0]) as usize) & (self.ite_cache.len() - 1);
        self.ite_stats.lookups += 1;
        let entry = self.ite_cache[slot];
        if entry.f == f.0 && entry.g == g.0 && entry.h == h.0 {
            self.ite_stats.hits += 1;
            return Ok(Bdd(entry.result).toggled_if(flip));
        }
        let (lf, lg, lh) = (self.root_level(f), self.root_level(g), self.root_level(h));
        let top = if lf <= lg && lf <= lh {
            self.root_var(f)
        } else if lg <= lh {
            self.root_var(g)
        } else {
            self.root_var(h)
        };
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let low = self.ite_rec(f0, g0, h0)?;
        let high = self.ite_rec(f1, g1, h1)?;
        let result = self.mk_node(top, low, high)?;
        // Direct-mapped and lossy: colliding keys overwrite each other.
        self.ite_cache[slot] = IteEntry {
            f: f.0,
            g: g.0,
            h: h.0,
            result: result.0,
        };
        Ok(result.toggled_if(flip))
    }

    pub(crate) fn cofactors_at(&self, f: Bdd, var: VarId) -> (Bdd, Bdd) {
        if f.is_terminal() || self.root_var(f) != var {
            (f, f)
        } else {
            self.children(f)
        }
    }

    // ------------------------------------------------------------------
    // Cofactors, composition, quantification
    // ------------------------------------------------------------------

    /// Restriction (cofactor) of `f` with variable `var` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, var: VarId, value: bool) -> Bdd {
        expect_ok(self.try_restrict(f, var, value))
    }

    /// Fallible restriction (see [`BddManager::try_and`]).
    pub fn try_restrict(&mut self, f: Bdd, var: VarId, value: bool) -> Result<Bdd, BddError> {
        self.poll_cancel()?;
        let mark = self.pin_mark();
        self.pin(f);
        self.checkpoint();
        let result = self.restrict_rec(f, var, value);
        self.unpin_to(mark);
        result
    }

    fn restrict_rec(&mut self, f: Bdd, var: VarId, value: bool) -> Result<Bdd, BddError> {
        if f.is_terminal() {
            return Ok(f);
        }
        let target_level = match self.var2level.get(var as usize) {
            Some(&level) => level,
            // An undeclared variable is tested nowhere: identity.
            None => return Ok(f),
        };
        let node_var = self.nodes[f.index() as usize].var;
        if self.var2level[node_var as usize] > target_level {
            return Ok(f);
        }
        let (low, high) = self.children(f);
        if node_var == var {
            return Ok(if value { high } else { low });
        }
        self.step()?;
        let low = self.restrict_rec(low, var, value)?;
        let high = self.restrict_rec(high, var, value)?;
        self.mk_node(node_var, low, high)
    }

    /// Restriction of `f` under a partial assignment.
    pub fn restrict_all(&mut self, f: Bdd, assignment: &Assignment) -> Bdd {
        expect_ok(self.try_restrict_all(f, assignment))
    }

    /// Fallible restriction under a partial assignment (see
    /// [`BddManager::try_and`]).
    pub fn try_restrict_all(&mut self, f: Bdd, assignment: &Assignment) -> Result<Bdd, BddError> {
        let mut acc = f;
        for (var, value) in assignment.iter() {
            acc = self.try_restrict(acc, var, value)?;
        }
        Ok(acc)
    }

    /// Functional composition: substitute function `g` for variable `var` in
    /// `f`, i.e. `f[var := g]`.
    pub fn compose(&mut self, f: Bdd, var: VarId, g: Bdd) -> Bdd {
        expect_ok(self.try_compose(f, var, g))
    }

    /// Fallible composition (see [`BddManager::try_and`]).
    pub fn try_compose(&mut self, f: Bdd, var: VarId, g: Bdd) -> Result<Bdd, BddError> {
        let mark = self.pin_mark();
        self.pin(f);
        self.pin(g);
        let result = self.compose_pinned(f, var, g);
        self.unpin_to(mark);
        result
    }

    /// Body of [`BddManager::try_compose`] with operands already pinned, so
    /// `?` can return early while the caller still unpins.
    fn compose_pinned(&mut self, f: Bdd, var: VarId, g: Bdd) -> Result<Bdd, BddError> {
        let f1 = self.try_restrict(f, var, true)?;
        self.pin(f1);
        let f0 = self.try_restrict(f, var, false)?;
        self.pin(f0);
        self.try_ite(g, f1, f0)
    }

    /// Existential quantification over `var`: `f|var=0 OR f|var=1`.
    pub fn exists(&mut self, f: Bdd, var: VarId) -> Bdd {
        expect_ok(self.try_exists(f, var))
    }

    /// Fallible existential quantification (see [`BddManager::try_and`]).
    pub fn try_exists(&mut self, f: Bdd, var: VarId) -> Result<Bdd, BddError> {
        let mark = self.pin_mark();
        self.pin(f);
        let result = self.cofactor_combine(f, var, CofactorOp::Or);
        self.unpin_to(mark);
        result
    }

    /// Universal quantification over `var`: `f|var=0 AND f|var=1`.
    pub fn forall(&mut self, f: Bdd, var: VarId) -> Bdd {
        expect_ok(self.try_forall(f, var))
    }

    /// Fallible universal quantification (see [`BddManager::try_and`]).
    pub fn try_forall(&mut self, f: Bdd, var: VarId) -> Result<Bdd, BddError> {
        let mark = self.pin_mark();
        self.pin(f);
        let result = self.cofactor_combine(f, var, CofactorOp::And);
        self.unpin_to(mark);
        result
    }

    /// Existential quantification over a set of variables.
    pub fn exists_all(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        expect_ok(self.try_exists_all(f, vars))
    }

    /// Fallible existential quantification over a set of variables (see
    /// [`BddManager::try_and`]).
    pub fn try_exists_all(&mut self, f: Bdd, vars: &[VarId]) -> Result<Bdd, BddError> {
        let mut acc = f;
        for &v in vars {
            acc = self.try_exists(acc, v)?;
        }
        Ok(acc)
    }

    /// Boolean difference of `f` with respect to `var`:
    /// `df/dvar = f|var=0 XOR f|var=1`.
    ///
    /// The Boolean difference is `1` exactly for the input combinations under
    /// which the value of `var` is observable at `f` — the propagation
    /// condition used by the BDD-based test generator.
    pub fn boolean_difference(&mut self, f: Bdd, var: VarId) -> Bdd {
        expect_ok(self.try_boolean_difference(f, var))
    }

    /// Fallible Boolean difference (see [`BddManager::try_and`]).
    pub fn try_boolean_difference(&mut self, f: Bdd, var: VarId) -> Result<Bdd, BddError> {
        let mark = self.pin_mark();
        self.pin(f);
        let result = self.cofactor_combine(f, var, CofactorOp::Xor);
        self.unpin_to(mark);
        result
    }

    /// Shared body of the quantifiers and the Boolean difference: both
    /// cofactors of `f` at `var`, combined with `op`.  The operand `f` must
    /// already be pinned by the caller, which also unpins the intermediates
    /// pinned here (on success and on error alike).
    fn cofactor_combine(&mut self, f: Bdd, var: VarId, op: CofactorOp) -> Result<Bdd, BddError> {
        let f0 = self.try_restrict(f, var, false)?;
        self.pin(f0);
        let f1 = self.try_restrict(f, var, true)?;
        self.pin(f1);
        match op {
            CofactorOp::And => self.try_and(f0, f1),
            CofactorOp::Or => self.try_or(f0, f1),
            CofactorOp::Xor => self.try_xor(f0, f1),
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Evaluates `f` under a total assignment (missing variables default to
    /// `false`).
    pub fn eval(&self, f: Bdd, assignment: &Assignment) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let var = self.nodes[cur.index() as usize].var;
            let (low, high) = self.children(cur);
            let value = assignment.get(var).unwrap_or(false);
            cur = if value { high } else { low };
        }
        cur.is_one()
    }

    /// Returns `true` if `f` contains a test of variable `var`.
    pub fn depends_on(&self, f: Bdd, var: VarId) -> bool {
        self.support(f).contains(&var)
    }

    /// Set of variables tested anywhere inside `f`, sorted by current
    /// ordering position (root end first).
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.regular()];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n.index()) {
                continue;
            }
            let node = self.nodes[n.index() as usize];
            vars.insert(node.var);
            stack.push(node.low.regular());
            stack.push(node.high.regular());
        }
        let mut vars: Vec<VarId> = vars.into_iter().collect();
        vars.sort_by_key(|&v| self.var2level[v as usize]);
        vars
    }

    /// Number of internal nodes reachable from `f` (the BDD's size).  With
    /// complement edges `f` and `!f` share every node, so their sizes are
    /// equal.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.regular()];
        let mut count = 0usize;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n.index()) {
                continue;
            }
            count += 1;
            let node = self.nodes[n.index() as usize];
            stack.push(node.low.regular());
            stack.push(node.high.regular());
        }
        count
    }

    /// Finds one satisfying assignment of `f`, or `None` if `f` is
    /// unsatisfiable.  Variables not mentioned in the returned [`Cube`] are
    /// don't-cares.
    pub fn sat_one(&self, f: Bdd) -> Option<Cube> {
        if f.is_zero() {
            return None;
        }
        let mut cube = Cube::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let var = self.nodes[cur.index() as usize].var;
            let (low, high) = self.children(cur);
            if !high.is_zero() {
                cube.set(var, true);
                cur = high;
            } else {
                cube.set(var, false);
                cur = low;
            }
        }
        Some(cube)
    }

    /// Counts satisfying assignments of `f` over the full set of declared
    /// variables.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        let n = self.var_count() as u32;
        let mut memo: HashMap<Bdd, u128> = HashMap::new();
        self.sat_count_rec(f, 0, n, &mut memo)
    }

    fn sat_count_rec(
        &self,
        f: Bdd,
        from_level: u32,
        total_vars: u32,
        memo: &mut HashMap<Bdd, u128>,
    ) -> u128 {
        // Number of assignments below `f` assuming its root sits at
        // ordering position `from_level`.
        let level = if f.is_terminal() {
            total_vars
        } else {
            self.root_level(f)
        };
        let skipped = level - from_level;
        let base = if f.is_zero() {
            0
        } else if f.is_one() {
            1
        } else if let Some(&c) = memo.get(&f) {
            c
        } else {
            let (low, high) = self.children(f);
            let low = self.sat_count_rec(low, level + 1, total_vars, memo);
            let high = self.sat_count_rec(high, level + 1, total_vars, memo);
            let c = low + high;
            memo.insert(f, c);
            c
        };
        base << skipped
    }

    /// Iterator over the prime-free cube cover of `f` (one cube per path from
    /// the root to the `1` terminal).
    pub fn cubes(&self, f: Bdd) -> CubeIter<'_> {
        CubeIter::new(self, f)
    }

    /// Root variable of a non-terminal handle (stored form, for the
    /// DOT/text exporters).
    pub(crate) fn node_var(&self, f: Bdd) -> VarId {
        self.nodes[f.index() as usize].var
    }

    /// Stored (canonical-form) children of a non-terminal handle, *without*
    /// resolving the handle's own complement flag — exporters render the
    /// stored structure and mark complement arcs explicitly.
    pub(crate) fn stored_children(&self, f: Bdd) -> (Bdd, Bdd) {
        let node = self.nodes[f.index() as usize];
        (node.low, node.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_vars(m: &mut BddManager) -> (Bdd, Bdd, Bdd) {
        (m.var("a"), m.var("b"), m.var("c"))
    }

    #[test]
    fn constants_and_literals() {
        let mut m = BddManager::new();
        assert!(m.zero().is_zero());
        assert!(m.one().is_one());
        assert_eq!(m.constant(true), m.one());
        assert_eq!(m.constant(false), m.zero());
        let a = m.var("a");
        let not_a = m.not(a);
        let a_again = m.not(not_a);
        assert_eq!(a, a_again);
    }

    #[test]
    fn complement_edges_store_one_polarity() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let f = m.and(a, b);
        let nodes_before = m.live_node_count();
        // Negation is a bit flip: no new nodes, shared arena slot.
        let nf = m.not(f);
        assert_eq!(m.live_node_count(), nodes_before);
        assert_eq!(nf.index(), f.index());
        assert_ne!(nf, f);
        assert_eq!(m.size(f), m.size(nf));
        // Materializing !f through the ordinary operations allocates
        // nothing either: the canonical form reuses f's nodes.
        let na = m.not(a);
        let nb = m.not(b);
        let nf2 = m.or(na, nb);
        assert_eq!(nf2, nf);
        assert_eq!(m.live_node_count(), nodes_before);
    }

    #[test]
    fn and_or_terminal_rules() {
        let mut m = BddManager::new();
        let (a, _, _) = three_vars(&mut m);
        assert_eq!(m.and(a, m.one()), a);
        assert_eq!(m.and(a, m.zero()), m.zero());
        assert_eq!(m.or(a, m.zero()), a);
        assert_eq!(m.or(a, m.one()), m.one());
        assert_eq!(m.xor(a, a), m.zero());
        assert_eq!(m.xor(a, m.zero()), a);
        // Complement-edge short circuits.
        let na = m.not(a);
        assert_eq!(m.and(a, na), m.zero());
        assert_eq!(m.or(a, na), m.one());
        assert_eq!(m.xor(a, na), m.one());
    }

    #[test]
    fn de_morgan() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let lhs = {
            let ab = m.and(a, b);
            m.not(ab)
        };
        let rhs = {
            let na = m.not(a);
            let nb = m.not(b);
            m.or(na, nb)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_matches_definition() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let ite = m.ite(a, b, c);
        let expected = {
            let ab = m.and(a, b);
            let na = m.not(a);
            let nac = m.and(na, c);
            m.or(ab, nac)
        };
        assert_eq!(ite, expected);
        // Complemented condition and branches.
        let na = m.not(a);
        let nb = m.not(b);
        let ite2 = m.ite(na, nb, c);
        let expected2 = {
            let t = m.and(na, nb);
            let e = m.and(a, c);
            m.or(t, e)
        };
        assert_eq!(ite2, expected2);
    }

    #[test]
    fn restrict_and_compose() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let va = m.var_index("a").unwrap();
        let f_a1 = m.restrict(f, va, true);
        let expected = m.or(b, c);
        assert_eq!(f_a1, expected);
        let f_a0 = m.restrict(f, va, false);
        assert_eq!(f_a0, c);
        // compose a := c  gives (c AND b) OR c = c OR (b AND c) = c... careful:
        let composed = m.compose(f, va, c);
        let expect2 = {
            let cb = m.and(c, b);
            m.or(cb, c)
        };
        assert_eq!(composed, expect2);
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let f = m.and(a, b);
        let va = m.var_index("a").unwrap();
        assert_eq!(m.exists(f, va), b);
        assert_eq!(m.forall(f, va), m.zero());
        let g = m.or(a, b);
        assert_eq!(m.exists(g, va), m.one());
        assert_eq!(m.forall(g, va), b);
    }

    #[test]
    fn boolean_difference_detects_observability() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        // f = (a AND b) OR c : a is observable iff b=1 AND c=0.
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let va = m.var_index("a").unwrap();
        let diff = m.boolean_difference(f, va);
        let expected = {
            let nc = m.not(c);
            m.and(b, nc)
        };
        assert_eq!(diff, expected);
    }

    #[test]
    fn eval_and_sat() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        let mut asg = Assignment::new();
        asg.set(0, true);
        asg.set(1, true);
        asg.set(2, false);
        assert!(m.eval(f, &asg));
        asg.set(1, false);
        assert!(!m.eval(f, &asg));
        let cube = m.sat_one(f).expect("satisfiable");
        let full = cube.to_assignment();
        assert!(m.eval(f, &full));
        assert_eq!(m.sat_one(m.zero()), None);
        // Negated function: sat_one must satisfy !f.
        let nf = m.not(f);
        let ncube = m.sat_one(nf).expect("satisfiable");
        assert!(!m.eval(f, &ncube.to_assignment()));
    }

    #[test]
    fn sat_count_small_function() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        // Truth table over 3 variables: (a&b)|c has 5 minterms.
        assert_eq!(m.sat_count(f), 5);
        assert_eq!(m.sat_count(m.one()), 8);
        assert_eq!(m.sat_count(m.zero()), 0);
        // Complement: the negation covers the remaining minterms.
        let nf = m.not(f);
        assert_eq!(m.sat_count(nf), 3);
    }

    #[test]
    fn support_and_size() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        let _ = c;
        let f = m.and(a, b);
        assert_eq!(m.support(f), vec![0, 1]);
        assert_eq!(m.size(f), 2);
        assert_eq!(m.size(m.one()), 0);
        assert!(m.depends_on(f, 0));
        assert!(!m.depends_on(f, 2));
    }

    #[test]
    fn canonical_equality_of_equivalent_formulas() {
        let mut m = BddManager::new();
        let (a, b, c) = three_vars(&mut m);
        // (a XOR b) XOR c is associative/commutative.
        let l = {
            let ab = m.xor(a, b);
            m.xor(ab, c)
        };
        let r = {
            let bc = m.xor(b, c);
            m.xor(a, bc)
        };
        assert_eq!(l, r);
    }

    #[test]
    fn stats_reports_nodes() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let _f = m.and(a, b);
        let stats = m.stats();
        assert!(stats.node_count >= 3);
        assert_eq!(stats.var_count, 3);
        assert!(stats.peak_live_nodes >= stats.node_count);
        assert!(format!("{stats}").contains("nodes"));
    }

    #[test]
    fn cache_stats_are_consistent_after_mixed_workload() {
        // Build a 12-bit adder carry chain, negate, quantify, count — a mix
        // of apply, ite and restrict traffic — then check the counters are
        // coherent with one another and with a cache clear.
        let mut m = BddManager::new();
        let mut carry = m.zero();
        for i in 0..12 {
            let a = m.var(&format!("a{i}"));
            let b = m.var(&format!("b{i}"));
            let ab = m.and(a, b);
            let axb = m.xor(a, b);
            let ac = m.and(axb, carry);
            carry = m.or(ab, ac);
        }
        let not_carry = m.not(carry);
        let v0 = m.var_index("a0").unwrap();
        let _ = m.exists(carry, v0);
        let _ = m.boolean_difference(carry, v0);
        // Distinct, non-coincident operands so the ternary recursion
        // actually probes the ite cache (operand coincidences reduce to
        // the apply cache).
        let sel = m.var("a0");
        let other = m.var("b3");
        let _ = m.ite(carry, sel, other);
        let stats = m.stats();
        // Counters are coherent.
        assert!(stats.apply_cache.lookups > 0);
        assert!(stats.apply_cache.hits <= stats.apply_cache.lookups);
        assert_eq!(
            stats.apply_cache.hits + stats.apply_cache.misses(),
            stats.apply_cache.lookups
        );
        assert!(stats.ite_cache.lookups > 0);
        assert!(stats.ite_cache.hits <= stats.ite_cache.lookups);
        assert!(stats.apply_cache.hit_rate() >= 0.0 && stats.apply_cache.hit_rate() <= 1.0);
        // Occupancy is bounded by the fixed capacity.
        assert!(stats.cache_entries > 0);
        assert!(stats.cache_entries <= stats.cache_capacity);
        // A recomputation after clearing produces the same canonical node
        // (clearing only drops memoized results, never nodes).
        m.clear_caches();
        assert_eq!(m.stats().cache_entries, 0);
        let recomputed = m.not(carry);
        assert_eq!(recomputed, not_carry);
        // Stats survive the clear; resetting zeroes them.
        assert!(m.stats().apply_cache.lookups >= stats.apply_cache.lookups);
        m.reset_cache_stats();
        assert_eq!(m.stats().apply_cache.lookups, 0);
        assert_eq!(m.stats().ite_cache.hits, 0);
    }

    #[test]
    fn unique_table_grows_and_stays_canonical() {
        // Create far more nodes than the initial unique-table capacity and
        // verify hash consing still deduplicates: rebuilding the same
        // function yields the identical handle.
        let mut m = BddManager::new();
        let mut acc = m.zero();
        for i in 0..2_000u32 {
            let v = m.var(&format!("x{}", i % 64));
            let k = m.constant(i % 3 == 0);
            let t = m.xor(v, k);
            acc = m.or(acc, t);
        }
        let stats = m.stats();
        assert!(stats.unique_capacity >= UNIQUE_INITIAL_SLOTS);
        let a = m.var("x1");
        let b = m.var("x2");
        let f1 = m.and(a, b);
        let f2 = m.and(a, b);
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn literal_of_undeclared_variable_panics() {
        let mut m = BddManager::new();
        let _ = m.literal(3, true);
    }

    fn carry_chain(m: &mut BddManager, bits: usize) -> Bdd {
        let mut carry = m.zero();
        for i in 0..bits {
            let a = m.var(&format!("a{i}"));
            let b = m.var(&format!("b{i}"));
            let ab = m.and(a, b);
            let axb = m.xor(a, b);
            let ac = m.and(axb, carry);
            carry = m.or(ab, ac);
        }
        carry
    }

    #[test]
    fn gc_reclaims_everything_unreachable_from_roots() {
        let mut m = BddManager::new();
        let carry = carry_chain(&mut m, 12);
        let live_before = m.live_node_count();
        assert!(
            live_before > m.size(carry),
            "the build leaves intermediates"
        );
        m.protect(carry);
        let report = m.gc();
        assert_eq!(report.live_before, live_before);
        assert_eq!(report.live_after, m.size(carry));
        assert_eq!(report.reclaimed, live_before - m.size(carry));
        assert_eq!(m.live_node_count(), m.size(carry));
        assert_eq!(m.stats().gc_runs, 1);
        assert_eq!(m.stats().gc_reclaimed, report.reclaimed as u64);
        // The protected function is untouched and still canonical: a full
        // rebuild reproduces the identical handle.
        let rebuilt = carry_chain(&mut m, 12);
        assert_eq!(rebuilt, carry);
        m.unprotect(carry);
    }

    #[test]
    fn gc_reuses_freed_slots() {
        let mut m = BddManager::new();
        let f = carry_chain(&mut m, 8);
        m.protect(f);
        let report = m.gc();
        assert!(report.reclaimed > 0);
        let arena_slots = m.nodes.len();
        assert_eq!(m.stats().free_nodes, report.reclaimed);
        // Rebuilding the collected intermediates reuses the free list
        // instead of growing the arena.
        let _ = carry_chain(&mut m, 8);
        assert_eq!(m.nodes.len(), arena_slots, "free slots are reused");
        assert!(m.stats().free_nodes < report.reclaimed);
    }

    #[test]
    fn protect_is_counted_and_unprotect_balances() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let f = m.and(a, b);
        m.protect(f);
        m.protect(f);
        assert_eq!(m.protected_count(), 1);
        m.unprotect(f);
        assert_eq!(m.protected_count(), 1, "still one registration left");
        let report = m.gc();
        assert!(m.live_node_count() >= m.size(f));
        let _ = report;
        m.unprotect(f);
        assert_eq!(m.protected_count(), 0);
        let report = m.gc();
        assert_eq!(report.live_after, 0, "nothing is protected any more");
        // Terminals never need protection and are silently ignored.
        m.protect(Bdd::ONE);
        m.unprotect(Bdd::ZERO);
        assert_eq!(m.protected_count(), 0);
    }

    #[test]
    #[should_panic(expected = "never protected")]
    fn unbalanced_unprotect_panics() {
        let mut m = BddManager::new();
        let a = m.var("a");
        let b = m.var("b");
        let f = m.and(a, b);
        m.unprotect(f);
    }

    #[test]
    fn gc_if_above_only_fires_past_the_watermark() {
        let mut m = BddManager::new();
        let f = carry_chain(&mut m, 10);
        m.protect(f);
        assert!(m.gc_if_above(usize::MAX).is_none());
        assert_eq!(m.stats().gc_runs, 0);
        let report = m.gc_if_above(1).expect("watermark crossed");
        assert!(report.reclaimed > 0);
        assert_eq!(m.stats().gc_runs, 1);
    }

    #[test]
    fn auto_gc_triggers_at_operation_entry_and_keeps_protected_roots() {
        let mut m = BddManager::new();
        m.set_auto_gc(Some(16));
        assert_eq!(m.auto_gc(), Some(16));
        // Build while protecting the running result — the auto-GC contract.
        let mut carry = m.zero();
        for i in 0..12 {
            let a = m.var(&format!("a{i}"));
            let b = m.var(&format!("b{i}"));
            m.protect(a);
            m.protect(b);
            let ab = m.and(a, b);
            m.protect(ab);
            let axb = m.xor(a, b);
            m.protect(axb);
            let ac = m.and(axb, carry);
            m.protect(ac);
            let next = m.or(ab, ac);
            m.protect(next);
            m.unprotect(a);
            m.unprotect(b);
            m.unprotect(ab);
            m.unprotect(axb);
            m.unprotect(ac);
            if !carry.is_terminal() {
                m.unprotect(carry);
            }
            carry = next;
        }
        assert!(m.stats().gc_runs > 0, "the watermark must have fired");
        // The watermark adapted upward instead of thrashing.
        assert!(m.auto_gc().unwrap() >= 16);
        // The surviving function is correct: compare against a fresh build.
        let mut reference = BddManager::new();
        let expected = carry_chain(&mut reference, 12);
        assert_eq!(m.sat_count(carry), reference.sat_count(expected));
        m.unprotect(carry);
    }

    #[test]
    fn node_budget_fails_structurally_and_leaves_the_manager_usable() {
        let mut m = BddManager::new();
        let f = carry_chain(&mut m, 8);
        m.protect(f);
        let baseline = m.live_node_count();
        // A ceiling just above the current population: the next big build
        // must fail with a structured error instead of growing the arena.
        m.set_budget(BddBudget::UNLIMITED.with_max_live_nodes(baseline + 4));
        let mut acc = f;
        let mut failed = None;
        for i in 0..16 {
            let v = m.var(&format!("c{i}"));
            match m.try_xor(acc, v) {
                Ok(next) => acc = next,
                Err(err) => {
                    failed = Some(err);
                    break;
                }
            }
        }
        assert_eq!(
            failed,
            Some(BddError::NodeBudgetExceeded {
                limit: baseline + 4
            })
        );
        // The manager and the protected function both survive the failure.
        assert!(m.live_node_count() <= baseline + 4 + 16);
        // Disarming restores infallibility; the protected function is
        // untouched (a rebuild reproduces the identical handle).
        m.set_budget(BddBudget::UNLIMITED);
        assert_eq!(carry_chain(&mut m, 8), f);
        let v = m.var("later");
        let _ = m.xor(f, v);
        m.unprotect(f);
    }

    #[test]
    fn node_budget_composes_with_gc() {
        // Dead intermediates must not count against the quota after a
        // collection: the same build succeeds under a budget that the
        // intermediate garbage alone would exceed.
        let mut m = BddManager::new();
        let f = carry_chain(&mut m, 10);
        m.protect(f);
        let garbage_heavy = m.live_node_count();
        let live = m.size(f);
        assert!(garbage_heavy > live * 2, "the build leaves garbage");
        m.gc();
        m.set_budget(BddBudget::UNLIMITED.with_max_live_nodes(live + 64));
        // Rebuilding a collected function under the tight budget works:
        // hash consing revives mostly shared nodes.
        let rebuilt = {
            let a = m.var("a0");
            let b = m.var("b0");
            m.try_and(a, b)
        };
        assert!(rebuilt.is_ok());
        m.unprotect(f);
    }

    #[test]
    fn step_budget_fails_deterministically() {
        let run = |budget: Option<u64>| -> (Result<Bdd, BddError>, u64) {
            let mut m = BddManager::new();
            if let Some(steps) = budget {
                m.set_budget(BddBudget::UNLIMITED.with_max_steps(steps));
            }
            let mut acc = m.zero();
            let mut result = Ok(acc);
            for i in 0..10 {
                let a = m.var(&format!("a{i}"));
                let b = m.var(&format!("b{i}"));
                result = m
                    .try_and(a, b)
                    .and_then(|ab| m.try_xor(ab, acc))
                    .and_then(|t| m.try_or(acc, t));
                match result {
                    Ok(next) => acc = next,
                    Err(_) => break,
                }
            }
            (result, m.steps_used())
        };
        let (unbounded, total_steps) = run(None);
        assert!(unbounded.is_ok());
        assert!(total_steps > 0);
        let limit = total_steps / 2;
        let (bounded_a, steps_a) = run(Some(limit));
        let (bounded_b, steps_b) = run(Some(limit));
        assert_eq!(
            bounded_a,
            Err(BddError::StepBudgetExceeded { limit }),
            "half the steps cannot finish the build"
        );
        assert_eq!(bounded_a, bounded_b, "abort point is deterministic");
        assert_eq!(steps_a, steps_b);
        // A full quota completes.
        let (full, _) = run(Some(total_steps));
        assert_eq!(full, unbounded);
    }

    #[test]
    fn reset_steps_reopens_the_quota() {
        let mut m = BddManager::new();
        m.set_budget(BddBudget::UNLIMITED.with_max_steps(10_000));
        let f = carry_chain(&mut m, 6);
        assert!(m.steps_used() > 0);
        m.reset_steps();
        assert_eq!(m.steps_used(), 0);
        assert_eq!(m.budget().max_steps, Some(10_000));
        let _ = f;
    }

    #[test]
    fn cancel_token_interrupts_at_operation_entry() {
        let mut m = BddManager::new();
        let (a, b, _) = three_vars(&mut m);
        let token = msatpg_exec::CancelToken::new();
        m.set_cancel_token(Some(token.clone()));
        assert_eq!(m.try_and(a, b), Ok(m.and(a, b)));
        token.cancel();
        assert_eq!(m.try_and(a, b), Err(BddError::Cancelled));
        assert_eq!(m.try_ite(a, b, a), Err(BddError::Cancelled));
        assert_eq!(m.try_restrict(a, 0, true), Err(BddError::Cancelled));
        m.set_cancel_token(None);
        let _ = m.try_and(a, b).expect("disarmed manager is infallible");
    }

    #[test]
    #[should_panic(expected = "infallible BDD operation interrupted")]
    fn infallible_wrapper_panics_when_budget_fires() {
        let mut m = BddManager::new();
        let f = carry_chain(&mut m, 8);
        m.set_budget(BddBudget::UNLIMITED.with_max_steps(1));
        let v = m.var("x");
        let _ = m.xor(f, v); // must panic: quota of one step cannot finish
    }

    #[test]
    fn failed_operation_leaves_no_pins_behind() {
        let mut m = BddManager::new();
        let f = carry_chain(&mut m, 8);
        m.protect(f);
        m.set_budget(BddBudget::UNLIMITED.with_max_steps(3));
        let v = m.var_index("a3").unwrap();
        assert!(m.try_boolean_difference(f, v).is_err());
        assert!(m.try_compose(f, v, Bdd::ONE).is_err());
        assert!(m.try_exists(f, v).is_err());
        assert!(m.try_forall(f, v).is_err());
        m.set_budget(BddBudget::UNLIMITED);
        // With no pins left, a GC reclaims everything except the root.
        let report = m.gc();
        assert_eq!(report.live_after, m.size(f), "no stray pins kept garbage");
        m.unprotect(f);
    }

    #[test]
    fn gc_invalidates_caches_and_preserves_semantics() {
        let mut m = BddManager::new();
        let carry = carry_chain(&mut m, 10);
        let n = m.sat_count(carry);
        m.protect(carry);
        m.gc();
        assert_eq!(m.stats().cache_entries, 0, "caches are invalidated");
        // Recomputations after the sweep agree with pre-sweep results.
        assert_eq!(m.sat_count(carry), n);
        let v = m.var_index("a3").unwrap();
        let diff = m.boolean_difference(carry, v);
        let mut fresh = BddManager::new();
        let carry2 = carry_chain(&mut fresh, 10);
        let diff2 = fresh.boolean_difference(carry2, v);
        assert_eq!(m.sat_count(diff), fresh.sat_count(diff2));
        m.unprotect(carry);
    }
}
