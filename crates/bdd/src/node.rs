//! Node references and variable identifiers.

use std::fmt;

/// Identifier of a Boolean variable inside a [`crate::BddManager`].
///
/// The numeric value of a `VarId` is also its position in the global variable
/// ordering: smaller ids appear closer to the root of every BDD managed by the
/// same manager.
pub type VarId = u32;

/// A reference to a (reduced, ordered) BDD node owned by a
/// [`crate::BddManager`].
///
/// `Bdd` values are plain indices and are only meaningful together with the
/// manager that created them.  They are cheap to copy and compare; structural
/// equality of `Bdd` values is semantic equality of the Boolean functions they
/// denote (canonical form).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false terminal.
    pub const ZERO: Bdd = Bdd(0);
    /// The constant-true terminal.
    pub const ONE: Bdd = Bdd(1);

    /// Returns `true` if this reference denotes the constant `false` function.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Returns `true` if this reference denotes the constant `true` function.
    #[inline]
    pub fn is_one(self) -> bool {
        self == Self::ONE
    }

    /// Returns `true` if this reference is one of the two terminals.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Raw index of the node inside its manager (stable for the manager's
    /// lifetime).  Mostly useful for debugging and DOT export.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::ZERO => write!(f, "Bdd(0/FALSE)"),
            Bdd::ONE => write!(f, "Bdd(1/TRUE)"),
            Bdd(i) => write!(f, "Bdd({i})"),
        }
    }
}

/// Internal node representation: a variable test with low (var = 0) and high
/// (var = 1) children.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Node {
    pub var: VarId,
    pub low: Bdd,
    pub high: Bdd,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_terminal() {
        assert!(Bdd::ZERO.is_terminal());
        assert!(Bdd::ONE.is_terminal());
        assert!(Bdd::ZERO.is_zero());
        assert!(Bdd::ONE.is_one());
        assert!(!Bdd::ONE.is_zero());
        assert!(!Bdd::ZERO.is_one());
        assert!(!Bdd(5).is_terminal());
    }

    #[test]
    fn debug_formatting_names_terminals() {
        assert!(format!("{:?}", Bdd::ZERO).contains("FALSE"));
        assert!(format!("{:?}", Bdd::ONE).contains("TRUE"));
        assert!(format!("{:?}", Bdd(7)).contains('7'));
    }
}
