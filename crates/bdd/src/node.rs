//! Node references (complement-edge tagged pointers) and variable
//! identifiers.

use std::fmt;

/// Identifier of a Boolean variable inside a [`crate::BddManager`].
///
/// A `VarId` names a variable *identity*, assigned in declaration order and
/// never renumbered.  Its position in the global variable ordering starts
/// out equal to its numeric value but can move when the manager reorders
/// (adjacent-level swap, sifting); query the current position with
/// [`crate::BddManager::level_of`].
pub type VarId = u32;

/// A reference to a (reduced, ordered, complement-edged) BDD node owned by a
/// [`crate::BddManager`].
///
/// `Bdd` values are **tagged pointers**: bit 0 is the *complement flag* and
/// the remaining bits are the index of a node in the manager's arena.  A set
/// complement flag means "the negation of the function stored at the node",
/// which is what makes [`crate::BddManager::not`] an O(1) bit flip — the
/// negated function is never materialized as separate nodes.  The manager
/// canonicalizes complements (the high/then edge of a stored node is never
/// complemented), so structural equality of `Bdd` values is still semantic
/// equality of the Boolean functions they denote.
///
/// There is a single terminal node (index 0, the constant `true`); the
/// constant `false` is its complement.  Handles are cheap to copy and
/// compare, and are only meaningful together with the manager that created
/// them.
///
/// A handle stays valid as long as its node is alive: forever on a manager
/// that never garbage-collects, or as long as the node is reachable from a
/// registered root across [`crate::BddManager::gc`] calls.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false function: the complemented terminal.
    pub const ZERO: Bdd = Bdd(1);
    /// The constant-true function: the (only) terminal node, uncomplemented.
    pub const ONE: Bdd = Bdd(0);

    /// Returns `true` if this reference denotes the constant `false` function.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Returns `true` if this reference denotes the constant `true` function.
    #[inline]
    pub fn is_one(self) -> bool {
        self == Self::ONE
    }

    /// Returns `true` if this reference denotes a constant function (either
    /// polarity of the terminal node).
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` if the complement flag is set, i.e. this handle denotes
    /// the negation of its stored node's function.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Index of the referenced node inside its manager's arena (the
    /// complement flag stripped).  Stable for as long as the node is live;
    /// mostly useful for debugging.
    #[inline]
    pub fn index(self) -> u32 {
        self.0 >> 1
    }

    /// The same node reference with the complement flag cleared (the
    /// "regular" polarity under which the node is stored).
    #[inline]
    pub(crate) fn regular(self) -> Bdd {
        Bdd(self.0 & !1)
    }

    /// The same node reference with the complement flag toggled — the O(1)
    /// negation that complement edges buy.
    #[inline]
    pub(crate) fn toggled(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }

    /// Toggles the complement flag iff `flip` is set (used to push a parent
    /// handle's complement down onto its children during traversal).
    #[inline]
    pub(crate) fn toggled_if(self, flip: bool) -> Bdd {
        Bdd(self.0 ^ u32::from(flip))
    }
}

impl std::ops::Not for Bdd {
    type Output = Bdd;

    /// Logical negation as a free bit flip (same as
    /// [`crate::BddManager::not`], which exists for API symmetry with the
    /// other Boolean operations).
    #[inline]
    fn not(self) -> Bdd {
        self.toggled()
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::ZERO => write!(f, "Bdd(FALSE)"),
            Bdd::ONE => write!(f, "Bdd(TRUE)"),
            Bdd(_) => {
                if self.is_complement() {
                    write!(f, "Bdd(!{})", self.index())
                } else {
                    write!(f, "Bdd({})", self.index())
                }
            }
        }
    }
}

/// Internal node representation: a variable test with low (var = 0) and high
/// (var = 1) children.
///
/// Canonical invariant maintained by the manager: `high` is never
/// complemented (a would-be complemented then-edge is normalized by
/// complementing the whole node and both children), so each Boolean function
/// and its negation share one stored node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Node {
    pub var: VarId,
    pub low: Bdd,
    pub high: Bdd,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_terminal() {
        assert!(Bdd::ZERO.is_terminal());
        assert!(Bdd::ONE.is_terminal());
        assert!(Bdd::ZERO.is_zero());
        assert!(Bdd::ONE.is_one());
        assert!(!Bdd::ONE.is_zero());
        assert!(!Bdd::ZERO.is_one());
        assert!(!Bdd(5 << 1).is_terminal());
    }

    #[test]
    fn zero_and_one_are_complements_of_one_node() {
        assert_eq!(!Bdd::ONE, Bdd::ZERO);
        assert_eq!(!Bdd::ZERO, Bdd::ONE);
        assert_eq!(Bdd::ZERO.index(), Bdd::ONE.index());
        assert!(Bdd::ZERO.is_complement());
        assert!(!Bdd::ONE.is_complement());
    }

    #[test]
    fn complement_flag_round_trips() {
        let f = Bdd(7 << 1);
        assert!(!f.is_complement());
        assert!((!f).is_complement());
        assert_eq!(!!f, f);
        assert_eq!(f.index(), (!f).index());
        assert_eq!((!f).regular(), f);
        assert_eq!(f.toggled_if(false), f);
        assert_eq!(f.toggled_if(true), !f);
    }

    #[test]
    fn debug_formatting_names_terminals() {
        assert!(format!("{:?}", Bdd::ZERO).contains("FALSE"));
        assert!(format!("{:?}", Bdd::ONE).contains("TRUE"));
        assert!(format!("{:?}", Bdd(7 << 1)).contains('7'));
        assert!(format!("{:?}", Bdd(7 << 1 | 1)).contains("!7"));
    }
}
