//! Resource budgets and structured errors for fallible BDD operations.
//!
//! The BDD-based test generator is backtrack-free because it trades search
//! for memory — which makes **BDD blow-up** its one catastrophic failure
//! mode.  A [`BddBudget`] armed on a [`crate::BddManager`] turns that
//! blow-up from an OOM kill into a structured, per-operation
//! [`BddError`]: the `try_*` operation family returns
//! `Err(BddError::NodeBudgetExceeded)` the moment an allocation would push
//! the live-node population past the quota, and
//! `Err(BddError::StepBudgetExceeded)` when the recursion-step quota is
//! exhausted.  Callers (the ATPG drivers) catch the error, discard the
//! partial operation and degrade gracefully — the manager itself stays
//! fully usable.
//!
//! ## Composition with garbage collection
//!
//! The node quota bounds the *live* population, so it composes with the
//! collector: arm [`crate::BddManager::set_auto_gc`] with a watermark at or
//! below `max_live_nodes` and every public operation first collects dead
//! nodes at its entry safe point, only failing when the *reachable*
//! population genuinely needs more than the budget.  (No collection runs
//! *inside* an operation — recursion intermediates are unprotected — so a
//! single operation whose result alone exceeds the budget still fails.)
//!
//! ## Determinism
//!
//! Both quotas are deterministic: node counts and recursion steps are pure
//! functions of the operation sequence, so a budget-aborted build aborts at
//! the identical point on every run and every thread count.  The third
//! error, [`BddError::Cancelled`], is raised on behalf of a
//! [`msatpg_exec::CancelToken`] armed with
//! [`crate::BddManager::set_cancel_token`] and is only deterministic if the
//! token's triggers are (see the token docs).

use std::error::Error;
use std::fmt;

/// Resource quotas for one [`crate::BddManager`].
///
/// The default (and [`BddBudget::UNLIMITED`]) arms nothing; quotas are
/// added builder-style:
///
/// ```
/// use msatpg_bdd::BddBudget;
///
/// let budget = BddBudget::UNLIMITED
///     .with_max_live_nodes(1 << 20)
///     .with_max_steps(50_000_000);
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddBudget {
    /// Ceiling on the live-node population: an allocation that would push
    /// [`crate::BddManager::live_node_count`] past this fails with
    /// [`BddError::NodeBudgetExceeded`].
    pub max_live_nodes: Option<usize>,
    /// Ceiling on recursion steps counted across every fallible operation
    /// since the last [`crate::BddManager::reset_steps`]; exceeding it
    /// fails with [`BddError::StepBudgetExceeded`].
    pub max_steps: Option<u64>,
}

impl BddBudget {
    /// No quotas armed: every operation is infallible (the pre-budget
    /// behavior).
    pub const UNLIMITED: BddBudget = BddBudget {
        max_live_nodes: None,
        max_steps: None,
    };

    /// Arms a live-node ceiling.
    pub fn with_max_live_nodes(mut self, nodes: usize) -> Self {
        self.max_live_nodes = Some(nodes);
        self
    }

    /// Arms a recursion-step ceiling.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// `true` when no quota is armed.
    pub fn is_unlimited(&self) -> bool {
        self.max_live_nodes.is_none() && self.max_steps.is_none()
    }
}

/// Structured failure of a fallible (`try_*`) BDD operation.
///
/// The operation's partial work is abandoned (intermediate nodes become
/// garbage, reclaimable at the next collection) but the manager and every
/// previously built function remain fully usable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BddError {
    /// An allocation would have pushed the live-node population past the
    /// armed [`BddBudget::max_live_nodes`].
    NodeBudgetExceeded {
        /// The armed ceiling.
        limit: usize,
    },
    /// The recursion-step count passed the armed [`BddBudget::max_steps`].
    StepBudgetExceeded {
        /// The armed ceiling.
        limit: u64,
    },
    /// The [`msatpg_exec::CancelToken`] armed with
    /// [`crate::BddManager::set_cancel_token`] fired.
    Cancelled,
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeBudgetExceeded { limit } => {
                write!(f, "BDD node budget exceeded ({limit} live nodes)")
            }
            BddError::StepBudgetExceeded { limit } => {
                write!(f, "BDD step budget exceeded ({limit} steps)")
            }
            BddError::Cancelled => write!(f, "BDD operation cancelled"),
        }
    }
}

impl Error for BddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_builders_compose() {
        assert!(BddBudget::UNLIMITED.is_unlimited());
        assert!(BddBudget::default().is_unlimited());
        let b = BddBudget::default().with_max_live_nodes(100);
        assert_eq!(b.max_live_nodes, Some(100));
        assert_eq!(b.max_steps, None);
        assert!(!b.is_unlimited());
        let b = b.with_max_steps(7);
        assert_eq!(b.max_steps, Some(7));
    }

    #[test]
    fn errors_display_their_limits() {
        let e = BddError::NodeBudgetExceeded { limit: 64 };
        assert!(e.to_string().contains("64"));
        let e = BddError::StepBudgetExceeded { limit: 9 };
        assert!(e.to_string().contains("9"));
        assert!(BddError::Cancelled.to_string().contains("cancelled"));
    }
}
