//! Dynamic variable ordering: adjacent-level swap, sifting and the
//! structural invariant validator.
//!
//! The manager keeps the global variable order as a permutation
//! (`var2level` / `level2var`) beside the arena, so reordering never
//! renumbers a [`VarId`] and never invalidates a handle: an adjacent-level
//! swap rewrites the affected nodes *in place*, which means every
//! protected root, every pinned operand and every handle a caller holds
//! keeps denoting exactly the same Boolean function before and after.
//!
//! ## Swap mechanics on complement edges
//!
//! Exchanging levels `l` (variable `u`) and `l+1` (variable `v`) rewrites
//! each live `u`-node `F = (u, L, H)` that tests `v` in a child.  With the
//! cofactors `L = (L0, L1)` and `H = (H0, H1)` at `v`, the same function
//! re-rooted at `v` is
//!
//! ```text
//! F = (v,  (u, L0, H0),  (u, L1, H1))
//! ```
//!
//! The canonical complement form survives without any polarity fix-up: the
//! stored high edge `H` is regular, so its `v=1` cofactor `H1` is regular,
//! and `mk_node(u, L1, H1)` therefore never flips — the rewritten high
//! edge is regular by construction.  `u`-nodes that do not test `v`, and
//! `v`-nodes reachable from elsewhere, are left untouched (they simply sit
//! at the exchanged level).  Hash-consing during the rewrite cannot alias
//! a node of the rewrite set (their children test `v`; the rebuilt
//! children never do), and two distinct rewritten nodes cannot collide
//! (identical rewritten content would imply identical functions, which
//! canonicity rules out before the swap).  After the in-place rewrites the
//! unique table is rebuilt wholesale and the memo caches are dropped.
//!
//! ## Schedules and governance
//!
//! [`DvoSchedule`] picks *when* reordering runs.  `Never` (the default)
//! keeps the declaration order.  `UntilConvergence` is the schedule of the
//! construction-time drivers in `msatpg-core`: sift repeatedly right after
//! a symbolic build, at a point where every kept function is a protected
//! root.  `SizeTriggered(watermark)` arms the manager's own auto-GC safe
//! points ([`BddManager::set_dvo`]): entry to a public Boolean operation
//! sifts once the live-node count reaches the watermark, then raises the
//! trigger so a build that genuinely needs the nodes does not thrash.
//!
//! Sifting is governed like every other operation: each rewritten node
//! charges one [`crate::BddBudget`] step (polling the `CancelToken` on the
//! usual cadence), and fresh cofactor nodes are charged against the node
//! quota.  An interrupted sift abandons the current swap *before* any node
//! is modified, so the manager is left fully consistent at whatever order
//! the walk had reached — only unreferenced garbage from the partial
//! rewrite remains, reclaimed by the next collection.

use crate::budget::BddError;
use crate::manager::{BddManager, UniqueTable, FREED};
use crate::node::{Bdd, Node, VarId};

/// Upper bound on [`BddManager::try_sift_until_convergence`] passes — a
/// safety stop far above the two or three passes real workloads need.
const MAX_SIFT_PASSES: usize = 8;

/// When (if ever) the manager reorders variables on its own.
///
/// See the [module docs](self) for the semantics of each schedule and the
/// handle contract while one is armed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DvoSchedule {
    /// Never reorder: the declaration order is kept verbatim (default).
    #[default]
    Never,
    /// Sift repeatedly until a pass stops shrinking the arena.  This is a
    /// construction-time schedule: drivers apply it once, right after a
    /// symbolic build, while every kept function is a protected root.
    UntilConvergence,
    /// Sift at the auto-GC safe points once the live-node count reaches
    /// the watermark; after each triggered sift the watermark is raised to
    /// at least twice the surviving population.
    SizeTriggered(usize),
}

/// Outcome of one [`BddManager::try_sift`] /
/// [`BddManager::try_sift_until_convergence`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiftReport {
    /// Live nodes before sifting (after the entry collection).
    pub nodes_before: usize,
    /// Live nodes at the final order.
    pub nodes_after: usize,
    /// Adjacent-level swaps performed.
    pub swaps: usize,
    /// Full sift passes performed (always 1 for [`BddManager::try_sift`]).
    pub passes: usize,
}

impl SiftReport {
    /// Node reduction factor (`nodes_before / nodes_after`, 1.0 when
    /// nothing shrank or the arena is empty).
    pub fn reduction(&self) -> f64 {
        if self.nodes_after == 0 || self.nodes_before <= self.nodes_after {
            1.0
        } else {
            self.nodes_before as f64 / self.nodes_after as f64
        }
    }
}

impl BddManager {
    /// Exchanges the variables at ordering positions `level` and
    /// `level + 1`, preserving every function and every handle.  Returns
    /// the number of nodes rewritten in place.
    ///
    /// The swap touches only nodes of the upper variable that actually
    /// test the lower one; all other nodes (and all handles) are
    /// untouched.  The apply/ITE caches are invalidated and the unique
    /// table is rebuilt.  On error (budget, cancellation) the swap is
    /// abandoned *before* any node is modified: the order, every node and
    /// every handle are exactly as before, plus some unreferenced garbage
    /// from the partial rewrite.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is not a valid ordering position.
    pub fn try_swap_adjacent(&mut self, level: u32) -> Result<usize, BddError> {
        let n = self.level2var.len() as u32;
        assert!(
            level.checked_add(1).is_some_and(|next| next < n),
            "swap of levels {level}/{} with only {n} variables",
            level.wrapping_add(1),
        );
        let u = self.level2var[level as usize];
        let v = self.level2var[level as usize + 1];

        // Phase 1a: collect the rewrite set — `u`-nodes testing `v` in a
        // child.  Contents stay untouched until phase 2 and slot indices
        // are stable, so the collected list survives the interleaved
        // allocations of phase 1b.
        let mut candidates: Vec<u32> = Vec::new();
        for idx in 1..self.nodes.len() {
            let node = self.nodes[idx];
            if node.var == u && (self.root_var(node.low) == v || self.root_var(node.high) == v) {
                candidates.push(idx as u32);
            }
        }

        // Phase 1b (fallible): hash-cons the re-rooted children.  Nothing
        // has been modified yet, so an early return leaves a consistent
        // manager at the old order.
        let mut rewrites: Vec<(u32, Bdd, Bdd)> = Vec::with_capacity(candidates.len());
        for &idx in &candidates {
            self.step()?;
            let Node { low, high, .. } = self.nodes[idx as usize];
            let (l0, l1) = self.cofactors_at(low, v);
            let (h0, h1) = self.cofactors_at(high, v);
            let g0 = self.mk_node(u, l0, h0)?;
            let g1 = self.mk_node(u, l1, h1)?;
            rewrites.push((idx, g0, g1));
        }

        // Phase 2 (infallible): rewrite in place, exchange the level maps,
        // rebuild the unique table over the live slots and drop the memo
        // caches (entries may reference nodes that just became garbage).
        for &(idx, g0, g1) in &rewrites {
            debug_assert!(
                !g1.is_complement(),
                "swap must preserve the canonical (regular) high edge"
            );
            self.nodes[idx as usize] = Node {
                var: v,
                low: g0,
                high: g1,
            };
        }
        self.level2var.swap(level as usize, level as usize + 1);
        self.var2level[u as usize] = level + 1;
        self.var2level[v as usize] = level;
        self.rebuild_unique();
        self.clear_caches();
        Ok(rewrites.len())
    }

    /// Infallible wrapper over [`BddManager::try_swap_adjacent`]; panics if
    /// a budget or cancel token interrupts the swap.
    pub fn swap_adjacent(&mut self, level: u32) -> usize {
        match self.try_swap_adjacent(level) {
            Ok(rewritten) => rewritten,
            Err(err) => panic!(
                "infallible swap interrupted: {err}; \
                 use try_swap_adjacent when a budget or cancel token is armed"
            ),
        }
    }

    /// One pass of Rudell-style sifting: every variable (most populous
    /// level first) is walked to both ends of the order by adjacent swaps
    /// and settled at the position where the arena was smallest, with a 2x
    /// growth cap per direction.
    ///
    /// The pass garbage-collects on entry and after every swap, so — like
    /// [`BddManager::set_auto_gc`] — every handle held across the call
    /// must be protected (or reachable from a protected root).  Handles
    /// are never renumbered; only unprotected garbage is reclaimed.
    ///
    /// On error (budget, cancellation) the manager is left fully
    /// consistent at whatever order the walk had reached.
    pub fn try_sift(&mut self) -> Result<SiftReport, BddError> {
        self.poll_cancel()?;
        self.gc();
        let nodes_before = self.live_node_count();
        let n = self.level2var.len();
        let mut report = SiftReport {
            nodes_before,
            nodes_after: nodes_before,
            swaps: 0,
            passes: 1,
        };
        if n < 2 {
            return Ok(report);
        }
        // Deterministic schedule: most populous variable first, VarId as
        // the tie-break.
        let mut population = vec![0usize; n];
        for idx in 1..self.nodes.len() {
            let var = self.nodes[idx].var;
            if var != FREED {
                population[var as usize] += 1;
            }
        }
        let mut worklist: Vec<VarId> = (0..n as VarId).collect();
        worklist.sort_by_key(|&v| (std::cmp::Reverse(population[v as usize]), v));
        for var in worklist {
            report.swaps += self.sift_one(var)?;
        }
        report.nodes_after = self.live_node_count();
        Ok(report)
    }

    /// Repeats [`BddManager::try_sift`] until a pass stops shrinking the
    /// arena (or a safety cap of passes is reached), accumulating the
    /// swap count across passes.
    pub fn try_sift_until_convergence(&mut self) -> Result<SiftReport, BddError> {
        let mut total = SiftReport::default();
        loop {
            let pass = self.try_sift()?;
            if total.passes == 0 {
                total.nodes_before = pass.nodes_before;
            }
            total.nodes_after = pass.nodes_after;
            total.swaps += pass.swaps;
            total.passes += 1;
            if pass.nodes_after >= pass.nodes_before || total.passes >= MAX_SIFT_PASSES {
                return Ok(total);
            }
        }
    }

    /// Infallible wrapper over [`BddManager::try_sift_until_convergence`];
    /// panics if a budget or cancel token interrupts the pass.
    pub fn sift(&mut self) -> SiftReport {
        match self.try_sift_until_convergence() {
            Ok(report) => report,
            Err(err) => panic!(
                "infallible sift interrupted: {err}; \
                 use try_sift when a budget or cancel token is armed"
            ),
        }
    }

    /// Sifts one variable to its locally optimal level; returns the number
    /// of swaps spent.
    fn sift_one(&mut self, var: VarId) -> Result<usize, BddError> {
        let n = self.level2var.len() as u32;
        let start = self.var2level[var as usize];
        let mut pos = start;
        let mut best_size = self.live_node_count();
        let mut best_pos = start;
        let mut swaps = 0usize;
        // Walk toward the nearer end first so the full sweep (down, then
        // all the way up, then back to the best level) stays short.
        let down_first = (n - 1 - start) <= start;
        let directions: [i32; 2] = if down_first { [1, -1] } else { [-1, 1] };
        for dir in directions {
            loop {
                if dir > 0 {
                    if pos + 1 >= n {
                        break;
                    }
                    self.try_swap_adjacent(pos)?;
                    pos += 1;
                } else {
                    if pos == 0 {
                        break;
                    }
                    self.try_swap_adjacent(pos - 1)?;
                    pos -= 1;
                }
                swaps += 1;
                // Collect after every swap: the live count is then an
                // exact reachable-size metric, not inflated by the dead
                // cofactor nodes the swap left behind.
                self.gc();
                let size = self.live_node_count();
                if size < best_size {
                    best_size = size;
                    best_pos = pos;
                }
                // Growth cap: abandon the direction once the arena
                // doubles relative to the best order seen so far.
                if size > best_size.saturating_mul(2) {
                    break;
                }
            }
        }
        while pos > best_pos {
            self.try_swap_adjacent(pos - 1)?;
            swaps += 1;
            pos -= 1;
        }
        while pos < best_pos {
            self.try_swap_adjacent(pos)?;
            swaps += 1;
            pos += 1;
        }
        self.gc();
        Ok(swaps)
    }

    /// Rebuilds the unique table from scratch over every live arena slot.
    fn rebuild_unique(&mut self) {
        let mut table = UniqueTable::for_live(self.live_node_count());
        for idx in 1..self.nodes.len() {
            if self.nodes[idx].var != FREED {
                table.insert_rehash(&self.nodes, idx as u32);
            }
        }
        self.unique = table;
    }

    /// Validates every structural invariant of the manager, returning a
    /// description of the first violation found.
    ///
    /// Checked per live node: the stored high edge is regular (canonical
    /// complement form), the node is not a redundant test (`low != high`),
    /// both children are live, child levels are strictly greater than the
    /// node's level, and the unique table resolves the node's contents to
    /// exactly its own slot (which rules out both missing entries and
    /// duplicates).  Checked globally: `var2level`/`level2var` are inverse
    /// permutations and the unique-table population matches the live-node
    /// count.
    ///
    /// Intended for tests and debugging — it walks the entire arena.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n_vars = self.level2var.len();
        if self.var2level.len() != n_vars {
            return Err(format!(
                "var2level has {} entries for {} levels",
                self.var2level.len(),
                n_vars
            ));
        }
        for (level, &var) in self.level2var.iter().enumerate() {
            if var as usize >= n_vars || self.var2level[var as usize] != level as u32 {
                return Err(format!(
                    "level maps are not inverse permutations at level {level} (var {var})"
                ));
            }
        }
        let mut live = 0usize;
        for idx in 1..self.nodes.len() {
            let node = self.nodes[idx];
            if node.var == FREED {
                continue;
            }
            live += 1;
            if node.var as usize >= n_vars {
                return Err(format!("node {idx} tests undeclared variable {}", node.var));
            }
            if node.high.is_complement() {
                return Err(format!("node {idx} stores a complemented high edge"));
            }
            if node.low == node.high {
                return Err(format!("node {idx} is a redundant test"));
            }
            let level = self.var2level[node.var as usize];
            for (edge, child) in [("low", node.low), ("high", node.high)] {
                if child.is_terminal() {
                    continue;
                }
                let child_node = self.nodes[child.index() as usize];
                if child_node.var == FREED {
                    return Err(format!("node {idx} {edge} edge points at a freed slot"));
                }
                if self.var2level[child_node.var as usize] <= level {
                    return Err(format!(
                        "node {idx} (var {}, level {level}) {edge} child tests var {} at a \
                         level that is not strictly greater",
                        node.var, child_node.var
                    ));
                }
            }
            match self
                .unique
                .probe(&self.nodes, node.var, node.low, node.high)
            {
                Ok(found) if found == idx as u32 => {}
                Ok(found) => {
                    return Err(format!(
                        "duplicate unique-table entry: nodes {idx} and {found} share contents"
                    ));
                }
                Err(_) => {
                    return Err(format!("node {idx} is missing from the unique table"));
                }
            }
        }
        if self.unique.len != live {
            return Err(format!(
                "unique table holds {} entries for {live} live nodes",
                self.unique.len
            ));
        }
        if live != self.live_node_count() {
            return Err(format!(
                "free list inconsistent: {live} unswept slots vs live_node_count {}",
                self.live_node_count()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BddBudget;
    use crate::cube::Assignment;

    /// All 2^n assignments over the first `n` declared variables.
    fn truth_table(m: &BddManager, f: Bdd, n: u32) -> Vec<bool> {
        (0..1u32 << n)
            .map(|bits| {
                let mut a = Assignment::new();
                for v in 0..n {
                    a.set(v, bits & (1 << v) != 0);
                }
                m.eval(f, &a)
            })
            .collect()
    }

    fn majority_of_three(m: &mut BddManager) -> Bdd {
        let a = m.var("a");
        let b = m.var("b");
        let c = m.var("c");
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let t = m.or(ab, ac);
        m.or(t, bc)
    }

    #[test]
    fn swap_preserves_functions_and_invariants() {
        let mut m = BddManager::new();
        let f = majority_of_three(&mut m);
        let before = truth_table(&m, f, 3);
        for level in [0u32, 1, 0, 1, 0] {
            m.swap_adjacent(level);
            m.check_invariants().expect("invariants after swap");
            assert_eq!(truth_table(&m, f, 3), before);
        }
    }

    #[test]
    fn swap_is_an_involution_on_the_order() {
        let mut m = BddManager::new();
        let _ = majority_of_three(&mut m);
        let order_before: Vec<VarId> = m.var_order().to_vec();
        m.swap_adjacent(1);
        assert_ne!(m.var_order(), order_before.as_slice());
        m.swap_adjacent(1);
        assert_eq!(m.var_order(), order_before.as_slice());
        assert_eq!(m.level_of(0), 0);
        assert_eq!(m.var_at_level(2), 2);
    }

    #[test]
    fn sifting_shrinks_an_interleaving_blowup() {
        // f = (a0 AND b0) OR (a1 AND b1) OR ... with all a's declared
        // before all b's: exponential under declaration order, linear once
        // the pairs are adjacent.
        let mut m = BddManager::new();
        let n = 6u32;
        let a_vars: Vec<Bdd> = (0..n).map(|i| m.var(&format!("a{i}"))).collect();
        let b_vars: Vec<Bdd> = (0..n).map(|i| m.var(&format!("b{i}"))).collect();
        let mut f = m.zero();
        for i in 0..n as usize {
            let pair = m.and(a_vars[i], b_vars[i]);
            f = m.or(f, pair);
        }
        m.protect(f);
        let before = m.gc().live_after;
        let report = m.sift();
        m.check_invariants().expect("invariants after sifting");
        assert_eq!(report.nodes_after, m.live_node_count());
        assert!(
            report.nodes_after * 2 < before,
            "sifting should at least halve {before} nodes, got {}",
            report.nodes_after
        );
        // The function is untouched.
        let expected: u128 = {
            // Count satisfying assignments of OR of n disjoint pairs by
            // inclusion-exclusion over the complement: 4^n - 3^n.
            let total = 1u128 << (2 * n);
            let off = 3u128.pow(n);
            total - off
        };
        assert_eq!(m.sat_count(f), expected);
    }

    #[test]
    fn sift_respects_step_budget() {
        let mut m = BddManager::new();
        let n = 6u32;
        let a_vars: Vec<Bdd> = (0..n).map(|i| m.var(&format!("a{i}"))).collect();
        let b_vars: Vec<Bdd> = (0..n).map(|i| m.var(&format!("b{i}"))).collect();
        let mut f = m.zero();
        for i in 0..n as usize {
            let pair = m.and(a_vars[i], b_vars[i]);
            f = m.or(f, pair);
        }
        m.protect(f);
        let table_before = truth_table(&m, f, 2 * n);
        m.set_budget(BddBudget::default().with_max_steps(5));
        let err = m.try_sift().expect_err("5 steps cannot sift this");
        assert!(matches!(err, BddError::StepBudgetExceeded { .. }));
        // The manager is still consistent and the function intact.
        m.set_budget(BddBudget::UNLIMITED);
        m.gc();
        m.check_invariants()
            .expect("invariants after interrupted sift");
        assert_eq!(truth_table(&m, f, 2 * n), table_before);
    }

    #[test]
    fn size_triggered_schedule_fires_at_the_safe_point() {
        let mut m = BddManager::new();
        let n = 6u32;
        for i in 0..n {
            m.var_id(&format!("a{i}"));
            m.var_id(&format!("b{i}"));
        }
        m.set_dvo(DvoSchedule::SizeTriggered(8));
        assert_eq!(m.dvo(), DvoSchedule::SizeTriggered(8));
        let mut f = m.zero();
        for i in 0..n {
            // The schedule may GC and reorder at any operation entry, so
            // only protected handles (and the operands of the current
            // call) survive: rebuild the literals per iteration and keep
            // the accumulator protected.
            let ai = m.var(&format!("a{i}"));
            let bi = m.var(&format!("b{i}"));
            let pair = m.and(ai, bi);
            m.protect(pair);
            let next = m.or(f, pair);
            m.unprotect(pair);
            if !f.is_terminal() {
                m.unprotect(f);
            }
            f = next;
            m.protect(f);
        }
        m.check_invariants()
            .expect("invariants under SizeTriggered");
        // The trigger was raised past the initial watermark.
        match m.dvo() {
            DvoSchedule::SizeTriggered(w) => assert!(w >= 8),
            other => panic!("schedule changed to {other:?}"),
        }
        let expected = (1u128 << (2 * n)) - 3u128.pow(n);
        assert_eq!(m.sat_count(f), expected);
    }
}
